#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), release
# build, and the test suite — the same bar CI holds a change to.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "All checks passed."
