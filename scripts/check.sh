#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), release
# build, and the test suite — the same bar CI holds a change to.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> trace smoke (tune sad --trace-out/--metrics-out + validate)"
# A full-space SAD search must export a JSONL trace whose every line
# parses and a manifest that survives a serialize -> parse round trip;
# `validate` checks both in-process (the container has no jq).
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --trace-out "$tracedir/trace.jsonl" --metrics-out "$tracedir/manifest.json" \
    > /dev/null
cargo run --release -q -- validate "$tracedir/trace.jsonl" "$tracedir/manifest.json"

echo "==> trace report smoke (trace report on the exported JSONL)"
# The offline analyzer must reconstruct the run's time-resolved story
# from the trace file alone: convergence table, phase breakdown, and
# worker utilization.
report=$(cargo run --release -q -- trace report "$tracedir/trace.jsonl")
echo "$report" | head -n 1
for section in "convergence" "phases" "workers" "optimum reached after"; do
    echo "$report" | grep -q "$section" || {
        echo "trace report smoke: missing \`$section\` section" >&2
        exit 1
    }
done

echo "==> chrome trace smoke (tune sad --trace-format chrome)"
# The Chrome exporter must emit a trace_event document Perfetto can
# load: a traceEvents array with thread-name metadata.
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --trace-out "$tracedir/trace_chrome.json" --trace-format chrome > /dev/null
grep -q '"traceEvents"' "$tracedir/trace_chrome.json" || {
    echo "chrome smoke: no traceEvents array in the export" >&2
    exit 1
}
grep -q '"orchestrator"' "$tracedir/trace_chrome.json" || {
    echo "chrome smoke: no orchestrator thread-name metadata" >&2
    exit 1
}

echo "==> fault-injection smoke (table4 --inject-faults)"
# The search must complete (exit 0) in degraded mode and report a
# non-empty quarantine section.
smoke=$(cargo run --release -q -p optspace-bench --bin table4 -- \
    --jobs 2 --inject-faults)
echo "$smoke" | tail -n 1
echo "$smoke" | grep -q "^quarantined configurations: [1-9]" || {
    echo "fault-injection smoke: expected a non-empty quarantine section" >&2
    exit 1
}

echo "==> race-detector smoke (tune cp --check-races)"
# With the static race detector armed, a real application space must
# come through clean: no degraded report, no verify.race trace events.
races=$(cargo run --release -q -- tune cp --strategy exhaustive --jobs 2 \
    --check-races --trace-out "$tracedir/races.jsonl")
echo "$races" | tail -n 1
if echo "$races" | grep -q "DEGRADED"; then
    echo "race smoke: --check-races quarantined configurations on the CP space" >&2
    exit 1
fi
if grep -q "verify.race" "$tracedir/races.jsonl"; then
    echo "race smoke: unexpected verify.race event on the CP space" >&2
    exit 1
fi

echo "==> selection smoke (tune matmul --filter tile=16)"
# The declarative filter must narrow the matmul space to its 48
# tile-16 points and still find a best configuration.
filtered=$(cargo run --release -q -- tune matmul --strategy exhaustive --jobs 2 \
    --filter tile=16)
echo "$filtered" | tail -n 1
echo "$filtered" | grep -q "selection: tile=16 -> 48 of 96 configurations" || {
    echo "selection smoke: expected the tile=16 filter to keep 48 of 96 points" >&2
    exit 1
}
echo "$filtered" | grep -q "^best configuration: .*16x16" || {
    echo "selection smoke: expected a 16x16 best configuration" >&2
    exit 1
}

echo "==> lazy-vs-eager smoke (tune cp, identical stdout)"
# The lazy default and --eager must print byte-identical search output
# at the same worker count (manifests differ only in wall-clock runtime,
# so the comparison is on the deterministic report text).
cargo run --release -q -- tune cp --strategy exhaustive --jobs 4 \
    > "$tracedir/lazy.txt"
cargo run --release -q -- tune cp --strategy exhaustive --jobs 4 --eager \
    > "$tracedir/eager.txt"
diff -u "$tracedir/lazy.txt" "$tracedir/eager.txt" || {
    echo "lazy-vs-eager smoke: reports differ between instantiation paths" >&2
    exit 1
}

echo "==> branch-and-bound smoke (tune cp --strategy bnb)"
# Best-first search under the admissible bound must land on the same
# optimum exhaustive evaluation finds on the CP space, and its profile
# must show subspaces discarded without instantiation.
cargo run --release -q -- tune cp --strategy exhaustive --jobs 2 \
    > "$tracedir/cp_exhaustive.txt"
cargo run --release -q -- tune cp --strategy bnb --jobs 2 --profile \
    > "$tracedir/cp_bnb.txt"
best_exhaustive=$(grep "^best configuration:" "$tracedir/cp_exhaustive.txt")
best_bnb=$(grep "^best configuration:" "$tracedir/cp_bnb.txt")
echo "$best_bnb"
if [ "$best_exhaustive" != "$best_bnb" ]; then
    echo "bnb smoke: optimum differs from exhaustive:" >&2
    echo "  exhaustive: $best_exhaustive" >&2
    echo "  bnb:        $best_bnb" >&2
    exit 1
fi
grep -Eq "^bound-pruned subspaces +[1-9]" "$tracedir/cp_bnb.txt" || {
    echo "bnb smoke: expected bound_pruned_subspaces > 0 in the profile" >&2
    exit 1
}

echo "==> persistence smoke (tune sad --store-dir, warm re-run, corruption)"
# A warm store must serve every unique back as a store hit with zero
# fresh simulations; a torn segment must cost only the damaged records,
# never the run.
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --store-dir "$tracedir/store" > "$tracedir/cold.txt" 2> /dev/null
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --store-dir "$tracedir/store" --profile > "$tracedir/warm.txt" 2> /dev/null
grep -Eq "store hits +[1-9]" "$tracedir/warm.txt" || {
    echo "persistence smoke: expected store hits > 0 on the warm run" >&2
    exit 1
}
grep -Eq "sims executed +0 " "$tracedir/warm.txt" || {
    echo "persistence smoke: expected zero fresh simulations on the warm run" >&2
    exit 1
}
seg=$(ls "$tracedir/store"/*.seg | head -n 1)
truncate -s -10 "$seg"
cargo run --release -q -- store verify "$tracedir/store" | tail -n 1
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --store-dir "$tracedir/store" > "$tracedir/damaged.txt" 2> /dev/null || {
    echo "persistence smoke: run failed after segment corruption" >&2
    exit 1
}
grep "^best configuration:" "$tracedir/cold.txt" > "$tracedir/cold_best.txt"
grep "^best configuration:" "$tracedir/damaged.txt" > "$tracedir/damaged_best.txt"
diff -u "$tracedir/cold_best.txt" "$tracedir/damaged_best.txt" || {
    echo "persistence smoke: best configuration changed after corruption" >&2
    exit 1
}

echo "==> resume smoke (tune sad --checkpoint/--stop-after-units, --resume)"
# An interrupted run (exit 130, no stdout report) resumed from its
# checkpoint must print a report byte-identical to an uninterrupted run.
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    > "$tracedir/uninterrupted.txt"
set +e
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --checkpoint "$tracedir/sad.ck" --stop-after-units 100 \
    > "$tracedir/interrupted.txt" 2> /dev/null
status=$?
set -e
if [ "$status" -ne 130 ]; then
    echo "resume smoke: expected exit 130 from the interrupted run, got $status" >&2
    exit 1
fi
if [ -s "$tracedir/interrupted.txt" ]; then
    echo "resume smoke: interrupted run must not print a stdout report" >&2
    exit 1
fi
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    --resume "$tracedir/sad.ck" > "$tracedir/resumed.txt" 2> /dev/null
diff -u "$tracedir/uninterrupted.txt" "$tracedir/resumed.txt" || {
    echo "resume smoke: resumed report differs from the uninterrupted run" >&2
    exit 1
}

echo "==> strategy-zoo smoke (tune cp --strategy hill|anneal|genetic|surrogate)"
# Every iterative strategy must complete a small seeded search on the
# CP space and report a best configuration under its seed-bearing name.
for strategy in hill anneal genetic surrogate; do
    zoo=$(cargo run --release -q -- tune cp --strategy "$strategy" \
        --budget 12 --seed 1 --jobs 2)
    echo "$zoo" | grep -q "^best configuration:" || {
        echo "zoo smoke: --strategy $strategy found no best configuration" >&2
        exit 1
    }
    echo "$zoo" | grep -q "^strategy $strategy-12" || {
        echo "zoo smoke: --strategy $strategy report lacks its budgeted name" >&2
        exit 1
    }
done

echo "==> zoo convergence smoke (profile --app cp --convergence-out)"
# The convergence export must carry a curve for every zoo strategy
# alongside the classic three.
cargo run --release -q -p optspace-bench --bin profile -- --app cp --jobs 2 \
    --convergence-out "$tracedir/zoo_convergence.json" > /dev/null
for strategy in exhaustive pruned bnb hill anneal genetic surrogate; do
    grep -q "\"strategy\": \"$strategy\"" "$tracedir/zoo_convergence.json" || {
        echo "zoo convergence smoke: no $strategy curve in the export" >&2
        exit 1
    }
done

echo "==> decoded-parity smoke (tune sad --engine legacy vs default)"
# The decoded arena engine and the retained pre-decode reference must
# print byte-identical search reports on a real application space — the
# whole tentpole rests on the two being observationally equal.
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 \
    > "$tracedir/engine_decoded.txt"
cargo run --release -q -- tune sad --strategy exhaustive --jobs 2 --engine legacy \
    > "$tracedir/engine_legacy.txt"
diff -u "$tracedir/engine_decoded.txt" "$tracedir/engine_legacy.txt" || {
    echo "decoded-parity smoke: reports differ between engines" >&2
    exit 1
}

echo "==> debug-assertion build (gpu-sim dev profile)"
# The simulators carry their structural invariants as debug_assert!s
# (arena/source positional identity, frame bookkeeping); a dev-profile
# build+test of the sim crate keeps those armed.
cargo test -q -p gpu-sim > /dev/null

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps > /dev/null

echo "All checks passed."
