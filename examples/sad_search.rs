//! Navigating a large, ragged space: the SAD kernel's 675-configuration
//! space (Figure 4), searched three ways — exhaustively, with the
//! paper's Pareto pruning, and by random sampling with the same budget.
//!
//! Run with: `cargo run --release --example sad_search [-- --jobs N]`

use gpu_autotune::arch::MachineSpec;
use gpu_autotune::kernels::sad::Sad;
use gpu_autotune::kernels::App;
use gpu_autotune::optspace::engine::EvalEngine;
use gpu_autotune::optspace::report::fmt_ms;
use gpu_autotune::optspace::tuner::{ExhaustiveSearch, PrunedSearch, RandomSearch, SearchStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let engine = EvalEngine::with_jobs(jobs);
    let spec = MachineSpec::geforce_8800_gtx();
    let sad = Sad::paper_problem();
    let candidates = sad.candidates();
    println!(
        "SAD: QCIF {}x{}, {} search positions, {} configurations ({} worker{})",
        sad.width,
        sad.height,
        sad.positions(),
        candidates.len(),
        jobs,
        if jobs == 1 { "" } else { "s" },
    );

    let exhaustive = ExhaustiveSearch.run_with(&engine, &candidates, &spec);
    let best_time = exhaustive.best_time_ms().expect("valid space");
    println!(
        "\nexhaustive: {} configs timed ({} unique sims, {} cache hits), {} total, \
         best = {} ({})",
        exhaustive.evaluated_count(),
        exhaustive.stats.unique_sims,
        exhaustive.stats.cache_hits,
        fmt_ms(exhaustive.evaluation_time_ms()),
        candidates[exhaustive.best.expect("valid")].label,
        fmt_ms(best_time),
    );

    let pruned = PrunedSearch::default().run_with(&engine, &candidates, &spec);
    println!(
        "pruned:     {} configs timed ({:.0}% reduction), best = {} ({})",
        pruned.evaluated_count(),
        pruned.space_reduction() * 100.0,
        candidates[pruned.best.expect("valid")].label,
        fmt_ms(pruned.best_time_ms().expect("valid")),
    );

    // Random sampling with the pruned budget: how often does it find
    // the optimum, and how far off is it on average?
    let budget = pruned.evaluated_count();
    let trials = 25;
    let mut hits = 0;
    let mut regret = 0.0;
    for seed in 0..trials {
        let r = RandomSearch::new(budget, seed).run_with(&engine, &candidates, &spec);
        let t = r.best_time_ms().expect("non-empty sample");
        if (t / best_time - 1.0).abs() < 1e-9 {
            hits += 1;
        }
        regret += t / best_time - 1.0;
    }
    println!(
        "random x{trials} (budget {budget}): optimum found {hits}/{trials} times, \
         mean gap +{:.1}%",
        regret / f64::from(trials as u32) * 100.0
    );
}
