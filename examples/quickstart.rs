//! Quickstart: statically evaluate one kernel configuration the way the
//! paper does with `nvcc -ptx`/`-cubin`, then time it on the simulated
//! GeForce 8800 GTX.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_autotune::arch::MachineSpec;
use gpu_autotune::kernels::matmul::{MatMul, MatMulConfig};
use gpu_autotune::optspace::report::fmt_ms;

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();

    // The section 4 worked example: 16x16 tiles, complete unroll.
    let mm = MatMul::paper_problem();
    let cfg = MatMulConfig { tile: 16, rect: 1, unroll: 0, prefetch: false, spill: false };
    let candidate = mm.candidate(&cfg);

    // Static evaluation: dynamic instruction count, blocking regions,
    // register/shared-memory usage, occupancy, and the two metrics.
    let eval = candidate.evaluate(&spec).expect("configuration is launchable");
    let p = &eval.kernel_profile;
    println!("configuration:        {}", candidate.label);
    println!("dynamic instructions: {}", p.profile.instr);
    println!("blocking regions:     {}", p.profile.regions);
    println!("registers/thread:     {}", p.usage.regs_per_thread);
    println!("shared mem/block:     {} bytes", p.usage.smem_per_block);
    println!("blocks per SM (B_SM): {}", p.occupancy.blocks_per_sm);
    println!("warps per block:      {}", p.profile.warps_per_block);
    println!("Efficiency:           {:.3e}", eval.metrics.efficiency);
    println!("Utilization:          {:.1}", eval.metrics.utilization);
    println!(
        "bandwidth pressure:   {:.2} ({})",
        eval.bandwidth.pressure(),
        if eval.bandwidth.is_bandwidth_bound() { "bandwidth-bound" } else { "compute-bound" }
    );

    // Timing simulation — the stand-in for a wall-clock run.
    let prog = gpu_autotune::ir::linear::linearize(&candidate.kernel);
    let report = gpu_autotune::sim::timing::simulate(&prog, &candidate.launch, &p.usage, &spec)
        .expect("launchable");
    println!("simulated time:       {}", fmt_ms(report.time_ms));
    println!("issue utilization:    {:.0}%", report.issue_utilization() * 100.0);

    // And the PTX-style listing a developer would inspect.
    println!("\n--- kernel head (PTX view) ---");
    let ptx = gpu_autotune::ir::print::to_ptx(&candidate.kernel);
    for line in ptx.lines().take(14) {
        println!("{line}");
    }
}
