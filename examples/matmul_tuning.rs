//! Full tuning workflow on matrix multiplication: exhaustively explore
//! the 96-configuration space, then repeat the search with the paper's
//! Pareto pruning and compare cost and outcome.
//!
//! Run with: `cargo run --release --example matmul_tuning`

use gpu_autotune::arch::MachineSpec;
use gpu_autotune::kernels::matmul::MatMul;
use gpu_autotune::kernels::App;
use gpu_autotune::optspace::pareto::pareto_indices;
use gpu_autotune::optspace::report::{ascii_scatter, fmt_ms};
use gpu_autotune::optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchStrategy};

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let mm = MatMul::reduced_problem();
    let candidates = mm.candidates();

    println!("space: {} configurations", candidates.len());

    let exhaustive = ExhaustiveSearch.run(&candidates, &spec);
    let best = exhaustive.best.expect("valid space");
    println!(
        "exhaustive search: timed {} configs, total simulated time {}, best = {} ({})",
        exhaustive.evaluated_count(),
        fmt_ms(exhaustive.evaluation_time_ms()),
        candidates[best].label,
        fmt_ms(exhaustive.best_time_ms().expect("best exists")),
    );

    let pruned = PrunedSearch::default().run(&candidates, &spec);
    let pbest = pruned.best.expect("pareto subset is non-empty");
    println!(
        "pruned search:     timed {} configs ({}% of the space untouched), best = {} ({})",
        pruned.evaluated_count(),
        (pruned.space_reduction() * 100.0).round(),
        candidates[pbest].label,
        fmt_ms(pruned.best_time_ms().expect("best exists")),
    );
    println!(
        "same optimum found: {}",
        if pruned.best == exhaustive.best { "yes" } else { "no (see EXPERIMENTS.md)" }
    );

    // Show the metric plane with the Pareto curve, Figure 6(a)-style
    // (bandwidth-bound 8x8 points screened away, section 5.3).
    let idx: Vec<usize> = pruned
        .statics
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
        .filter(|(_, e)| !e.bandwidth.is_bandwidth_bound())
        .map(|(i, _)| i)
        .collect();
    let points: Vec<_> =
        idx.iter().map(|&i| pruned.statics[i].as_ref().expect("valid").metrics.point()).collect();
    let curve = pareto_indices(&points);
    let optimum = idx.iter().position(|&i| Some(i) == exhaustive.best);
    println!("\nefficiency-utilization plane ('*' Pareto, 'O' optimum):");
    println!("{}", ascii_scatter(&points, &curve, optimum, 60, 18));
}
