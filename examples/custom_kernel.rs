//! Bring your own kernel: build a reduction-style kernel with the IR
//! builder, generate a small configuration space by varying block size
//! and unroll factor with the pass pipeline, verify every variant
//! functionally on the interpreter, and prune the space with the
//! paper's metrics.
//!
//! Run with: `cargo run --release --example custom_kernel`

use gpu_autotune::arch::MachineSpec;
use gpu_autotune::ir::build::KernelBuilder;
use gpu_autotune::ir::linear::linearize;
use gpu_autotune::ir::types::Special;
use gpu_autotune::ir::{Dim, Kernel, Launch};
use gpu_autotune::optspace::candidate::Candidate;
use gpu_autotune::optspace::report::fmt_ms;
use gpu_autotune::optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchStrategy};
use gpu_autotune::passes::{innermost_loops, unroll};
use gpu_autotune::sim::interp::{run_kernel, DeviceMemory};

/// Elements each thread accumulates.
const PER_THREAD: u32 = 64;
/// Total input elements.
const N: u32 = 1 << 20;

/// out[g] = sum of x[g], x[g + stride], ... (PER_THREAD strided terms),
/// where g is the global thread id and stride the total thread count.
fn build(block: u32, unroll_factor: u32) -> (Kernel, Launch) {
    let threads = N / PER_THREAD;
    let mut b = KernelBuilder::new(format!("reduce_b{block}_u{unroll_factor}"));
    let x_base = b.param(0);
    let out_base = b.param(1);
    let tx = b.read_special(Special::TidX);
    let bx = b.read_special(Special::CtaIdX);
    let ntid = b.read_special(Special::NTidX);
    let g = b.imad(bx, ntid, tx);
    let ptr = b.iadd(x_base, g);
    let acc = b.mov(0.0f32);
    b.repeat(PER_THREAD, |b| {
        let v = b.ld_global(ptr, 0);
        b.fmad_acc(v, 1.0f32, acc);
        b.iadd_acc(ptr, threads as i32);
    });
    let oa = b.iadd(out_base, g);
    b.st_global(oa, 0, acc);
    let mut k = b.finish();

    let inner = innermost_loops(&k).into_iter().next().expect("loop exists");
    unroll(&mut k, &inner, unroll_factor).expect("divides PER_THREAD");
    gpu_autotune::passes::fold_strided_addresses(&mut k);

    (k, Launch::new(Dim::new_1d(threads / block), Dim::new_1d(block)))
}

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();

    // Enumerate a 20-point space.
    let mut candidates = Vec::new();
    for block in [64u32, 128, 256, 512] {
        for unroll_factor in [1u32, 2, 4, 8, 16] {
            let (k, launch) = build(block, unroll_factor);
            candidates.push(Candidate::new(format!("b{block}/u{unroll_factor}"), k, launch));
        }
    }

    // Verify every variant computes the same sums on real data.
    let threads = (N / PER_THREAD) as usize;
    let mut base = DeviceMemory::new(N as usize + threads);
    for i in 0..N as usize {
        base.global[i] = (i % 97) as f32 * 0.25;
    }
    let expected: Vec<f32> = (0..threads)
        .map(|g| (0..PER_THREAD as usize).map(|j| base.global[g + j * threads]).sum())
        .collect();
    for c in &candidates {
        let mut mem = base.clone();
        run_kernel(&linearize(&c.kernel), &c.launch, &[0, N as i32], &mut mem)
            .expect("kernel runs");
        let got = &mem.global[N as usize..];
        assert_eq!(got, &expected[..], "{} computes the wrong sums", c.label);
    }
    println!("all {} variants verified against the CPU reference", candidates.len());

    // Tune.
    let exhaustive = ExhaustiveSearch.run(&candidates, &spec);
    let pruned = PrunedSearch::default().run(&candidates, &spec);
    println!(
        "exhaustive: {} configs, best {} at {}",
        exhaustive.evaluated_count(),
        candidates[exhaustive.best.expect("valid")].label,
        fmt_ms(exhaustive.best_time_ms().expect("best exists")),
    );
    println!(
        "pruned:     {} configs ({:.0}% reduction), best {} at {}",
        pruned.evaluated_count(),
        pruned.space_reduction() * 100.0,
        candidates[pruned.best.expect("valid")].label,
        fmt_ms(pruned.best_time_ms().expect("best exists")),
    );
}
