use gpu_arch::{MachineSpec, ResourceUsage};
use gpu_ir::build::KernelBuilder;
use gpu_ir::linear::linearize;
use gpu_ir::{Dim, Launch};

#[test]
fn trailing_sync_decoded_vs_legacy() {
    let mut b = KernelBuilder::new("ts");
    let p = b.param(0);
    let acc = b.mov(0.0f32);
    b.fmad_acc(1.0f32, 1.0f32, acc);
    b.st_global(p, 0, acc);
    b.sync(); // program ends at a barrier
    let prog = linearize(&b.finish());
    let spec = MachineSpec::geforce_8800_gtx();
    let launch = Launch::new(Dim::new_1d(4), Dim::new_1d(64));
    let usage = ResourceUsage::new(64, 10, 0);
    let leg = gpu_sim::legacy::timing::simulate_fueled(&prog, &launch, &usage, &spec, None);
    println!("legacy: {leg:?}");
    let dec = gpu_sim::timing::simulate_fueled(&prog, &launch, &usage, &spec, None);
    println!("decoded: {dec:?}");
    assert_eq!(format!("{dec:?}"), format!("{leg:?}"));
}
