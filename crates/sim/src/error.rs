//! Simulation failure modes.

use std::error::Error;
use std::fmt;

/// Errors raised while executing a kernel on either engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A load or store addressed outside the allocated memory.
    OutOfBounds {
        /// Memory space name ("global", "shared", "local").
        space: &'static str,
        /// Word address requested.
        addr: i64,
        /// Words allocated.
        len: usize,
    },
    /// An operand had the wrong runtime type for the operation
    /// (e.g. float arithmetic on an integer register).
    TypeMismatch {
        /// Mnemonic of the offending operation.
        op: String,
    },
    /// A kernel parameter index exceeded the supplied parameter list.
    MissingParam {
        /// Parameter slot requested.
        index: u32,
    },
    /// Threads of one block reached different barriers (or some exited
    /// while others wait) — undefined behaviour in CUDA, an error here.
    BarrierDivergence,
    /// The step budget was exhausted; guards against generator bugs.
    StepBudgetExhausted,
    /// Two threads of one block touched the same shared-memory word in
    /// the same barrier-delimited segment, at least one access a write,
    /// and the accesses do not commute (write/write conflicts of the
    /// *same* bit pattern are benign and not reported). Only raised by
    /// the race-oracle entry points.
    SharedRace {
        /// Shared-memory word address raced on.
        addr: usize,
        /// Linear index (`tid.y * ntid.x + tid.x`) of the thread whose
        /// access was recorded first.
        first: u32,
        /// Linear index of the thread whose access collided with it.
        second: u32,
        /// Conflict shape: `"write/write"` or `"read/write"`.
        kind: &'static str,
    },
    /// The launch has a zero-extent grid or block dimension, so no
    /// thread would ever run.
    EmptyLaunch,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { space, addr, len } => {
                write!(f, "{space} access at word {addr} outside allocation of {len} words")
            }
            SimError::TypeMismatch { op } => write!(f, "operand type mismatch in {op}"),
            SimError::MissingParam { index } => write!(f, "kernel parameter {index} not supplied"),
            SimError::BarrierDivergence => {
                write!(f, "threads of one block reached different barriers")
            }
            SimError::StepBudgetExhausted => write!(f, "interpreter step budget exhausted"),
            SimError::SharedRace { addr, first, second, kind } => write!(
                f,
                "shared-memory {kind} race on word {addr} between threads {first} and {second} \
                 (no barrier between the accesses)"
            ),
            SimError::EmptyLaunch => {
                write!(f, "launch has a zero-extent grid or block dimension")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = SimError::OutOfBounds { space: "global", addr: 99, len: 10 };
        let s = e.to_string();
        assert!(s.contains("global") && s.contains("99") && s.contains("10"));
    }

    #[test]
    fn race_display_names_both_threads() {
        let e = SimError::SharedRace { addr: 7, first: 0, second: 3, kind: "write/write" };
        let s = e.to_string();
        assert!(s.contains("word 7") && s.contains("threads 0 and 3"));
        assert!(s.contains("write/write"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SimError>();
    }
}
