//! Simulation failure modes.

use std::error::Error;
use std::fmt;

/// Errors raised while executing a kernel on either engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A load or store addressed outside the allocated memory.
    OutOfBounds {
        /// Memory space name ("global", "shared", "local").
        space: &'static str,
        /// Word address requested.
        addr: i64,
        /// Words allocated.
        len: usize,
    },
    /// An operand had the wrong runtime type for the operation
    /// (e.g. float arithmetic on an integer register).
    TypeMismatch {
        /// Mnemonic of the offending operation.
        op: String,
    },
    /// A kernel parameter index exceeded the supplied parameter list.
    MissingParam {
        /// Parameter slot requested.
        index: u32,
    },
    /// Threads of one block reached different barriers (or some exited
    /// while others wait) — undefined behaviour in CUDA, an error here.
    BarrierDivergence,
    /// The step budget was exhausted; guards against generator bugs.
    StepBudgetExhausted,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { space, addr, len } => {
                write!(f, "{space} access at word {addr} outside allocation of {len} words")
            }
            SimError::TypeMismatch { op } => write!(f, "operand type mismatch in {op}"),
            SimError::MissingParam { index } => write!(f, "kernel parameter {index} not supplied"),
            SimError::BarrierDivergence => {
                write!(f, "threads of one block reached different barriers")
            }
            SimError::StepBudgetExhausted => write!(f, "interpreter step budget exhausted"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = SimError::OutOfBounds { space: "global", addr: 99, len: 10 };
        let s = e.to_string();
        assert!(s.contains("global") && s.contains("99") && s.contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SimError>();
    }
}
