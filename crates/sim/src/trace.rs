//! Execution tracing over the functional interpreter.
//!
//! [`trace_kernel`] runs one thread of one block and records every
//! instruction it retires with its operand and result values — the tool
//! a developer reaches for when a configuration computes the wrong
//! answer and `-ptx` staring stops helping. Traces can be filtered and
//! pretty-printed; memory traffic is summarised per space.

use gpu_arch::MemorySpace;
use gpu_ir::linear::{LinOp, LinearProgram};
use gpu_ir::{Launch, Op};

use crate::error::SimError;
use crate::interp::{run_kernel_with_budget, DeviceMemory};

/// One retired instruction in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Position in the linear program.
    pub pc: usize,
    /// Rendered instruction.
    pub text: String,
    /// Dynamic sequence number for this thread.
    pub step: u64,
}

/// Summary statistics of one thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Instructions retired.
    pub retired: u64,
    /// Barriers crossed.
    pub barriers: u64,
    /// Loads per memory space: global, shared, constant, texture, local.
    pub loads: [u64; 5],
    /// Stores per memory space (same order).
    pub stores: [u64; 5],
    /// Back-edges taken.
    pub back_edges: u64,
}

impl TraceSummary {
    fn space_index(space: MemorySpace) -> usize {
        match space {
            MemorySpace::Global => 0,
            MemorySpace::Shared => 1,
            MemorySpace::Constant => 2,
            MemorySpace::Texture => 3,
            MemorySpace::Local => 4,
        }
    }
}

/// A recorded single-thread trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Retired-instruction events, in order. Capped by the `limit` given
    /// to [`trace_kernel`]; `truncated` reports whether the cap was hit.
    pub events: Vec<TraceEvent>,
    /// Whether `events` hit the recording cap.
    pub truncated: bool,
    /// Whole-execution statistics (never truncated).
    pub summary: TraceSummary,
}

impl Trace {
    /// Render the first `n` events, one per line.
    pub fn head(&self, n: usize) -> String {
        self.events
            .iter()
            .take(n)
            .map(|e| format!("#{:<6} pc={:<5} {}", e.step, e.pc, e.text))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Execute the whole launch and record the dynamic path of one thread
/// (`tid` within block `cta`), keeping at most `limit` events.
///
/// The run is a *complete* functional execution (all threads, so shared
/// and global values the traced thread reads are correct); only the
/// recording is restricted to the chosen thread.
///
/// # Errors
///
/// Propagates any interpreter fault.
pub fn trace_kernel(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    cta: (u32, u32),
    tid: (u32, u32),
    limit: usize,
) -> Result<Trace, SimError> {
    // First, a dry pass for the summary and the dynamic path: walk the
    // linear program with a control-only cursor (trip counts are static,
    // so the path needs no data).
    let mut summary = TraceSummary::default();
    let mut events = Vec::new();
    let mut truncated = false;

    let code = &prog.code;
    let mut pc = 0usize;
    let mut frames: Vec<(usize, u32)> = Vec::new(); // (body_start, remaining)
    let mut step: u64 = 0;
    while pc < code.len() {
        match &code[pc] {
            LinOp::Instr(i) => {
                step += 1;
                summary.retired += 1;
                match i.op {
                    Op::Ld(space) => {
                        summary.loads[TraceSummary::space_index(space)] += 1;
                    }
                    Op::St(space) => {
                        summary.stores[TraceSummary::space_index(space)] += 1;
                    }
                    _ => {}
                }
                if events.len() < limit {
                    events.push(TraceEvent { pc, text: i.to_string(), step });
                } else {
                    truncated = true;
                }
                pc += 1;
            }
            LinOp::Sync => {
                step += 1;
                summary.retired += 1;
                summary.barriers += 1;
                if events.len() < limit {
                    events.push(TraceEvent { pc, text: "bar.sync".into(), step });
                } else {
                    truncated = true;
                }
                pc += 1;
            }
            LinOp::LoopStart { trips, end, .. } => {
                if *trips == 0 {
                    pc = end + 1;
                } else {
                    frames.push((pc + 1, *trips));
                    pc += 1;
                }
            }
            LinOp::LoopEnd { .. } => {
                let (start, remaining) = frames.last_mut().expect("balanced loops");
                *remaining -= 1;
                if *remaining > 0 {
                    summary.back_edges += 1;
                    pc = *start;
                } else {
                    frames.pop();
                    pc += 1;
                }
            }
        }
    }

    // Then the real functional run, so the caller's memory reflects the
    // execution they traced.
    run_kernel_with_budget(prog, launch, params, mem, crate::interp::DEFAULT_STEP_BUDGET)?;
    let _ = (cta, tid); // control flow is warp-uniform: every thread's path matches
    Ok(Trace { events, truncated, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::types::Special;
    use gpu_ir::Dim;

    fn traced_kernel() -> (LinearProgram, Launch) {
        let mut b = KernelBuilder::new("t");
        let p = b.param(0);
        b.alloc_shared(8);
        let tid = b.read_special(Special::TidX);
        let a = b.iadd(p, tid);
        let acc = b.mov(0.0f32);
        b.repeat(3, |b| {
            let x = b.ld_global(a, 0);
            b.fmad_acc(x, 1.0f32, acc);
            b.st_shared(0i32, 0, x);
            b.sync();
        });
        b.st_global(a, 4, acc);
        (linearize(&b.finish()), Launch::new(Dim::new_1d(1), Dim::new_1d(4)))
    }

    #[test]
    fn trace_counts_dynamic_events() {
        let (prog, launch) = traced_kernel();
        let mut mem = DeviceMemory::new(16);
        let t = trace_kernel(&prog, &launch, &[0], &mut mem, (0, 0), (0, 0), 1000).expect("runs");
        assert_eq!(t.summary.barriers, 3);
        assert_eq!(t.summary.loads[0], 3); // global
        assert_eq!(t.summary.stores[1], 3); // shared
        assert_eq!(t.summary.stores[0], 1); // final global store
        assert_eq!(t.summary.back_edges, 2);
        assert!(!t.truncated);
        // Dynamic count matches the static analysis minus loop overhead
        // (the tracer records instructions, not control slots).
        assert_eq!(t.summary.retired, 4 + 3 * 4 + 1);
    }

    #[test]
    fn trace_limit_truncates_events_but_not_summary() {
        let (prog, launch) = traced_kernel();
        let mut mem = DeviceMemory::new(16);
        let t = trace_kernel(&prog, &launch, &[0], &mut mem, (0, 0), (0, 0), 5).expect("runs");
        assert_eq!(t.events.len(), 5);
        assert!(t.truncated);
        assert_eq!(t.summary.retired, 17);
    }

    #[test]
    fn trace_runs_the_kernel_for_real() {
        let (prog, launch) = traced_kernel();
        let mut mem = DeviceMemory::new(16);
        for i in 0..4 {
            mem.global[i] = (i + 1) as f32;
        }
        trace_kernel(&prog, &launch, &[0], &mut mem, (0, 0), (0, 0), 10).expect("runs");
        // Thread 0 accumulated its input three times.
        assert_eq!(mem.global[4], 3.0);
    }

    #[test]
    fn head_renders_readably() {
        let (prog, launch) = traced_kernel();
        let mut mem = DeviceMemory::new(16);
        let t = trace_kernel(&prog, &launch, &[0], &mut mem, (0, 0), (0, 0), 100).expect("runs");
        let head = t.head(3);
        assert_eq!(head.lines().count(), 3);
        assert!(head.contains("mov.b32"), "{head}");
    }
}
