//! One-time lowering of a [`LinearProgram`] into a flat, fixed-width
//! op arena the execution engines can walk by index.
//!
//! The structured [`LinOp`] form is convenient to build and analyze, but
//! executing it means re-matching an enum (and chasing the `Vec<Operand>`
//! inside every [`gpu_ir::Instr`]) once per warp per scheduler step.
//! [`decode`] pays that cost once: every op becomes a [`DecodedOp`] —
//! operand slots resolved to dense [`Slot`]s, the latency lane
//! pre-classified, branch targets and loop metadata pre-computed — so
//! the simulators' inner loops are index walks over a `Vec<DecodedOp>`.
//!
//! Two invariants make the rest of the stack simple:
//!
//! * **Positional identity**: `arena.ops[pc]` corresponds 1:1 to
//!   `source.code[pc]`. Loop targets, barrier positions, and step counts
//!   are therefore identical between the decoded engines and the legacy
//!   reference interpreters in [`crate::legacy`].
//! * **Trip independence**: the arena stores no trip counts. Loops are
//!   numbered in code order and a [`DecodedProgram`] carries its own
//!   `loop_trips` vector, so structurally identical programs that differ
//!   only in trip counts (the engine's *families*) share one arena via
//!   [`DecodedProgram::with_arena`].

use std::sync::Arc;

use gpu_ir::linear::{LinOp, LinearProgram};
use gpu_ir::types::{Operand, Special};
use gpu_ir::Op;

/// Sentinel register index meaning "none" (no destination / no counter).
pub const NO_REG: u32 = u32::MAX;

/// A pre-resolved operand: what [`Operand`] becomes once register and
/// parameter indices are flattened to plain integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// Virtual register, by index into the register file.
    Reg(u32),
    /// `f32` immediate.
    ImmF(f32),
    /// `i32` immediate.
    ImmI(i32),
    /// Thread-geometry special register.
    Special(Special),
    /// Kernel parameter, by index.
    Param(u32),
    /// Unused slot (ops with arity < 3).
    None,
}

impl From<&Operand> for Slot {
    fn from(o: &Operand) -> Self {
        match o {
            Operand::Reg(r) => Slot::Reg(r.index() as u32),
            Operand::ImmF32(v) => Slot::ImmF(*v),
            Operand::ImmI32(v) => Slot::ImmI(*v),
            Operand::Special(s) => Slot::Special(*s),
            Operand::Param(i) => Slot::Param(*i),
        }
    }
}

/// Structural kind of a decoded op — what the scheduler dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecKind {
    /// Ordinary instruction.
    Instr,
    /// Thread-block barrier.
    Sync,
    /// Loop header (consumed by fast-forward, never issued).
    LoopStart,
    /// Loop back edge.
    LoopEnd,
}

/// Pre-classified latency lane of an instruction — which timing rule
/// applies, resolved at decode time instead of per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatClass {
    /// Long-latency (off-chip) load: bandwidth queue + global latency.
    MemLd,
    /// Long-latency store: fire-and-forget, but consumes bandwidth.
    MemSt,
    /// On-chip load/store: shared latency, bank-conflict replays.
    OnChip,
    /// SFU transcendental: shared SFU issue port, SFU latency.
    Sfu,
    /// Everything else on the SP units.
    Arith,
    /// Control ops (`Sync`/loop markers); carry no latency class.
    Control,
}

fn classify(op: Op) -> LatClass {
    match op {
        Op::Ld(s) if s.is_long_latency() => LatClass::MemLd,
        Op::St(s) if s.is_long_latency() => LatClass::MemSt,
        Op::Ld(_) | Op::St(_) => LatClass::OnChip,
        op if op.is_sfu() => LatClass::Sfu,
        _ => LatClass::Arith,
    }
}

/// One dense, fixed-width decoded op. 1:1 with the source
/// [`LinOp`] at the same index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedOp {
    /// Structural kind.
    pub kind: DecKind,
    /// Latency lane ([`LatClass::Control`] for non-instructions).
    pub lat: LatClass,
    /// The operation ([`Op::Mov`] placeholder for non-instructions).
    pub op: Op,
    /// Destination register index, or [`NO_REG`].
    pub dst: u32,
    /// Number of live entries in `srcs`.
    pub nsrc: u8,
    /// Coalescing flag (memory ops).
    pub coalesced: bool,
    /// On-chip replay degree (memory ops).
    pub replay_ways: u8,
    /// Immediate address offset (memory ops).
    pub offset: i32,
    /// Pre-resolved source operands.
    pub srcs: [Slot; 3],
    /// Register index of each source slot, or [`NO_REG`] for
    /// non-register slots — the scoreboard walk reads these instead of
    /// matching the [`Slot`] enum per operand per step.
    pub src_regs: [u32; 3],
    /// Loop id (code order) for `LoopStart`/`LoopEnd`, else [`NO_REG`].
    pub loop_id: u32,
    /// Pre-computed branch target: for `LoopStart` the zero-trip skip
    /// (`end + 1`), for `LoopEnd` the body start (`start + 1`).
    pub target: u32,
    /// Loop counter register index, or [`NO_REG`].
    pub counter: u32,
}

const NON_INSTR: DecodedOp = DecodedOp {
    kind: DecKind::Sync,
    lat: LatClass::Control,
    op: Op::Mov,
    dst: NO_REG,
    nsrc: 0,
    coalesced: true,
    replay_ways: 1,
    offset: 0,
    srcs: [Slot::None; 3],
    src_regs: [NO_REG; 3],
    loop_id: NO_REG,
    target: 0,
    counter: NO_REG,
};

/// Static metadata of one loop, indexed by loop id (code order of the
/// `LoopStart` ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopInfo {
    /// Code index of the `LoopStart`.
    pub start: u32,
    /// Code index of the matching `LoopEnd`.
    pub end: u32,
    /// Whether the loop sits at nesting depth zero.
    pub top_level: bool,
    /// Counter register index, or [`NO_REG`].
    pub counter: u32,
}

/// The trip-independent decoded form of one program structure. Shared
/// (behind an [`Arc`]) by every family member with the same structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedArena {
    /// Decoded ops, positionally identical to the source code.
    pub ops: Vec<DecodedOp>,
    /// Loop metadata by loop id.
    pub loops: Vec<LoopInfo>,
    /// Maximum loop nesting depth — the frame-stack capacity an executor
    /// needs per warp/thread.
    pub max_loop_depth: usize,
}

impl DecodedArena {
    /// Bytes of flat storage this arena occupies (reported by the
    /// engine's `decode.done` trace event).
    pub fn arena_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<DecodedOp>()
            + self.loops.len() * std::mem::size_of::<LoopInfo>()
    }
}

/// A program lowered for execution: a shared [`DecodedArena`] plus this
/// member's trip counts and the retained source (for exact-key
/// recomputation and the legacy escape hatch).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    /// The shared structural arena.
    pub arena: Arc<DecodedArena>,
    /// Trip count per loop id.
    pub loop_trips: Vec<u32>,
    /// The source program this was decoded from.
    pub source: LinearProgram,
}

impl DecodedProgram {
    /// Decode `source`, building a fresh arena.
    pub fn new(source: LinearProgram) -> Self {
        let (arena, loop_trips) = build_arena(&source);
        Self { arena: Arc::new(arena), loop_trips, source }
    }

    /// Decode `source` against an existing `arena` from a structurally
    /// identical program (same code, trip counts aside): only the trip
    /// vector is collected, the arena is shared.
    ///
    /// # Panics
    ///
    /// Panics when `source` has a different loop count than the arena —
    /// the caller keyed the arena cache wrongly.
    pub fn with_arena(source: LinearProgram, arena: Arc<DecodedArena>) -> Self {
        let loop_trips: Vec<u32> = source
            .code
            .iter()
            .filter_map(|op| match op {
                LinOp::LoopStart { trips, .. } => Some(*trips),
                _ => None,
            })
            .collect();
        assert_eq!(
            loop_trips.len(),
            arena.loops.len(),
            "arena reuse across structurally different programs"
        );
        debug_assert_eq!(arena.ops.len(), source.code.len());
        Self { arena, loop_trips, source }
    }

    /// Number of decoded ops.
    pub fn op_count(&self) -> usize {
        self.arena.ops.len()
    }

    /// Registers in the executor's register file.
    pub fn num_vregs(&self) -> u32 {
        self.source.num_vregs
    }

    /// Shared-memory words per block.
    pub fn smem_words(&self) -> u32 {
        self.source.smem_words
    }

    /// Kernel parameter count.
    pub fn num_params(&self) -> u32 {
        self.source.num_params
    }
}

/// Decode a program, building a fresh arena. Convenience wrapper over
/// [`DecodedProgram::new`] for callers holding a reference.
pub fn decode(prog: &LinearProgram) -> DecodedProgram {
    DecodedProgram::new(prog.clone())
}

fn build_arena(prog: &LinearProgram) -> (DecodedArena, Vec<u32>) {
    let mut ops = Vec::with_capacity(prog.code.len());
    let mut loops: Vec<LoopInfo> = Vec::new();
    let mut trips: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut max_depth = 0usize;
    for (ip, lin) in prog.code.iter().enumerate() {
        match lin {
            LinOp::Instr(i) => {
                let mut srcs = [Slot::None; 3];
                let mut src_regs = [NO_REG; 3];
                for (k, o) in i.srcs.iter().enumerate() {
                    srcs[k] = Slot::from(o);
                    if let Slot::Reg(r) = srcs[k] {
                        src_regs[k] = r;
                    }
                }
                ops.push(DecodedOp {
                    kind: DecKind::Instr,
                    lat: classify(i.op),
                    op: i.op,
                    dst: i.dst.map_or(NO_REG, |d| d.index() as u32),
                    nsrc: i.srcs.len() as u8,
                    coalesced: i.coalesced,
                    replay_ways: i.replay_ways,
                    offset: i.offset,
                    srcs,
                    src_regs,
                    ..NON_INSTR
                });
            }
            LinOp::Sync => ops.push(NON_INSTR),
            LinOp::LoopStart { counter, trips: t, end } => {
                let id = loops.len() as u32;
                let counter = counter.map_or(NO_REG, |c| c.index() as u32);
                loops.push(LoopInfo {
                    start: ip as u32,
                    end: *end as u32,
                    top_level: stack.is_empty(),
                    counter,
                });
                trips.push(*t);
                stack.push(id);
                max_depth = max_depth.max(stack.len());
                ops.push(DecodedOp {
                    kind: DecKind::LoopStart,
                    loop_id: id,
                    target: (*end + 1) as u32,
                    counter,
                    ..NON_INSTR
                });
            }
            LinOp::LoopEnd { start } => {
                let id = stack.pop().expect("unbalanced LoopEnd in a legalized program");
                debug_assert_eq!(loops[id as usize].start as usize, *start);
                ops.push(DecodedOp {
                    kind: DecKind::LoopEnd,
                    loop_id: id,
                    target: (*start + 1) as u32,
                    counter: loops[id as usize].counter,
                    ..NON_INSTR
                });
            }
        }
    }
    debug_assert!(stack.is_empty(), "unbalanced LoopStart in a legalized program");
    (DecodedArena { ops, loops, max_loop_depth: max_depth }, trips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;

    fn nested() -> LinearProgram {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            let v = b.ld_global(p, 8);
            b.repeat(3, |b| {
                b.fmad_acc(v, 1.0f32, acc);
            });
            b.sync();
        });
        b.st_global(p, 0, acc);
        linearize(&b.finish())
    }

    #[test]
    fn arena_is_positionally_identical_to_source() {
        let prog = nested();
        let d = DecodedProgram::new(prog.clone());
        assert_eq!(d.op_count(), prog.code.len());
        for (pc, (lin, dec)) in prog.code.iter().zip(&d.arena.ops).enumerate() {
            match lin {
                LinOp::Instr(i) => {
                    assert_eq!(dec.kind, DecKind::Instr, "pc {pc}");
                    assert_eq!(dec.op, i.op);
                    assert_eq!(dec.nsrc as usize, i.srcs.len());
                    assert_eq!(dec.offset, i.offset);
                }
                LinOp::Sync => assert_eq!(dec.kind, DecKind::Sync, "pc {pc}"),
                LinOp::LoopStart { end, .. } => {
                    assert_eq!(dec.kind, DecKind::LoopStart, "pc {pc}");
                    assert_eq!(dec.target as usize, end + 1);
                }
                LinOp::LoopEnd { start } => {
                    assert_eq!(dec.kind, DecKind::LoopEnd, "pc {pc}");
                    assert_eq!(dec.target as usize, start + 1);
                }
            }
        }
    }

    #[test]
    fn loops_are_numbered_in_code_order_with_trips_lifted() {
        let d = DecodedProgram::new(nested());
        assert_eq!(d.loop_trips, vec![4, 3]);
        assert_eq!(d.arena.loops.len(), 2);
        assert!(d.arena.loops[0].top_level);
        assert!(!d.arena.loops[1].top_level);
        assert_eq!(d.arena.max_loop_depth, 2);
        // Loop latency classes resolved once.
        let classes: Vec<LatClass> =
            d.arena.ops.iter().filter(|o| o.kind == DecKind::Instr).map(|o| o.lat).collect();
        assert!(classes.contains(&LatClass::MemLd));
        assert!(classes.contains(&LatClass::MemSt));
        assert!(classes.contains(&LatClass::Arith));
    }

    #[test]
    fn family_members_share_one_arena() {
        let mut long = KernelBuilder::new("k");
        let acc = long.mov(0.0f32);
        long.repeat(9, |b| {
            b.fmad_acc(1.0f32, 1.0f32, acc);
        });
        let p = long.param(0);
        long.st_global(p, 0, acc);
        let long = linearize(&long.finish());

        let mut short = KernelBuilder::new("k");
        let acc = short.mov(0.0f32);
        short.repeat(2, |b| {
            b.fmad_acc(1.0f32, 1.0f32, acc);
        });
        let p = short.param(0);
        short.st_global(p, 0, acc);
        let short = linearize(&short.finish());

        let a = DecodedProgram::new(long);
        let b = DecodedProgram::with_arena(short, a.arena.clone());
        assert!(Arc::ptr_eq(&a.arena, &b.arena));
        assert_eq!(a.loop_trips, vec![9]);
        assert_eq!(b.loop_trips, vec![2]);
    }

    #[test]
    fn arena_bytes_reflect_flat_storage() {
        let d = DecodedProgram::new(nested());
        let want =
            d.op_count() * std::mem::size_of::<DecodedOp>() + 2 * std::mem::size_of::<LoopInfo>();
        assert_eq!(d.arena.arena_bytes(), want);
        assert!(d.arena.arena_bytes() > 0);
    }
}
