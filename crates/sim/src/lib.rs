//! Execution engines for the G80 machine model.
//!
//! The paper validates its static metrics against wall-clock runs on a
//! GeForce 8800 GTX. Lacking that hardware, this crate supplies two
//! engines over the `gpu-ir` linear program:
//!
//! * [`interp`] — a **functional interpreter**: executes every thread of
//!   every block on real `f32` data, with shared memory and
//!   `__syncthreads` semantics. It exists so the test suite can prove
//!   that every optimization configuration of every generated kernel
//!   computes the same answer as the single-thread CPU reference. Its
//!   [`interp::run_kernel_checked`] variant adds a dynamic shared-memory
//!   race oracle (threads run sequentially, so an unchecked run would
//!   mask races behind deterministic-but-GPU-wrong results).
//! * [`timing`] — a **cycle-approximate warp-level timing simulator**:
//!   one SM hosting the occupancy-determined number of blocks, a
//!   single-issue port (one warp instruction per 4 cycles), scoreboarded
//!   register dependences, SFU throughput limits, barrier join
//!   semantics, and a global-memory queue enforcing both the 200–300
//!   cycle latency and the 86.4 GB/s bandwidth with G80 coalescing
//!   rules. This is the stand-in for the paper's wall-clock ground
//!   truth.
//! * [`trace`] — single-thread execution tracing for debugging
//!   generated configurations.
//!
//! Both engines execute the pre-decoded form from [`decode`]: a
//! [`LinearProgram`](gpu_ir::linear::LinearProgram) is lowered once into
//! a flat arena of fixed-width ops ([`decode::DecodedProgram`]), and the
//! hot loops walk that arena by index. The pre-decode reference engines
//! are retained in [`legacy`] as the behavioural oracle — the
//! differential test suite holds the two stacks bit-identical.
//!
//! # Examples
//!
//! ```
//! use gpu_ir::{build::KernelBuilder, linear::linearize, Dim, Launch};
//! use gpu_ir::types::Special;
//! use gpu_sim::interp::{run_kernel, DeviceMemory};
//!
//! // y[i] = x[i] * 2 over one 32-thread block.
//! let mut b = KernelBuilder::new("scale");
//! let x = b.param(0);
//! let y = b.param(1);
//! let tid = b.read_special(Special::TidX);
//! let xa = b.iadd(x, tid);
//! let ya = b.iadd(y, tid);
//! let v = b.ld_global(xa, 0);
//! let v2 = b.fmul_imm(v, 2.0);
//! b.st_global(ya, 0, v2);
//! let prog = linearize(&b.finish());
//!
//! let mut mem = DeviceMemory::new(64);
//! for i in 0..32 { mem.global[i] = i as f32; }
//! let launch = Launch::new(Dim::new_1d(1), Dim::new_1d(32));
//! run_kernel(&prog, &launch, &[0, 32], &mut mem).unwrap();
//! assert_eq!(mem.global[32 + 7], 14.0);
//! ```

pub mod decode;
pub mod error;
pub mod interp;
pub mod legacy;
pub mod timing;
pub mod trace;

pub use decode::{DecodedArena, DecodedProgram};
pub use error::SimError;
pub use interp::{run_kernel, run_kernel_checked, DeviceMemory};
pub use timing::{simulate, simulate_decoded, TimingReport};
pub use trace::{trace_kernel, Trace};
