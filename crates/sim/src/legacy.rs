//! Reference implementations over the structured [`LinOp`] form.
//!
//! These are the pre-decode execution engines, retained verbatim as the
//! behavioural oracle for the decoded engines in [`crate::timing`] and
//! [`crate::interp`]: the differential test suite asserts bit-identical
//! functional results, cycle counts, fuel consumption, and stall-lane
//! attribution between the two stacks, and the CLI's `--engine legacy`
//! escape hatch routes timing simulation through this module so any
//! suspected decoder bug can be cross-checked in the field.
//!
//! [`LinOp`]: gpu_ir::linear::LinOp

/// The reference warp-level timing simulator, re-matching [`LinOp`]
/// enums per scheduler step.
///
/// [`LinOp`]: gpu_ir::linear::LinOp
pub mod timing {
    use gpu_arch::{LaunchError, MachineSpec, ResourceUsage};
    use gpu_ir::linear::{LinOp, LinearProgram};
    use gpu_ir::{Launch, Op, LOOP_OVERHEAD_INSTRS};

    use crate::timing::{
        warp_transaction_bytes, FamilyError, Pick, RunHalt, SimSetup, TimingError, TimingReport,
    };

    #[derive(Debug, Clone, Copy)]
    struct Frame {
        body_start: usize,
        remaining: u32,
    }

    #[derive(Debug, Clone)]
    struct Warp {
        pc: usize,
        frames: Vec<Frame>,
        reg_ready: Vec<u64>,
        /// Whether each register's pending value comes from a long-latency
        /// (off-chip) load — drives the mem/arith split of operand stalls.
        reg_from_mem: Vec<bool>,
        stall_until: u64,
        blocked: bool,
        done: bool,
        block: usize,
    }

    impl Warp {
        fn new(num_vregs: u32, block: usize) -> Self {
            Self {
                pc: 0,
                frames: Vec::new(),
                reg_ready: vec![0; num_vregs as usize],
                reg_from_mem: vec![false; num_vregs as usize],
                stall_until: 0,
                blocked: false,
                done: false,
                block,
            }
        }

        /// Skip through zero-cost control ops (loop headers, zero-trip
        /// skips) and mark completion.
        fn fast_forward(&mut self, code: &[LinOp]) {
            loop {
                if self.pc >= code.len() {
                    self.done = true;
                    return;
                }
                match &code[self.pc] {
                    LinOp::LoopStart { trips, end, .. } => {
                        if *trips == 0 {
                            self.pc = end + 1;
                        } else {
                            self.frames.push(Frame { body_start: self.pc + 1, remaining: *trips });
                            self.pc += 1;
                        }
                    }
                    _ => return,
                }
            }
        }

        /// Earliest cycle at which the operands of the op at `pc` are
        /// ready.
        fn operands_ready(&self, code: &[LinOp]) -> u64 {
            match &code[self.pc] {
                LinOp::Instr(i) => i.uses().map(|r| self.reg_ready[r.index()]).max().unwrap_or(0),
                _ => 0,
            }
        }
    }

    /// Complete mid-flight state of the event loop. Cloneable so a run
    /// can be forked at a checkpoint and finished against a sibling
    /// program (see [`simulate_family_fueled`]).
    #[derive(Debug, Clone)]
    struct SimState {
        warps: Vec<Warp>,
        barrier_arrived: Vec<usize>,
        issue_free: u64,
        sfu_free: u64,
        mem_free: f64,
        busy: u64,
        issued: u64,
        dram_bytes: u64,
        finish_time: u64,
        last_pick: usize,
        remaining: usize,
        /// Scheduler steps taken so far — the fuel meter.
        steps: u64,
        stall_mem: u64,
        stall_sfu: u64,
        stall_arith: u64,
        stall_other: u64,
    }

    impl SimState {
        fn new(prog: &LinearProgram, setup: &SimSetup) -> Self {
            let mut warps: Vec<Warp> = (0..setup.bsm)
                .flat_map(|b| (0..setup.wpb).map(move |_| b))
                .map(|b| Warp::new(prog.num_vregs, b))
                .collect();
            for w in &mut warps {
                w.fast_forward(&prog.code);
            }
            let remaining = warps.iter().filter(|w| !w.done).count();
            Self {
                warps,
                barrier_arrived: vec![0; setup.bsm],
                issue_free: 0,
                sfu_free: 0,
                mem_free: 0.0,
                busy: 0,
                issued: 0,
                dram_bytes: 0,
                finish_time: 0,
                last_pick: 0,
                remaining,
                steps: 0,
                stall_mem: 0,
                stall_sfu: 0,
                stall_arith: 0,
                stall_other: 0,
            }
        }

        /// Pick the schedulable warp with the earliest possible issue
        /// time, round-robin from the last pick for fairness.
        fn pick(&self, code: &[LinOp]) -> Pick {
            if self.remaining == 0 {
                return Pick::Done;
            }
            let n = self.warps.len();
            let mut best: Option<(u64, usize)> = None;
            for k in 0..n {
                let idx = (self.last_pick + 1 + k) % n;
                let w = &self.warps[idx];
                if w.done || w.blocked {
                    continue;
                }
                let mut t = w.stall_until.max(w.operands_ready(code));
                if matches!(&code[w.pc], LinOp::Instr(i) if i.op.is_sfu()) {
                    t = t.max(self.sfu_free);
                }
                let t = t.max(self.issue_free);
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, idx));
                }
            }
            match best {
                Some((t, idx)) => Pick::Ready(t, idx),
                None => Pick::Deadlock,
            }
        }

        /// Attribute an issue-port idle gap to the binding constraint.
        fn attribute_stall(&mut self, code: &[LinOp], t: u64, idx: usize) {
            let gap = t.saturating_sub(self.issue_free);
            if gap == 0 {
                return;
            }
            let w = &self.warps[idx];
            let operands = w.operands_ready(code);
            let sfu = if matches!(&code[w.pc], LinOp::Instr(i) if i.op.is_sfu()) {
                self.sfu_free
            } else {
                0
            };
            if operands >= sfu && operands >= w.stall_until {
                let from_mem = match &code[w.pc] {
                    LinOp::Instr(i) => i
                        .uses()
                        .any(|r| w.reg_ready[r.index()] == operands && w.reg_from_mem[r.index()]),
                    _ => false,
                };
                if from_mem {
                    self.stall_mem += gap;
                } else {
                    self.stall_arith += gap;
                }
            } else if sfu >= w.stall_until {
                self.stall_sfu += gap;
            } else {
                self.stall_other += gap;
            }
        }

        /// Issue the op of warp `idx` at time `t` and advance the state.
        fn step(
            &mut self,
            code: &[LinOp],
            setup: &SimSetup,
            spec: &MachineSpec,
            t: u64,
            idx: usize,
        ) {
            self.attribute_stall(code, t, idx);
            self.steps += 1;
            self.last_pick = idx;
            let issue = setup.issue;
            let op = code[self.warps[idx].pc].clone();
            match &op {
                LinOp::Instr(i) => {
                    self.issue_free = t + issue;
                    self.busy += issue;
                    self.issued += 1;
                    let done_at = match i.op {
                        Op::Ld(space) if space.is_long_latency() => {
                            let bytes = warp_transaction_bytes(spec, i.coalesced);
                            self.dram_bytes += bytes;
                            let service = bytes as f64 / setup.bw_per_cycle;
                            let start = self.mem_free.max(t as f64);
                            self.mem_free = start + service;
                            self.mem_free as u64 + u64::from(spec.global_latency_typ())
                        }
                        Op::St(space) if space.is_long_latency() => {
                            let bytes = warp_transaction_bytes(spec, i.coalesced);
                            self.dram_bytes += bytes;
                            let service = bytes as f64 / setup.bw_per_cycle;
                            let start = self.mem_free.max(t as f64);
                            self.mem_free = start + service;
                            t + issue
                        }
                        Op::Ld(_) | Op::St(_) => {
                            if i.replay_ways > 1 {
                                let extra = u64::from(i.replay_ways - 1) * issue;
                                self.issue_free += extra;
                                self.busy += extra;
                            }
                            t + u64::from(spec.shared_latency)
                        }
                        op if op.is_sfu() => {
                            self.sfu_free = t + u64::from(spec.sfu_issue_cycles);
                            t + u64::from(spec.sfu_latency)
                        }
                        _ => t + u64::from(spec.arith_latency),
                    };
                    if let Some(d) = i.dst {
                        self.warps[idx].reg_ready[d.index()] = done_at;
                        self.warps[idx].reg_from_mem[d.index()] =
                            matches!(i.op, Op::Ld(space) if space.is_long_latency());
                    }
                    self.warps[idx].stall_until = t + issue;
                    self.warps[idx].pc += 1;
                }
                LinOp::Sync => {
                    self.issue_free = t + issue;
                    self.busy += issue;
                    self.issued += 1;
                    let block = self.warps[idx].block;
                    self.warps[idx].pc += 1;
                    self.barrier_arrived[block] += 1;
                    if self.barrier_arrived[block] == setup.wpb {
                        self.barrier_arrived[block] = 0;
                        let release = t + issue;
                        for w in self.warps.iter_mut().filter(|w| w.block == block) {
                            if w.blocked {
                                w.blocked = false;
                            }
                            w.stall_until = w.stall_until.max(release);
                        }
                    } else {
                        self.warps[idx].blocked = true;
                    }
                }
                LinOp::LoopEnd { start } => {
                    let slots = u64::from(LOOP_OVERHEAD_INSTRS) * issue;
                    self.issue_free = t + slots;
                    self.busy += slots;
                    self.issued += u64::from(LOOP_OVERHEAD_INSTRS);
                    let frame = self.warps[idx].frames.last_mut().expect("back edge without frame");
                    frame.remaining -= 1;
                    if frame.remaining > 0 {
                        let target = frame.body_start;
                        self.warps[idx].pc = target;
                    } else {
                        self.warps[idx].frames.pop();
                        self.warps[idx].pc += 1;
                    }
                    let _ = start;
                    self.warps[idx].stall_until = t + slots;
                }
                LinOp::LoopStart { .. } => {
                    unreachable!("fast_forward consumes loop headers")
                }
            }

            self.warps[idx].fast_forward(code);
            if self.warps[idx].done {
                self.remaining -= 1;
                self.finish_time = self.finish_time.max(self.warps[idx].stall_until);
            }
        }

        /// Run the event loop until every warp retires, the fuel meter
        /// runs dry, or the block deadlocks at a barrier.
        fn run(
            &mut self,
            code: &[LinOp],
            setup: &SimSetup,
            spec: &MachineSpec,
            fuel: Option<u64>,
        ) -> Result<(), RunHalt> {
            loop {
                match self.pick(code) {
                    Pick::Done => return Ok(()),
                    Pick::Deadlock => return Err(RunHalt::Deadlock),
                    Pick::Ready(t, idx) => {
                        if fuel.is_some_and(|f| self.steps >= f) {
                            return Err(RunHalt::Fuel);
                        }
                        self.step(code, setup, spec, t, idx);
                    }
                }
            }
        }

        /// Summarise a completed run.
        fn report(&self, launch: &Launch, setup: &SimSetup, spec: &MachineSpec) -> TimingReport {
            let cycles_per_wave = self.finish_time.max(self.issue_free).max(self.mem_free as u64);
            let blocks = launch.total_blocks();
            let per_wave_capacity = u64::from(spec.num_sms) * setup.bsm as u64;
            let waves = (blocks as f64 / per_wave_capacity as f64).max(1.0);
            let total_cycles = (cycles_per_wave as f64 * waves).round() as u64;
            let time_ms = total_cycles as f64 / spec.clock_hz * 1e3;
            let bandwidth_utilization = if cycles_per_wave == 0 {
                0.0
            } else {
                (self.dram_bytes as f64 / cycles_per_wave as f64) / setup.bw_per_cycle
            };
            TimingReport {
                cycles_per_wave,
                waves,
                total_cycles,
                time_ms,
                instructions_issued: self.issued,
                busy_cycles: self.busy,
                dram_bytes: self.dram_bytes,
                bandwidth_utilization,
                occupancy: setup.occ,
                steps: self.steps,
                stall_mem_cycles: self.stall_mem,
                stall_sfu_cycles: self.stall_sfu,
                stall_arith_cycles: self.stall_arith,
                stall_other_cycles: self.stall_other,
            }
        }
    }

    /// Reference counterpart of [`crate::timing::simulate`].
    ///
    /// # Errors
    ///
    /// As [`crate::timing::simulate`].
    ///
    /// # Panics
    ///
    /// On barrier deadlock, as [`crate::timing::simulate`].
    pub fn simulate(
        prog: &LinearProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Result<TimingReport, LaunchError> {
        match simulate_fueled(prog, launch, usage, spec, None) {
            Ok(r) => Ok(r),
            Err(TimingError::Launch(e)) => Err(e),
            Err(TimingError::FuelExhausted { .. }) => unreachable!("no fuel limit was set"),
            Err(TimingError::BarrierDeadlock) => {
                panic!("barrier deadlock in a warp-uniform program")
            }
        }
    }

    /// Reference counterpart of [`crate::timing::simulate_fueled`].
    ///
    /// # Errors
    ///
    /// As [`crate::timing::simulate_fueled`].
    pub fn simulate_fueled(
        prog: &LinearProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
        fuel: Option<u64>,
    ) -> Result<TimingReport, TimingError> {
        let setup = SimSetup::new(launch, usage, spec)?;
        let mut state = SimState::new(prog, &setup);
        state.run(&prog.code, &setup, spec, fuel).map_err(|h| match h {
            RunHalt::Fuel => TimingError::FuelExhausted { fuel: fuel.unwrap_or(u64::MAX) },
            RunHalt::Deadlock => TimingError::BarrierDeadlock,
        })?;
        Ok(state.report(launch, &setup, spec))
    }

    /// Locate the single top-level loop whose trip count varies across
    /// `progs`, verifying the programs are otherwise identical.
    fn family_varying_loop(progs: &[&LinearProgram]) -> Result<Option<usize>, FamilyError> {
        let first = progs[0];
        let mut varying: Option<usize> = None;
        for p in &progs[1..] {
            if p.code.len() != first.code.len()
                || p.num_vregs != first.num_vregs
                || p.smem_words != first.smem_words
                || p.num_params != first.num_params
            {
                return Err(FamilyError::NotAFamily);
            }
            for (pc, (a, b)) in first.code.iter().zip(&p.code).enumerate() {
                if a == b {
                    continue;
                }
                match (a, b) {
                    (
                        LinOp::LoopStart { counter: ca, end: ea, .. },
                        LinOp::LoopStart { counter: cb, end: eb, .. },
                    ) if ca == cb && ea == eb && varying.is_none_or(|v| v == pc) => {
                        varying = Some(pc);
                    }
                    _ => return Err(FamilyError::NotAFamily),
                }
            }
        }
        let Some(pc) = varying else { return Ok(None) };
        let mut depth = 0usize;
        for op in &first.code[..pc] {
            match op {
                LinOp::LoopStart { .. } => depth += 1,
                LinOp::LoopEnd { .. } => depth -= 1,
                _ => {}
            }
        }
        let any_zero =
            progs.iter().any(|p| matches!(p.code[pc], LinOp::LoopStart { trips: 0, .. }));
        if depth != 0 || any_zero {
            return Err(FamilyError::NotAFamily);
        }
        Ok(Some(pc))
    }

    /// Reference counterpart of [`crate::timing::simulate_family_fueled`].
    ///
    /// Note the reference algorithm only supports a **single** varying
    /// top-level loop; the decoded engine generalizes to several.
    ///
    /// # Errors
    ///
    /// As [`crate::timing::simulate_family_fueled`], except that
    /// multi-axis families are rejected with [`FamilyError::NotAFamily`].
    pub fn simulate_family_fueled(
        progs: &[&LinearProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
        fuel: Option<u64>,
    ) -> Result<Vec<TimingReport>, FamilyError> {
        let halt_to_family = |h: RunHalt| match h {
            RunHalt::Fuel => FamilyError::FuelExhausted { fuel: fuel.unwrap_or(u64::MAX) },
            RunHalt::Deadlock => FamilyError::BarrierDeadlock,
        };
        if progs.is_empty() {
            return Ok(Vec::new());
        }
        let setup = SimSetup::new(launch, usage, spec).map_err(FamilyError::Launch)?;
        let Some(loop_pc) = family_varying_loop(progs)? else {
            let mut st = SimState::new(progs[0], &setup);
            st.run(&progs[0].code, &setup, spec, fuel).map_err(halt_to_family)?;
            let rep = st.report(launch, &setup, spec);
            return Ok(vec![rep; progs.len()]);
        };
        let trips_of = |p: &LinearProgram| match p.code[loop_pc] {
            LinOp::LoopStart { trips, .. } => trips,
            _ => unreachable!("family_varying_loop returns a LoopStart index"),
        };
        let loop_end = match progs[0].code[loop_pc] {
            LinOp::LoopStart { end, .. } => end,
            _ => unreachable!("family_varying_loop returns a LoopStart index"),
        };
        let body_start = loop_pc + 1;

        let mut by_trips: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
        for (m, p) in progs.iter().enumerate() {
            by_trips.entry(trips_of(p)).or_default().push(m);
        }
        let t_max = *by_trips.keys().next_back().expect("non-empty family");
        let master = progs[by_trips[&t_max][0]];

        let mut reports: Vec<Option<TimingReport>> = vec![None; progs.len()];
        let mut st = SimState::new(master, &setup);
        let mut max_completed = 0u32;
        loop {
            let (t, idx) = match st.pick(&master.code) {
                Pick::Done => break,
                Pick::Deadlock => return Err(FamilyError::BarrierDeadlock),
                Pick::Ready(t, idx) => (t, idx),
            };
            if fuel.is_some_and(|f| st.steps >= f) {
                return Err(FamilyError::FuelExhausted { fuel: fuel.unwrap_or(u64::MAX) });
            }
            if st.warps[idx].pc == loop_end {
                let rem = st.warps[idx].frames.last().expect("back edge without frame").remaining;
                let completed = t_max - rem + 1;
                if completed > max_completed {
                    max_completed = completed;
                    if completed < t_max {
                        if let Some(members) = by_trips.get(&completed) {
                            let delta = t_max - completed;
                            let mut clone = st.clone();
                            for w in &mut clone.warps {
                                for f in &mut w.frames {
                                    if f.body_start == body_start {
                                        f.remaining -= delta;
                                    }
                                }
                            }
                            let member = progs[members[0]];
                            clone.run(&member.code, &setup, spec, fuel).map_err(halt_to_family)?;
                            let rep = clone.report(launch, &setup, spec);
                            for &m in members {
                                reports[m] = Some(rep.clone());
                            }
                        }
                    }
                }
            }
            st.step(&master.code, &setup, spec, t, idx);
        }
        let rep = st.report(launch, &setup, spec);
        for &m in &by_trips[&t_max] {
            reports[m] = Some(rep.clone());
        }
        Ok(reports.into_iter().map(|r| r.expect("every trip count checkpointed")).collect())
    }
}

/// The reference functional interpreter, re-matching [`LinOp`] enums per
/// interpreted step.
///
/// [`LinOp`]: gpu_ir::linear::LinOp
pub mod interp {
    use gpu_arch::MemorySpace;
    use gpu_ir::linear::{LinOp, LinearProgram};
    use gpu_ir::types::{Operand, VReg};
    use gpu_ir::{Instr, Launch, Op};

    use crate::error::SimError;
    use crate::interp::{DeviceMemory, Geometry, RaceTracker, Stop, Value, DEFAULT_STEP_BUDGET};

    #[derive(Debug, Clone)]
    struct LoopFrame {
        body_start: usize,
        remaining: u32,
        counter: Option<VReg>,
        iter: i32,
    }

    struct Thread {
        regs: Vec<Value>,
        pc: usize,
        frames: Vec<LoopFrame>,
        local: Vec<Value>,
        geom: Geometry,
    }

    impl Thread {
        fn new(num_vregs: u32, geom: Geometry) -> Self {
            Self {
                regs: vec![Value::I32(0); num_vregs as usize],
                pc: 0,
                frames: Vec::new(),
                local: Vec::new(),
                geom,
            }
        }

        fn operand(&self, o: &Operand, params: &[i32]) -> Result<Value, SimError> {
            match o {
                Operand::Reg(r) => Ok(self.regs[r.index()]),
                Operand::ImmF32(v) => Ok(Value::F32(*v)),
                Operand::ImmI32(v) => Ok(Value::I32(*v)),
                Operand::Special(s) => Ok(Value::I32(self.geom.special(*s))),
                Operand::Param(i) => params
                    .get(*i as usize)
                    .map(|v| Value::I32(*v))
                    .ok_or(SimError::MissingParam { index: *i }),
            }
        }

        /// Execute until the next barrier or the end of the program.
        #[allow(clippy::too_many_arguments)]
        fn run_segment(
            &mut self,
            prog: &LinearProgram,
            params: &[i32],
            mem: &mut DeviceMemory,
            shared: &mut [f32],
            budget: &mut u64,
            mut race: Option<&mut RaceTracker>,
            lane: u32,
        ) -> Result<Stop, SimError> {
            let code = &prog.code;
            loop {
                if self.pc >= code.len() {
                    return Ok(Stop::Done);
                }
                if *budget == 0 {
                    return Err(SimError::StepBudgetExhausted);
                }
                *budget -= 1;
                match &code[self.pc] {
                    LinOp::Sync => {
                        let here = self.pc;
                        self.pc += 1;
                        return Ok(Stop::AtBarrier(here));
                    }
                    LinOp::LoopStart { counter, trips, end } => {
                        if *trips == 0 {
                            self.pc = end + 1;
                        } else {
                            if let Some(c) = counter {
                                self.regs[c.index()] = Value::I32(0);
                            }
                            self.frames.push(LoopFrame {
                                body_start: self.pc + 1,
                                remaining: *trips,
                                counter: *counter,
                                iter: 0,
                            });
                            self.pc += 1;
                        }
                    }
                    LinOp::LoopEnd { .. } => {
                        let frame = self.frames.last_mut().expect("loop frame underflow");
                        frame.remaining -= 1;
                        if frame.remaining > 0 {
                            frame.iter += 1;
                            if let Some(c) = frame.counter {
                                self.regs[c.index()] = Value::I32(frame.iter);
                            }
                            self.pc = frame.body_start;
                        } else {
                            self.frames.pop();
                            self.pc += 1;
                        }
                    }
                    LinOp::Instr(i) => {
                        self.exec(i, params, mem, shared, race.as_deref_mut(), lane)?;
                        self.pc += 1;
                    }
                }
            }
        }

        fn addr_of(&self, i: &Instr, params: &[i32]) -> Result<i64, SimError> {
            let base = self.operand(&i.srcs[0], params)?.as_i32(i.op)?;
            Ok(i64::from(base) + i64::from(i.offset))
        }

        fn load(
            &mut self,
            space: MemorySpace,
            addr: i64,
            mem: &DeviceMemory,
            shared: &[f32],
            race: Option<&mut RaceTracker>,
            lane: u32,
        ) -> Result<Value, SimError> {
            let fetch = |buf: &[f32], name: &'static str| -> Result<Value, SimError> {
                usize::try_from(addr)
                    .ok()
                    .and_then(|a| buf.get(a).copied())
                    .map(Value::F32)
                    .ok_or(SimError::OutOfBounds { space: name, addr, len: buf.len() })
            };
            match space {
                MemorySpace::Global | MemorySpace::Texture => fetch(&mem.global, "global"),
                MemorySpace::Constant => fetch(&mem.constant, "const"),
                MemorySpace::Shared => {
                    let v = fetch(shared, "shared")?;
                    if let Some(t) = race {
                        t.on_read(addr as usize, lane)?;
                    }
                    Ok(v)
                }
                MemorySpace::Local => {
                    let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                        space: "local",
                        addr,
                        len: self.local.len(),
                    })?;
                    Ok(self.local.get(a).copied().unwrap_or(Value::F32(0.0)))
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn store(
            &mut self,
            space: MemorySpace,
            addr: i64,
            value: Value,
            mem: &mut DeviceMemory,
            shared: &mut [f32],
            op: &Instr,
            race: Option<&mut RaceTracker>,
            lane: u32,
        ) -> Result<(), SimError> {
            match space {
                MemorySpace::Global => {
                    let len = mem.global.len();
                    let slot = usize::try_from(addr)
                        .ok()
                        .and_then(|a| mem.global.get_mut(a))
                        .ok_or(SimError::OutOfBounds { space: "global", addr, len })?;
                    *slot = value.as_f32(op.op)?;
                }
                MemorySpace::Shared => {
                    let len = shared.len();
                    let slot = usize::try_from(addr)
                        .ok()
                        .and_then(|a| shared.get_mut(a))
                        .ok_or(SimError::OutOfBounds { space: "shared", addr, len })?;
                    let v = value.as_f32(op.op)?;
                    *slot = v;
                    if let Some(t) = race {
                        t.on_write(addr as usize, lane, v.to_bits())?;
                    }
                }
                MemorySpace::Local => {
                    let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                        space: "local",
                        addr,
                        len: self.local.len(),
                    })?;
                    if a >= self.local.len() {
                        self.local.resize(a + 1, Value::F32(0.0));
                    }
                    self.local[a] = value;
                }
                MemorySpace::Constant | MemorySpace::Texture => {
                    return Err(SimError::TypeMismatch { op: format!("st.{space}") });
                }
            }
            Ok(())
        }

        fn exec(
            &mut self,
            i: &Instr,
            params: &[i32],
            mem: &mut DeviceMemory,
            shared: &mut [f32],
            race: Option<&mut RaceTracker>,
            lane: u32,
        ) -> Result<(), SimError> {
            use Op::*;
            let v = |t: &Self, n: usize| t.operand(&i.srcs[n], params);
            let o = i.op;

            let result: Value = match i.op {
                FAdd => Value::F32(v(self, 0)?.as_f32(o)? + v(self, 1)?.as_f32(o)?),
                FSub => Value::F32(v(self, 0)?.as_f32(o)? - v(self, 1)?.as_f32(o)?),
                FMul => Value::F32(v(self, 0)?.as_f32(o)? * v(self, 1)?.as_f32(o)?),
                FMad => Value::F32(
                    v(self, 0)?.as_f32(o)?.mul_add(v(self, 1)?.as_f32(o)?, v(self, 2)?.as_f32(o)?),
                ),
                FMin => Value::F32(v(self, 0)?.as_f32(o)?.min(v(self, 1)?.as_f32(o)?)),
                FMax => Value::F32(v(self, 0)?.as_f32(o)?.max(v(self, 1)?.as_f32(o)?)),
                FNeg => Value::F32(-v(self, 0)?.as_f32(o)?),
                FAbs => Value::F32(v(self, 0)?.as_f32(o)?.abs()),
                Rcp => Value::F32(1.0 / v(self, 0)?.as_f32(o)?),
                Rsqrt => Value::F32(1.0 / v(self, 0)?.as_f32(o)?.sqrt()),
                Sqrt => Value::F32(v(self, 0)?.as_f32(o)?.sqrt()),
                Sin => Value::F32(v(self, 0)?.as_f32(o)?.sin()),
                Cos => Value::F32(v(self, 0)?.as_f32(o)?.cos()),
                Ex2 => Value::F32(v(self, 0)?.as_f32(o)?.exp2()),
                IAdd => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_add(v(self, 1)?.as_i32(o)?)),
                ISub => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_sub(v(self, 1)?.as_i32(o)?)),
                IMul => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_mul(v(self, 1)?.as_i32(o)?)),
                IMad => Value::I32(
                    v(self, 0)?
                        .as_i32(o)?
                        .wrapping_mul(v(self, 1)?.as_i32(o)?)
                        .wrapping_add(v(self, 2)?.as_i32(o)?),
                ),
                IDiv => {
                    let (a, b) = (v(self, 0)?.as_i32(o)?, v(self, 1)?.as_i32(o)?);
                    Value::I32(if b == 0 { 0 } else { a.wrapping_div(b) })
                }
                IRem => {
                    let (a, b) = (v(self, 0)?.as_i32(o)?, v(self, 1)?.as_i32(o)?);
                    Value::I32(if b == 0 { 0 } else { a.wrapping_rem(b) })
                }
                Shl => {
                    Value::I32(v(self, 0)?.as_i32(o)?.wrapping_shl(v(self, 1)?.as_i32(o)? as u32))
                }
                Shr => {
                    Value::I32(v(self, 0)?.as_i32(o)?.wrapping_shr(v(self, 1)?.as_i32(o)? as u32))
                }
                And => Value::I32(v(self, 0)?.as_i32(o)? & v(self, 1)?.as_i32(o)?),
                Or => Value::I32(v(self, 0)?.as_i32(o)? | v(self, 1)?.as_i32(o)?),
                Xor => Value::I32(v(self, 0)?.as_i32(o)? ^ v(self, 1)?.as_i32(o)?),
                IMin => Value::I32(v(self, 0)?.as_i32(o)?.min(v(self, 1)?.as_i32(o)?)),
                IMax => Value::I32(v(self, 0)?.as_i32(o)?.max(v(self, 1)?.as_i32(o)?)),
                Mov => v(self, 0)?,
                F2I => Value::I32(v(self, 0)?.as_f32(o)? as i32),
                I2F => Value::F32(v(self, 0)?.as_i32(o)? as f32),
                SetLt | SetLe | SetEq | SetNe => {
                    let (a, b) = (v(self, 0)?, v(self, 1)?);
                    let ord = match (a, b) {
                        (Value::F32(x), Value::F32(y)) => x.partial_cmp(&y),
                        (Value::I32(x), Value::I32(y)) => Some(x.cmp(&y)),
                        _ => return Err(SimError::TypeMismatch { op: i.op.mnemonic() }),
                    };
                    let t = match (i.op, ord) {
                        (SetLt, Some(ord)) => ord.is_lt(),
                        (SetLe, Some(ord)) => ord.is_le(),
                        (SetEq, Some(ord)) => ord.is_eq(),
                        (SetNe, Some(ord)) => ord.is_ne(),
                        (SetNe, None) => true, // NaN != anything
                        (_, None) => false,
                        _ => unreachable!("outer match restricts the op"),
                    };
                    Value::I32(i32::from(t))
                }
                Selp => {
                    let c = v(self, 2)?.as_i32(o)?;
                    if c != 0 {
                        v(self, 0)?
                    } else {
                        v(self, 1)?
                    }
                }
                Ld(space) => {
                    let addr = self.addr_of(i, params)?;
                    self.load(space, addr, mem, shared, race, lane)?
                }
                St(space) => {
                    let addr = self.addr_of(i, params)?;
                    let value = self.operand(&i.srcs[1], params)?;
                    self.store(space, addr, value, mem, shared, i, race, lane)?;
                    return Ok(());
                }
            };
            let dst = i.dst.expect("non-store ops have destinations");
            self.regs[dst.index()] = result;
            Ok(())
        }
    }

    /// Reference counterpart of [`crate::interp::run_kernel`].
    ///
    /// # Errors
    ///
    /// As [`crate::interp::run_kernel`].
    pub fn run_kernel(
        prog: &LinearProgram,
        launch: &Launch,
        params: &[i32],
        mem: &mut DeviceMemory,
    ) -> Result<(), SimError> {
        run_kernel_with_budget(prog, launch, params, mem, DEFAULT_STEP_BUDGET)
    }

    /// Reference counterpart of [`crate::interp::run_kernel_with_budget`].
    ///
    /// # Errors
    ///
    /// As [`crate::interp::run_kernel_with_budget`].
    pub fn run_kernel_with_budget(
        prog: &LinearProgram,
        launch: &Launch,
        params: &[i32],
        mem: &mut DeviceMemory,
        budget: u64,
    ) -> Result<(), SimError> {
        run_grid(prog, launch, params, mem, budget, false)
    }

    /// Reference counterpart of [`crate::interp::run_kernel_checked`].
    ///
    /// # Errors
    ///
    /// As [`crate::interp::run_kernel_checked`].
    pub fn run_kernel_checked(
        prog: &LinearProgram,
        launch: &Launch,
        params: &[i32],
        mem: &mut DeviceMemory,
    ) -> Result<(), SimError> {
        run_grid(prog, launch, params, mem, DEFAULT_STEP_BUDGET, true)
    }

    fn run_grid(
        prog: &LinearProgram,
        launch: &Launch,
        params: &[i32],
        mem: &mut DeviceMemory,
        budget: u64,
        check_races: bool,
    ) -> Result<(), SimError> {
        if launch.grid.count() == 0 || launch.block.count() == 0 {
            return Err(SimError::EmptyLaunch);
        }
        let (gx, gy) = (launch.grid.x, launch.grid.y);
        let (bx, by) = (launch.block.x, launch.block.y);

        for cy in 0..gy {
            for cx in 0..gx {
                let mut shared = vec![0.0f32; prog.smem_words as usize];
                let mut tracker = check_races.then(|| RaceTracker::new(prog.smem_words as usize));
                let mut threads: Vec<Thread> = (0..by)
                    .flat_map(|ty| (0..bx).map(move |tx| (tx, ty)))
                    .map(|(tx, ty)| {
                        Thread::new(
                            prog.num_vregs,
                            Geometry {
                                tid: (tx, ty),
                                ctaid: (cx, cy),
                                ntid: (bx, by),
                                nctaid: (gx, gy),
                            },
                        )
                    })
                    .collect();

                let mut block_budget = budget;
                loop {
                    let mut stops = Vec::with_capacity(threads.len());
                    for (lane, t) in threads.iter_mut().enumerate() {
                        stops.push(t.run_segment(
                            prog,
                            params,
                            mem,
                            &mut shared,
                            &mut block_budget,
                            tracker.as_mut(),
                            lane as u32,
                        )?);
                    }
                    let first = stops[0];
                    if stops.iter().any(|s| *s != first) {
                        return Err(SimError::BarrierDivergence);
                    }
                    if first == Stop::Done {
                        break;
                    }
                    if let Some(t) = tracker.as_mut() {
                        t.advance();
                    }
                }
            }
        }
        Ok(())
    }
}
