//! Cycle-approximate warp-level timing simulation.
//!
//! This is the stand-in for the paper's wall-clock measurements. One SM
//! is simulated hosting the occupancy-determined number of thread blocks
//! (`B_SM` from `gpu-arch`); the whole-device time is the per-"wave"
//! time multiplied by the number of waves of blocks the grid supplies
//! (`ceil(grid / (16 · B_SM))`). First-order G80 behaviours modelled:
//!
//! * **Single issue port**: one warp instruction per 4 cycles per SM;
//!   zero-overhead switching between ready warps (section 2.1).
//! * **Scoreboarded dependences**: a global load does not block issue —
//!   only the first *use* of its destination waits, so independent
//!   instructions (unrolling, prefetching) hide latency.
//! * **SFU throughput**: transcendental ops share two SFUs, issuing one
//!   warp op per 16 cycles.
//! * **Barrier join**: `__syncthreads` blocks a warp until every warp of
//!   its block arrives (warps of *other* blocks keep issuing — the
//!   paper's main argument for multiple resident blocks).
//! * **Global-memory queue**: each off-chip access consumes the SM's
//!   share of the 86.4 GB/s DRAM bandwidth; a coalesced warp access
//!   moves 2×64-byte transactions, an uncoalesced one 32×32-byte
//!   transactions (section 2 of Table 1). Queue pressure delays
//!   completions, which is what makes the 8×8-tile matmul
//!   configurations bandwidth-bound.
//! * **Loop control**: each back edge charges
//!   [`gpu_ir::LOOP_OVERHEAD_INSTRS`] issue slots, matching the static
//!   instruction counts.
//!
//! Control flow is assumed warp-uniform: the paper's four kernels are
//! generated with no data-dependent branches (predication via `selp`
//! only), so divergence modelling is unnecessary.
//!
//! # Execution representation
//!
//! The event loop runs on the pre-decoded form from [`crate::decode`]:
//! an index walk over a flat `Vec<DecodedOp>` with warp state held as
//! struct-of-arrays (per-warp scalars in parallel vectors, all register
//! scoreboards in one contiguous slab). The structured-[`LinOp`]
//! reference engine lives in [`crate::legacy`] and is held bit-identical
//! to this one by the differential test suite.
//!
//! [`LinOp`]: gpu_ir::linear::LinOp

use gpu_arch::{LaunchError, MachineSpec, Occupancy, ResourceUsage};
use gpu_ir::linear::LinearProgram;
use gpu_ir::{Launch, LOOP_OVERHEAD_INSTRS};

use crate::decode::{decode, DecKind, DecodedArena, DecodedOp, DecodedProgram, LatClass, NO_REG};

/// Result of a timing simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Cycles for one wave of blocks on one SM.
    pub cycles_per_wave: u64,
    /// Waves of blocks needed to drain the grid across all SMs,
    /// fractional: a grid of 64 blocks on a 48-block wave capacity is
    /// 1⅓ waves (the hardware load-balances the tail, so integer
    /// rounding would punish high-occupancy configurations on grids
    /// that are not capacity multiples).
    pub waves: f64,
    /// Estimated total kernel cycles (`cycles_per_wave * waves`).
    pub total_cycles: u64,
    /// Wall-clock estimate in milliseconds at the spec's shader clock.
    pub time_ms: f64,
    /// Warp instructions issued during the simulated wave (loop control
    /// included).
    pub instructions_issued: u64,
    /// Cycles the issue port was occupied during the wave.
    pub busy_cycles: u64,
    /// DRAM bytes moved by the simulated wave (one SM's traffic).
    pub dram_bytes: u64,
    /// Fraction of the SM's DRAM-bandwidth share consumed, in `[0, 1]`.
    pub bandwidth_utilization: f64,
    /// The occupancy used for the simulation.
    pub occupancy: Occupancy,
    /// Scheduler steps the event loop took — the fuel this simulation
    /// consumed.
    pub steps: u64,
    /// Issue-port idle cycles attributed to waiting on an in-flight
    /// global-memory load.
    pub stall_mem_cycles: u64,
    /// Issue-port idle cycles attributed to the SFU issue port.
    pub stall_sfu_cycles: u64,
    /// Issue-port idle cycles attributed to waiting on an arithmetic /
    /// on-chip result.
    pub stall_arith_cycles: u64,
    /// Issue-port idle cycles attributed to control flow and barriers.
    pub stall_other_cycles: u64,
}

impl TimingReport {
    /// Issue-port utilisation for the wave, in `[0, 1]`.
    pub fn issue_utilization(&self) -> f64 {
        if self.cycles_per_wave == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / self.cycles_per_wave as f64
    }

    /// Total attributed issue-port stall cycles for the wave.
    pub fn stall_total_cycles(&self) -> u64 {
        self.stall_mem_cycles
            + self.stall_sfu_cycles
            + self.stall_arith_cycles
            + self.stall_other_cycles
    }
}

/// Bytes one warp's off-chip access moves over DRAM.
pub(crate) fn warp_transaction_bytes(spec: &MachineSpec, coalesced: bool) -> u64 {
    if coalesced {
        // Two half-warps, one transaction each.
        2 * u64::from(spec.coalesced_transaction_bytes)
    } else {
        // One transaction per thread.
        u64::from(spec.warp_size) * u64::from(spec.uncoalesced_transaction_bytes)
    }
}

/// Launch-derived constants shared by every state of one simulation:
/// residency, issue width, and the SM's bandwidth share.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimSetup {
    pub(crate) occ: Occupancy,
    pub(crate) wpb: usize,
    pub(crate) bsm: usize,
    pub(crate) issue: u64,
    pub(crate) bw_per_cycle: f64,
}

impl SimSetup {
    pub(crate) fn new(
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Result<Self, LaunchError> {
        let occ = spec.occupancy(usage)?;
        let wpb = occ.warps_per_block as usize;
        // Resident blocks: capped by occupancy AND by what the grid
        // actually supplies per SM — a 16-block grid on 16 SMs hosts one
        // block each no matter how many would fit.
        let supply = launch.total_blocks().div_ceil(u64::from(spec.num_sms)).max(1) as usize;
        let bsm = (occ.blocks_per_sm as usize).min(supply);
        Ok(Self {
            occ,
            wpb,
            bsm,
            issue: u64::from(spec.issue_cycles_per_warp),
            bw_per_cycle: spec.bandwidth_bytes_per_cycle() / f64::from(spec.num_sms),
        })
    }
}

/// Outcome of scheduling: the next issuable warp, a completed kernel,
/// or a wedged one (every live warp is blocked at a barrier that can
/// never release).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pick {
    Ready(u64, usize),
    Done,
    Deadlock,
}

/// Why an event loop halted before every warp retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunHalt {
    Fuel,
    Deadlock,
}

/// One open loop of one warp: which loop (by decoded loop id) and how
/// many trips remain.
#[derive(Debug, Clone, Copy)]
struct FrameD {
    loop_id: u32,
    remaining: u32,
}

const EMPTY_FRAME: FrameD = FrameD { loop_id: NO_REG, remaining: 0 };

/// All resident warps of one simulation, struct-of-arrays: per-warp
/// scalars live in parallel vectors and every warp's register
/// scoreboard shares one contiguous slab (`warp × num_vregs`), so the
/// scheduler's hot reads stride through flat memory instead of chasing
/// one heap allocation per warp.
#[derive(Debug, Clone)]
struct WarpSoA {
    /// Registers per warp — the slab stride.
    nv: usize,
    /// Loop-frame capacity per warp (the arena's max nesting depth).
    depth_cap: usize,
    pc: Vec<u32>,
    stall_until: Vec<u64>,
    blocked: Vec<bool>,
    done: Vec<bool>,
    block: Vec<u32>,
    /// `warp × nv` slab: cycle each register's pending value lands.
    reg_ready: Vec<u64>,
    /// `warp × nv` slab: whether each register's pending value comes
    /// from a long-latency (off-chip) load — drives the mem/arith split
    /// of operand stalls.
    reg_from_mem: Vec<bool>,
    /// `warp × depth_cap` slab of open loop frames.
    frames: Vec<FrameD>,
    frame_len: Vec<u32>,
    /// Cached earliest issue time of each warp's current op,
    /// `max(stall_until, operands_ready)`. Registers are per-warp, so
    /// this only changes when the warp itself steps or its block's
    /// barrier releases; the scheduler reads it instead of re-deriving
    /// operand readiness every pick. Retired and barrier-parked warps
    /// hold [`u64::MAX`], so the scan skips them on the same load.
    ready_at: Vec<u64>,
    /// Whether each warp's current op contends for the SFU issue port
    /// (the one cross-warp constraint `ready_at` cannot absorb).
    next_sfu: Vec<bool>,
}

impl WarpSoA {
    fn new(n: usize, num_vregs: u32, depth_cap: usize, block_of: impl Fn(usize) -> u32) -> Self {
        let nv = num_vregs as usize;
        Self {
            nv,
            depth_cap,
            pc: vec![0; n],
            stall_until: vec![0; n],
            blocked: vec![false; n],
            done: vec![false; n],
            block: (0..n).map(block_of).collect(),
            reg_ready: vec![0; n * nv],
            reg_from_mem: vec![false; n * nv],
            frames: vec![EMPTY_FRAME; n * depth_cap],
            frame_len: vec![0; n],
            ready_at: vec![0; n],
            next_sfu: vec![false; n],
        }
    }

    fn len(&self) -> usize {
        self.pc.len()
    }

    /// Skip warp `wi` through zero-cost control ops (loop headers,
    /// zero-trip skips) and mark completion. Trip counts come from
    /// `trips` (indexed by loop id), not the arena — the family driver
    /// varies them per state.
    /// On return the warp is either retired (`done`) or parked on an
    /// issuable op with its cached `ready_at`/`next_sfu` re-derived from
    /// that op — the scheduler's scan never touches the arena.
    fn fast_forward(&mut self, wi: usize, arena: &DecodedArena, trips: &[u32]) {
        let n_ops = arena.ops.len() as u32;
        let mut pc = self.pc[wi];
        loop {
            if pc >= n_ops {
                self.pc[wi] = pc;
                self.done[wi] = true;
                self.ready_at[wi] = u64::MAX;
                return;
            }
            let op = &arena.ops[pc as usize];
            if op.kind != DecKind::LoopStart {
                self.pc[wi] = pc;
                self.ready_at[wi] = self.stall_until[wi].max(self.operands_ready(wi, op));
                self.next_sfu[wi] = op.kind == DecKind::Instr && op.lat == LatClass::Sfu;
                return;
            }
            let t = trips[op.loop_id as usize];
            if t == 0 {
                pc = op.target;
            } else {
                let base = wi * self.depth_cap;
                let len = self.frame_len[wi] as usize;
                self.frames[base + len] = FrameD { loop_id: op.loop_id, remaining: t };
                self.frame_len[wi] += 1;
                pc += 1;
            }
        }
    }

    /// Earliest cycle at which the operands of `op` (the op at warp
    /// `wi`'s pc) are ready.
    fn operands_ready(&self, wi: usize, op: &DecodedOp) -> u64 {
        if op.kind != DecKind::Instr {
            return 0;
        }
        let base = wi * self.nv;
        let mut ready = 0u64;
        for &r in &op.src_regs {
            if r != NO_REG {
                ready = ready.max(self.reg_ready[base + r as usize]);
            }
        }
        ready
    }

    /// The topmost open loop frame of warp `wi`.
    fn top_frame(&self, wi: usize) -> &FrameD {
        let len = self.frame_len[wi] as usize;
        &self.frames[wi * self.depth_cap + len - 1]
    }

    /// Re-derive the cached `ready_at`/`next_sfu` of warp `wi` from the
    /// op at its pc — used when a barrier release revives a parked warp
    /// (its sentinel must give way to a real issue time again).
    fn refresh_ready(&mut self, wi: usize, arena: &DecodedArena) {
        let op = &arena.ops[self.pc[wi] as usize];
        self.ready_at[wi] = self.stall_until[wi].max(self.operands_ready(wi, op));
        self.next_sfu[wi] = op.kind == DecKind::Instr && op.lat == LatClass::Sfu;
    }
}

/// Complete mid-flight state of the event loop. Cloneable so a run can
/// be forked at a checkpoint and finished against a sibling trip-count
/// assignment (see [`simulate_family`]).
#[derive(Debug, Clone)]
struct SimState {
    warps: WarpSoA,
    barrier_arrived: Vec<usize>,
    issue_free: u64,
    sfu_free: u64,
    mem_free: f64,
    busy: u64,
    issued: u64,
    dram_bytes: u64,
    finish_time: u64,
    last_pick: usize,
    remaining: usize,
    /// Scheduler steps taken so far — the fuel meter. Forked clones
    /// inherit the master's count, which equals what their standalone
    /// run would have accumulated over the identical prefix.
    steps: u64,
    /// Issue-port idle gaps attributed to their binding constraint.
    /// Cloned with the state, so family forks report the same breakdown
    /// a standalone run would.
    stall_mem: u64,
    stall_sfu: u64,
    stall_arith: u64,
    stall_other: u64,
}

impl SimState {
    fn new(arena: &DecodedArena, trips: &[u32], num_vregs: u32, setup: &SimSetup) -> Self {
        let n = setup.bsm * setup.wpb;
        let wpb = setup.wpb;
        let mut warps = WarpSoA::new(n, num_vregs, arena.max_loop_depth, |wi| (wi / wpb) as u32);
        for wi in 0..n {
            warps.fast_forward(wi, arena, trips);
        }
        let remaining = warps.done.iter().filter(|d| !**d).count();
        Self {
            warps,
            barrier_arrived: vec![0; setup.bsm],
            issue_free: 0,
            sfu_free: 0,
            mem_free: 0.0,
            busy: 0,
            issued: 0,
            dram_bytes: 0,
            finish_time: 0,
            last_pick: 0,
            remaining,
            steps: 0,
            stall_mem: 0,
            stall_sfu: 0,
            stall_arith: 0,
            stall_other: 0,
        }
    }

    /// Pick the schedulable warp with the earliest possible issue time,
    /// round-robin from the last pick for fairness.
    ///
    /// The scan reads the cached per-warp `ready_at` instead of
    /// re-deriving operand readiness, and stops at the first warp whose
    /// issue time clamps to `issue_free`: every candidate is maxed up to
    /// `issue_free`, so nothing later in round-robin order can be
    /// *strictly* earlier, and ties already go to the first warp
    /// scanned. Both are pure strength reductions — the selected warp
    /// and its issue time are identical to the exhaustive per-step scan
    /// the legacy engine performs.
    fn pick(&self) -> Pick {
        if self.remaining == 0 {
            return Pick::Done;
        }
        let n = self.warps.len();
        let start = self.last_pick + 1;
        let mut best: Option<(u64, usize)> = None;
        for k in 0..n {
            let mut idx = start + k;
            if idx >= n {
                idx -= n;
            }
            let mut t = self.warps.ready_at[idx];
            if t == u64::MAX {
                // Retired or barrier-parked — not schedulable.
                continue;
            }
            if self.warps.next_sfu[idx] {
                t = t.max(self.sfu_free);
            }
            if t <= self.issue_free {
                return Pick::Ready(self.issue_free, idx);
            }
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, idx));
            }
        }
        match best {
            Some((t, idx)) => Pick::Ready(t, idx),
            // Live warps remain but every one is parked at a barrier
            // that can never release — a malformed kernel, not a
            // simulator invariant, so it surfaces as an error.
            None => Pick::Deadlock,
        }
    }

    /// Attribute an issue-port idle gap (the port sat idle for `gap`
    /// cycles before warp `idx` could issue at `t`) to the binding
    /// constraint: an operand still in flight (split by whether it comes
    /// from a global load), the SFU port, or control flow / barriers.
    fn attribute_stall(&mut self, op: &DecodedOp, t: u64, idx: usize) {
        let gap = t.saturating_sub(self.issue_free);
        if gap == 0 {
            return;
        }
        let operands = self.warps.operands_ready(idx, op);
        let is_sfu = op.kind == DecKind::Instr && op.lat == LatClass::Sfu;
        let sfu = if is_sfu { self.sfu_free } else { 0 };
        // `t` is the max of the constraints and the (smaller) issue_free,
        // so the largest constraint is what the port waited on.
        if operands >= sfu && operands >= self.warps.stall_until[idx] {
            let from_mem = if op.kind == DecKind::Instr {
                let base = idx * self.warps.nv;
                op.src_regs.iter().any(|&r| {
                    r != NO_REG
                        && self.warps.reg_ready[base + r as usize] == operands
                        && self.warps.reg_from_mem[base + r as usize]
                })
            } else {
                false
            };
            if from_mem {
                self.stall_mem += gap;
            } else {
                self.stall_arith += gap;
            }
        } else if sfu >= self.warps.stall_until[idx] {
            self.stall_sfu += gap;
        } else {
            self.stall_other += gap;
        }
    }

    /// Issue the op of warp `idx` at time `t` and advance the state.
    fn step(
        &mut self,
        arena: &DecodedArena,
        trips: &[u32],
        setup: &SimSetup,
        spec: &MachineSpec,
        t: u64,
        idx: usize,
    ) {
        let op = arena.ops[self.warps.pc[idx] as usize];
        self.attribute_stall(&op, t, idx);
        self.steps += 1;
        self.last_pick = idx;
        let issue = setup.issue;
        match op.kind {
            DecKind::Instr => {
                self.issue_free = t + issue;
                self.busy += issue;
                self.issued += 1;
                let done_at = match op.lat {
                    LatClass::MemLd => {
                        let bytes = warp_transaction_bytes(spec, op.coalesced);
                        self.dram_bytes += bytes;
                        let service = bytes as f64 / setup.bw_per_cycle;
                        let start = self.mem_free.max(t as f64);
                        self.mem_free = start + service;
                        self.mem_free as u64 + u64::from(spec.global_latency_typ())
                    }
                    LatClass::MemSt => {
                        // Fire-and-forget, but it consumes bandwidth.
                        let bytes = warp_transaction_bytes(spec, op.coalesced);
                        self.dram_bytes += bytes;
                        let service = bytes as f64 / setup.bw_per_cycle;
                        let start = self.mem_free.max(t as f64);
                        self.mem_free = start + service;
                        t + issue
                    }
                    LatClass::OnChip => {
                        // On-chip accesses with bank or constant-cache
                        // conflicts replay once per conflicting subset.
                        if op.replay_ways > 1 {
                            let extra = u64::from(op.replay_ways - 1) * issue;
                            self.issue_free += extra;
                            self.busy += extra;
                        }
                        t + u64::from(spec.shared_latency)
                    }
                    LatClass::Sfu => {
                        self.sfu_free = t + u64::from(spec.sfu_issue_cycles);
                        t + u64::from(spec.sfu_latency)
                    }
                    LatClass::Arith | LatClass::Control => t + u64::from(spec.arith_latency),
                };
                if op.dst != NO_REG {
                    let r = idx * self.warps.nv + op.dst as usize;
                    self.warps.reg_ready[r] = done_at;
                    self.warps.reg_from_mem[r] = op.lat == LatClass::MemLd;
                }
                self.warps.stall_until[idx] = t + issue;
                self.warps.pc[idx] += 1;
            }
            DecKind::Sync => {
                self.issue_free = t + issue;
                self.busy += issue;
                self.issued += 1;
                let block = self.warps.block[idx];
                self.warps.pc[idx] += 1;
                self.barrier_arrived[block as usize] += 1;
                if self.barrier_arrived[block as usize] == setup.wpb {
                    self.barrier_arrived[block as usize] = 0;
                    let release = t + issue;
                    for wi in 0..self.warps.len() {
                        if self.warps.block[wi] != block {
                            continue;
                        }
                        self.warps.stall_until[wi] = self.warps.stall_until[wi].max(release);
                        if self.warps.blocked[wi] {
                            // Revived: replace the parked sentinel with
                            // the warp's real issue time again.
                            self.warps.blocked[wi] = false;
                            self.warps.refresh_ready(wi, arena);
                        }
                    }
                } else {
                    self.warps.blocked[idx] = true;
                }
            }
            DecKind::LoopEnd => {
                // Loop control: add/setp/bra issue slots.
                let slots = u64::from(LOOP_OVERHEAD_INSTRS) * issue;
                self.issue_free = t + slots;
                self.busy += slots;
                self.issued += u64::from(LOOP_OVERHEAD_INSTRS);
                let len = self.warps.frame_len[idx] as usize;
                debug_assert!(len > 0, "back edge without frame");
                let slot = idx * self.warps.depth_cap + len - 1;
                debug_assert_eq!(self.warps.frames[slot].loop_id, op.loop_id);
                self.warps.frames[slot].remaining -= 1;
                if self.warps.frames[slot].remaining > 0 {
                    self.warps.pc[idx] = op.target;
                } else {
                    self.warps.frame_len[idx] -= 1;
                    self.warps.pc[idx] += 1;
                }
                self.warps.stall_until[idx] = t + slots;
            }
            DecKind::LoopStart => {
                unreachable!("fast_forward consumes loop headers")
            }
        }

        self.warps.fast_forward(idx, arena, trips);
        if self.warps.done[idx] {
            self.remaining -= 1;
            self.finish_time = self.finish_time.max(self.warps.stall_until[idx]);
        } else if self.warps.blocked[idx] {
            self.warps.ready_at[idx] = u64::MAX;
        }
    }

    /// Run the event loop until every warp retires, the fuel meter runs
    /// dry, or the block deadlocks at a barrier.
    fn run(
        &mut self,
        arena: &DecodedArena,
        trips: &[u32],
        setup: &SimSetup,
        spec: &MachineSpec,
        fuel: Option<u64>,
    ) -> Result<(), RunHalt> {
        loop {
            match self.pick() {
                Pick::Done => return Ok(()),
                Pick::Deadlock => return Err(RunHalt::Deadlock),
                Pick::Ready(t, idx) => {
                    if fuel.is_some_and(|f| self.steps >= f) {
                        return Err(RunHalt::Fuel);
                    }
                    self.step(arena, trips, setup, spec, t, idx);
                }
            }
        }
    }

    /// Subtract `delta` remaining trips from every open frame of loop
    /// `loop_id`, re-basing a forked clone onto a shorter member.
    fn rebase_frames(&mut self, loop_id: u32, delta: u32) {
        for wi in 0..self.warps.len() {
            let base = wi * self.warps.depth_cap;
            for f in &mut self.warps.frames[base..base + self.warps.frame_len[wi] as usize] {
                if f.loop_id == loop_id {
                    f.remaining -= delta;
                }
            }
        }
    }

    /// Summarise a completed run.
    fn report(&self, launch: &Launch, setup: &SimSetup, spec: &MachineSpec) -> TimingReport {
        let cycles_per_wave = self.finish_time.max(self.issue_free).max(self.mem_free as u64);
        let blocks = launch.total_blocks();
        let per_wave_capacity = u64::from(spec.num_sms) * setup.bsm as u64;
        let waves = (blocks as f64 / per_wave_capacity as f64).max(1.0);
        let total_cycles = (cycles_per_wave as f64 * waves).round() as u64;
        let time_ms = total_cycles as f64 / spec.clock_hz * 1e3;
        let bandwidth_utilization = if cycles_per_wave == 0 {
            0.0
        } else {
            (self.dram_bytes as f64 / cycles_per_wave as f64) / setup.bw_per_cycle
        };
        TimingReport {
            cycles_per_wave,
            waves,
            total_cycles,
            time_ms,
            instructions_issued: self.issued,
            busy_cycles: self.busy,
            dram_bytes: self.dram_bytes,
            bandwidth_utilization,
            occupancy: setup.occ,
            steps: self.steps,
            stall_mem_cycles: self.stall_mem,
            stall_sfu_cycles: self.stall_sfu,
            stall_arith_cycles: self.stall_arith,
            stall_other_cycles: self.stall_other,
        }
    }
}

/// Why a fueled timing simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The configuration cannot execute at all (the paper's "invalid
    /// executable").
    Launch(LaunchError),
    /// The event loop took `fuel` scheduler steps without retiring every
    /// warp — a runaway or mis-built kernel.
    FuelExhausted {
        /// The fuel limit that was exceeded.
        fuel: u64,
    },
    /// Every live warp is parked at a barrier that can never release.
    BarrierDeadlock,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Launch(e) => write!(f, "launch invalid: {e}"),
            Self::FuelExhausted { fuel } => {
                write!(f, "simulation exceeded its fuel limit of {fuel} steps")
            }
            Self::BarrierDeadlock => write!(f, "barrier deadlock: not all warps arrived"),
        }
    }
}

impl std::error::Error for TimingError {}

impl From<LaunchError> for TimingError {
    fn from(e: LaunchError) -> Self {
        Self::Launch(e)
    }
}

/// Simulate `prog` under `launch` on `spec`, with per-thread resource
/// usage `usage` determining residency.
///
/// Decodes `prog` first; callers simulating one program many times (or
/// many trip-count siblings of one structure) should decode once with
/// [`crate::decode::decode`] and call [`simulate_decoded`].
///
/// # Errors
///
/// Returns the [`LaunchError`] from the occupancy calculation when the
/// configuration cannot execute at all (the paper's "invalid
/// executable").
///
/// # Panics
///
/// On barrier deadlock — impossible for the warp-uniform programs this
/// crate generates. Callers evaluating untrusted or mutated kernels
/// should use [`simulate_fueled`], which reports deadlock (and runaway
/// kernels) as a [`TimingError`] instead.
pub fn simulate(
    prog: &LinearProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> Result<TimingReport, LaunchError> {
    simulate_decoded(&decode(prog), launch, usage, spec)
}

/// As [`simulate`], but with a **fuel watchdog**: the event loop is
/// bounded to `fuel` scheduler steps (unbounded when `None`), so a
/// runaway kernel terminates with [`TimingError::FuelExhausted`]
/// instead of hanging its worker, and a wedged barrier surfaces as
/// [`TimingError::BarrierDeadlock`] instead of a panic.
pub fn simulate_fueled(
    prog: &LinearProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
    fuel: Option<u64>,
) -> Result<TimingReport, TimingError> {
    simulate_decoded_fueled(&decode(prog), launch, usage, spec, fuel)
}

/// [`simulate`] over an already-decoded program.
///
/// # Errors
///
/// As [`simulate`].
///
/// # Panics
///
/// On barrier deadlock, as [`simulate`].
pub fn simulate_decoded(
    prog: &DecodedProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> Result<TimingReport, LaunchError> {
    match simulate_decoded_fueled(prog, launch, usage, spec, None) {
        Ok(r) => Ok(r),
        Err(TimingError::Launch(e)) => Err(e),
        Err(TimingError::FuelExhausted { .. }) => unreachable!("no fuel limit was set"),
        Err(TimingError::BarrierDeadlock) => {
            panic!("barrier deadlock in a warp-uniform program")
        }
    }
}

/// [`simulate_fueled`] over an already-decoded program.
///
/// # Errors
///
/// As [`simulate_fueled`].
pub fn simulate_decoded_fueled(
    prog: &DecodedProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
    fuel: Option<u64>,
) -> Result<TimingReport, TimingError> {
    let setup = SimSetup::new(launch, usage, spec)?;
    let mut state = SimState::new(&prog.arena, &prog.loop_trips, prog.num_vregs(), &setup);
    state.run(&prog.arena, &prog.loop_trips, &setup, spec, fuel).map_err(|h| match h {
        RunHalt::Fuel => TimingError::FuelExhausted { fuel: fuel.unwrap_or(u64::MAX) },
        RunHalt::Deadlock => TimingError::BarrierDeadlock,
    })?;
    Ok(state.report(launch, &setup, spec))
}

/// Why [`simulate_family`] could not run a program set as one family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyError {
    /// The shared launch configuration cannot execute at all.
    Launch(LaunchError),
    /// The programs do not differ in exactly the supported way (only in
    /// top-level loop trip counts, every member at least one trip on
    /// each varying loop); simulate them individually instead.
    NotAFamily,
    /// The master run (or a fork) exceeded the fuel limit. Callers
    /// should fall back to individual [`simulate_fueled`] runs so each
    /// member gets its own fuel accounting.
    FuelExhausted {
        /// The fuel limit that was exceeded.
        fuel: u64,
    },
    /// Every live warp is parked at a barrier that can never release.
    BarrierDeadlock,
}

impl std::fmt::Display for FamilyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Launch(e) => write!(f, "family launch invalid: {e}"),
            Self::NotAFamily => {
                write!(f, "programs do not form a varying-trip-count family")
            }
            Self::FuelExhausted { fuel } => {
                write!(f, "family simulation exceeded its fuel limit of {fuel} steps")
            }
            Self::BarrierDeadlock => write!(f, "barrier deadlock: not all warps arrived"),
        }
    }
}

impl std::error::Error for FamilyError {}

/// Simulate a *family* of programs — structurally identical kernels
/// that differ only in the trip counts of **top-level loops** (e.g. the
/// same generated kernel at different work-per-invocation splits) — for
/// the cost of roughly one simulation of the longest member.
///
/// The event loop of a `T`-trip program is event-identical to a
/// `k`-trip run (`k < T`) until the first warp finishes its `k`-th
/// iteration of that loop: up to that point every back edge takes the
/// same branch and charges the same cycles. So one *master* run (at the
/// element-wise maximum trip counts across the members) is enough; at
/// each such checkpoint the complete machine state is cloned, the open
/// frames of that loop are re-based to `k` remaining trips, and the
/// clone drains against the member's own trip counts — recursively, so
/// members differing on **several** top-level loops fork axis by axis.
/// Each returned report is bit-identical to what a standalone
/// [`simulate`] of that member produces.
///
/// # Errors
///
/// [`FamilyError::Launch`] when the shared configuration cannot launch;
/// [`FamilyError::NotAFamily`] when the programs differ other than in
/// top-level trip counts, or a varying loop has a zero-trip member
/// (callers should fall back to individual [`simulate`] calls).
pub fn simulate_family(
    progs: &[&LinearProgram],
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> Result<Vec<TimingReport>, FamilyError> {
    simulate_family_fueled(progs, launch, usage, spec, None)
}

/// As [`simulate_family`], but with the fuel watchdog of
/// [`simulate_fueled`] applied to the master run and every fork.
pub fn simulate_family_fueled(
    progs: &[&LinearProgram],
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
    fuel: Option<u64>,
) -> Result<Vec<TimingReport>, FamilyError> {
    let decoded: Vec<DecodedProgram> = progs.iter().map(|p| decode(p)).collect();
    let refs: Vec<&DecodedProgram> = decoded.iter().collect();
    simulate_family_decoded_fueled(&refs, launch, usage, spec, fuel)
}

/// [`simulate_family`] over already-decoded members. Members sharing
/// one [`DecodedArena`] (via [`DecodedProgram::with_arena`]) skip the
/// structural comparison entirely.
///
/// # Errors
///
/// As [`simulate_family`].
pub fn simulate_family_decoded(
    progs: &[&DecodedProgram],
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> Result<Vec<TimingReport>, FamilyError> {
    simulate_family_decoded_fueled(progs, launch, usage, spec, None)
}

/// Shared context of one family evaluation: everything that does not
/// change across forks.
struct FamilyRun<'a> {
    arena: &'a DecodedArena,
    setup: &'a SimSetup,
    spec: &'a MachineSpec,
    launch: &'a Launch,
    fuel: Option<u64>,
    /// Trip counts per member, indexed by loop id.
    member_trips: Vec<&'a [u32]>,
    /// Varying loop ids.
    axes: Vec<u32>,
    reports: Vec<Option<TimingReport>>,
}

impl FamilyRun<'_> {
    /// Drive `st` (running at trip counts `cur`) to completion,
    /// peeling `members` off onto forked clones whenever the leading
    /// warp completes an iteration count some of them stop at.
    ///
    /// At a checkpoint for loop `a` at `completed` trips, no warp has
    /// exited loop `a` yet (exiting requires completing `cur[a] >
    /// completed` trips, which would have fired this checkpoint
    /// earlier), so re-basing every open frame of `a` by
    /// `cur[a] - completed` lands the clone exactly on the state a
    /// standalone run of the shorter member would be in.
    fn drive(
        &mut self,
        mut st: SimState,
        cur: Vec<u32>,
        mut members: Vec<usize>,
        mut max_completed: Vec<u32>,
    ) -> Result<(), FamilyError> {
        loop {
            if members.is_empty() {
                // Every member of this branch forked off; the rest of
                // the run would report to nobody.
                return Ok(());
            }
            let (t, idx) = match st.pick() {
                Pick::Done => break,
                Pick::Deadlock => return Err(FamilyError::BarrierDeadlock),
                Pick::Ready(t, idx) => (t, idx),
            };
            if self.fuel.is_some_and(|f| st.steps >= f) {
                return Err(FamilyError::FuelExhausted { fuel: self.fuel.unwrap_or(u64::MAX) });
            }
            // A back edge of a varying loop: the warp is about to finish
            // iteration `cur - remaining + 1`. The first time any warp
            // reaches iteration `k` of a shorter member is exactly where
            // that member's own run would exit the loop — fork it there.
            let op = &self.arena.ops[st.warps.pc[idx] as usize];
            if op.kind == DecKind::LoopEnd {
                if let Some(axis) = self.axes.iter().position(|&a| a == op.loop_id) {
                    let lid = op.loop_id as usize;
                    let completed = cur[lid] - st.warps.top_frame(idx).remaining + 1;
                    if completed > max_completed[axis] {
                        max_completed[axis] = completed;
                        if completed < cur[lid] {
                            let sub: Vec<usize> = members
                                .iter()
                                .copied()
                                .filter(|&m| self.member_trips[m][lid] == completed)
                                .collect();
                            if !sub.is_empty() {
                                members.retain(|&m| self.member_trips[m][lid] != completed);
                                let mut clone = st.clone();
                                clone.rebase_frames(op.loop_id, cur[lid] - completed);
                                let mut sub_cur = cur.clone();
                                sub_cur[lid] = completed;
                                self.drive(clone, sub_cur, sub, max_completed.clone())?;
                            }
                        }
                    }
                }
            }
            st.step(self.arena, &cur, self.setup, self.spec, t, idx);
        }
        let rep = st.report(self.launch, self.setup, self.spec);
        for &m in &members {
            self.reports[m] = Some(rep.clone());
        }
        Ok(())
    }
}

/// As [`simulate_family_decoded`], with the fuel watchdog.
///
/// # Errors
///
/// As [`simulate_family_fueled`].
pub fn simulate_family_decoded_fueled(
    progs: &[&DecodedProgram],
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
    fuel: Option<u64>,
) -> Result<Vec<TimingReport>, FamilyError> {
    let halt_to_family = |h: RunHalt| match h {
        RunHalt::Fuel => FamilyError::FuelExhausted { fuel: fuel.unwrap_or(u64::MAX) },
        RunHalt::Deadlock => FamilyError::BarrierDeadlock,
    };
    if progs.is_empty() {
        return Ok(Vec::new());
    }
    let setup = SimSetup::new(launch, usage, spec).map_err(FamilyError::Launch)?;
    let first = progs[0];
    for p in &progs[1..] {
        let same_shape = p.source.num_vregs == first.source.num_vregs
            && p.source.smem_words == first.source.smem_words
            && p.source.num_params == first.source.num_params;
        let same_arena = std::sync::Arc::ptr_eq(&p.arena, &first.arena) || *p.arena == *first.arena;
        if !same_shape || !same_arena {
            return Err(FamilyError::NotAFamily);
        }
    }
    let mut axes: Vec<u32> = Vec::new();
    for (j, &t0) in first.loop_trips.iter().enumerate() {
        if progs[1..].iter().any(|p| p.loop_trips[j] != t0) {
            axes.push(j as u32);
        }
    }
    for &a in &axes {
        // A varying loop must be top-level (it then runs at most once
        // per warp, so "first warp completes its k-th iteration" is a
        // single well-defined checkpoint per k), and every member must
        // actually enter it for the checkpoint to exist.
        let any_zero = progs.iter().any(|p| p.loop_trips[a as usize] == 0);
        if !first.arena.loops[a as usize].top_level || any_zero {
            return Err(FamilyError::NotAFamily);
        }
    }
    if axes.is_empty() {
        // All members identical: one run serves them all.
        let mut st = SimState::new(&first.arena, &first.loop_trips, first.num_vregs(), &setup);
        st.run(&first.arena, &first.loop_trips, &setup, spec, fuel).map_err(halt_to_family)?;
        let rep = st.report(launch, &setup, spec);
        return Ok(vec![rep; progs.len()]);
    }
    // The master runs at the element-wise maximum trip counts; members
    // peel off axis by axis as the leading warp passes their counts.
    let mut master: Vec<u32> = first.loop_trips.clone();
    for p in &progs[1..] {
        for (m, &t) in master.iter_mut().zip(&p.loop_trips) {
            *m = (*m).max(t);
        }
    }
    let st = SimState::new(&first.arena, &master, first.num_vregs(), &setup);
    let n_axes = axes.len();
    let mut run = FamilyRun {
        arena: &first.arena,
        setup: &setup,
        spec,
        launch,
        fuel,
        member_trips: progs.iter().map(|p| p.loop_trips.as_slice()).collect(),
        axes,
        reports: vec![None; progs.len()],
    };
    run.drive(st, master, (0..progs.len()).collect(), vec![0; n_axes])?;
    Ok(run.reports.into_iter().map(|r| r.expect("every member trip count checkpointed")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel, Launch};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    fn launch_1d(blocks: u32, threads: u32) -> Launch {
        Launch::new(Dim::new_1d(blocks), Dim::new_1d(threads))
    }

    /// A compute loop with a dependent chain: `iters` fmads on an
    /// accumulator.
    fn compute_kernel(iters: u32) -> Kernel {
        let mut b = KernelBuilder::new("compute");
        let acc = b.mov(0.0f32);
        b.repeat(iters, |b| {
            b.fmad_acc(1.5f32, 2.5f32, acc);
        });
        let p = b.param(0);
        b.st_global(p, 0, acc);
        b.finish()
    }

    /// A memory loop: one global load consumed immediately per iteration.
    fn memory_kernel(iters: u32, coalesced: bool) -> Kernel {
        let mut b = KernelBuilder::new("memory");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(iters, |b| {
            let v = if coalesced { b.ld_global(p, 0) } else { b.ld_global_uncoalesced(p, 0) };
            b.fmad_acc(v, 1.0f32, acc);
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    #[test]
    fn single_warp_dependent_chain_pays_latency() {
        let k = compute_kernel(100);
        let prog = linearize(&k);
        let usage = ResourceUsage::new(32, 8, 0);
        let r = simulate(&prog, &launch_1d(1, 32), &usage, &g80()).unwrap();
        // Each fmad waits ~arith_latency for the previous one: at least
        // 100 * 24 cycles.
        assert!(r.cycles_per_wave >= 2400, "cycles = {}", r.cycles_per_wave);
    }

    #[test]
    fn more_warps_hide_latency() {
        let k = compute_kernel(200);
        let prog = linearize(&k);
        // Force a single resident block via shared memory so the warp
        // counts really are 1 vs 8.
        let one = simulate(&prog, &launch_1d(16, 32), &ResourceUsage::new(32, 8, 12_000), &g80())
            .unwrap();
        let eight =
            simulate(&prog, &launch_1d(16, 256), &ResourceUsage::new(256, 8, 12_000), &g80())
                .unwrap();
        assert_eq!(one.occupancy.warps_per_sm(), 1);
        assert_eq!(eight.occupancy.warps_per_sm(), 8);
        // Eight warps interleave in the dependent-chain bubbles: the lone
        // warp leaves the port idle while its accumulator is in flight,
        // the eight-warp block saturates it.
        assert!(
            eight.issue_utilization() > 0.9 && one.issue_utilization() < 0.75,
            "eight {:.3} vs one {:.3}",
            eight.issue_utilization(),
            one.issue_utilization()
        );
        // Per unit of work (8x the warps per wave), eight is faster.
        assert!(eight.cycles_per_wave / 8 < one.cycles_per_wave);
    }

    #[test]
    fn uncoalesced_memory_is_slower() {
        let co = simulate(
            &linearize(&memory_kernel(100, true)),
            &launch_1d(16, 256),
            &ResourceUsage::new(256, 10, 0),
            &g80(),
        )
        .unwrap();
        let unco = simulate(
            &linearize(&memory_kernel(100, false)),
            &launch_1d(16, 256),
            &ResourceUsage::new(256, 10, 0),
            &g80(),
        )
        .unwrap();
        assert!(
            unco.cycles_per_wave > co.cycles_per_wave * 2,
            "uncoalesced {} vs coalesced {}",
            unco.cycles_per_wave,
            co.cycles_per_wave
        );
        assert!(unco.bandwidth_utilization > co.bandwidth_utilization);
        // Loads inflate 8x (1024 vs 128 bytes per warp access); the final
        // store stays coalesced in both, so total traffic sits just
        // under 8x.
        assert!(unco.dram_bytes > co.dram_bytes * 7);
        assert!(unco.dram_bytes < co.dram_bytes * 8);
    }

    #[test]
    fn invalid_usage_propagates_launch_error() {
        let k = compute_kernel(1);
        let prog = linearize(&k);
        let err = simulate(&prog, &launch_1d(1, 512), &ResourceUsage::new(512, 17, 0), &g80())
            .unwrap_err();
        assert!(matches!(err, LaunchError::RegistersExhausted { .. }));
    }

    #[test]
    fn waves_scale_with_grid() {
        let k = compute_kernel(10);
        let prog = linearize(&k);
        let usage = ResourceUsage::new(256, 10, 0);
        let small = simulate(&prog, &launch_1d(48, 256), &usage, &g80()).unwrap();
        let big = simulate(&prog, &launch_1d(480, 256), &usage, &g80()).unwrap();
        assert_eq!(small.cycles_per_wave, big.cycles_per_wave);
        assert!((big.waves / small.waves - 10.0).abs() < 1e-9);
        assert!((big.time_ms / small.time_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_with_single_resident_block_serializes() {
        // A kernel alternating compute and barriers; with one block the
        // barrier drains the pipeline, with two blocks the other block's
        // warps fill the gap — the core of the paper's occupancy story.
        fn barrier_kernel() -> Kernel {
            let mut b = KernelBuilder::new("bar");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(50, |b| {
                let v = b.ld_global(p, 0);
                b.fmad_acc(v, 1.0f32, acc);
                b.sync();
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        let prog = linearize(&barrier_kernel());
        // 256 threads/block; smem chosen so either 1 or 2 blocks fit.
        let one_block =
            simulate(&prog, &launch_1d(32, 256), &ResourceUsage::new(256, 10, 12_000), &g80())
                .unwrap();
        let two_blocks =
            simulate(&prog, &launch_1d(32, 256), &ResourceUsage::new(256, 10, 8_000), &g80())
                .unwrap();
        assert_eq!(one_block.occupancy.blocks_per_sm, 1);
        assert_eq!(two_blocks.occupancy.blocks_per_sm, 2);
        // Two resident blocks keep the port busier.
        assert!(two_blocks.issue_utilization() > one_block.issue_utilization());
        // But need twice as many waves for the same grid.
        assert!((one_block.waves - 2.0).abs() < 1e-9);
        assert!((two_blocks.waves - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sfu_ops_respect_throughput() {
        fn sfu_kernel(n: u32) -> Kernel {
            let mut b = KernelBuilder::new("sfu");
            let x = b.mov(2.0f32);
            let mut acc = x;
            for _ in 0..n {
                acc = b.rsqrt(acc);
            }
            let p = b.param(0);
            b.st_global(p, 0, acc);
            b.finish()
        }
        // Dependent rsqrt chain: sfu_latency each.
        let prog = linearize(&sfu_kernel(64));
        let r = simulate(&prog, &launch_1d(1, 32), &ResourceUsage::new(32, 8, 0), &g80()).unwrap();
        assert!(r.cycles_per_wave >= 64 * 36, "cycles = {}", r.cycles_per_wave);
    }

    #[test]
    fn report_invariants() {
        let k = memory_kernel(20, true);
        let prog = linearize(&k);
        let r = simulate(&prog, &launch_1d(16, 128), &ResourceUsage::new(128, 12, 256), &g80())
            .unwrap();
        assert!(r.busy_cycles <= r.cycles_per_wave);
        assert!(r.issue_utilization() <= 1.0);
        assert!(r.bandwidth_utilization <= 1.0 + 1e-9);
        assert!(r.time_ms > 0.0);
        assert_eq!(r.total_cycles, (r.cycles_per_wave as f64 * r.waves).round() as u64);
        // Busy time and attributed stall gaps are disjoint intervals of
        // the issue port's timeline.
        assert!(r.busy_cycles + r.stall_total_cycles() <= r.cycles_per_wave);
        assert!(r.steps > 0);
    }

    #[test]
    fn stall_attribution_separates_memory_from_arithmetic() {
        let usage = ResourceUsage::new(32, 10, 0);
        // A single warp running a dependent fmad chain: every gap is an
        // arithmetic-operand wait; no loads are in flight.
        let compute =
            simulate(&linearize(&compute_kernel(100)), &launch_1d(1, 32), &usage, &g80()).unwrap();
        assert!(compute.stall_arith_cycles > 0, "dependent chain must stall on operands");
        assert_eq!(compute.stall_mem_cycles, 0, "no global loads to wait on");
        assert_eq!(compute.stall_sfu_cycles, 0);
        // A single warp consuming each global load immediately: the
        // long-latency load dominates every operand wait.
        let mem =
            simulate(&linearize(&memory_kernel(100, true)), &launch_1d(1, 32), &usage, &g80())
                .unwrap();
        assert!(
            mem.stall_mem_cycles > mem.stall_arith_cycles,
            "mem {} !> arith {}",
            mem.stall_mem_cycles,
            mem.stall_arith_cycles
        );
        assert!(mem.stall_mem_cycles > compute.stall_mem_cycles);
        for r in [&compute, &mem] {
            assert!(r.busy_cycles + r.stall_total_cycles() <= r.cycles_per_wave);
        }
    }

    #[test]
    fn independent_loads_overlap_latency() {
        // Two kernels with 2 loads per iteration: one consumes each load
        // immediately (dependent), one loads both then consumes
        // (independent pair). The pair version should be faster with a
        // single warp because the second load overlaps the first's
        // latency.
        fn dependent() -> Kernel {
            let mut b = KernelBuilder::new("dep");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(50, |b| {
                let a = b.ld_global(p, 0);
                b.fmad_acc(a, 1.0f32, acc);
                let c = b.ld_global(p, 64);
                b.fmad_acc(c, 1.0f32, acc);
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        fn paired() -> Kernel {
            let mut b = KernelBuilder::new("pair");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(50, |b| {
                let a = b.ld_global(p, 0);
                let c = b.ld_global(p, 64);
                b.fmad_acc(a, 1.0f32, acc);
                b.fmad_acc(c, 1.0f32, acc);
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        let usage = ResourceUsage::new(32, 10, 0);
        let dep = simulate(&linearize(&dependent()), &launch_1d(1, 32), &usage, &g80()).unwrap();
        let pair = simulate(&linearize(&paired()), &launch_1d(1, 32), &usage, &g80()).unwrap();
        assert!(
            pair.cycles_per_wave < dep.cycles_per_wave,
            "paired {} !< dependent {}",
            pair.cycles_per_wave,
            dep.cycles_per_wave
        );
    }
}

#[cfg(test)]
mod family_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel, Launch};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    /// A kernel exercising every event type: prologue loads, a varying
    /// top-level loop containing memory, SFU work, a nested loop, and a
    /// barrier, plus an epilogue store.
    fn member(trips: u32) -> Kernel {
        let mut b = KernelBuilder::new("fam");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        let seed = b.ld_global(p, 0);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 0);
            let r = b.rsqrt(x);
            b.repeat(3, |b| {
                b.fmad_acc(r, 1.0f32, acc);
            });
            b.sync();
        });
        b.fmad_acc(seed, 1.0f32, acc);
        b.st_global(p, 0, acc);
        b.finish()
    }

    /// A kernel with **two** top-level loops; the family driver must
    /// fork on both axes independently.
    fn member2(trips_a: u32, trips_b: u32) -> Kernel {
        let mut b = KernelBuilder::new("fam2");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(trips_a, |b| {
            let x = b.ld_global(p, 0);
            b.fmad_acc(x, 1.0f32, acc);
            b.sync();
        });
        b.repeat(trips_b, |b| {
            let r = b.rsqrt(acc);
            b.fmad_acc(r, 0.5f32, acc);
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    #[test]
    fn family_reports_match_standalone_runs() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 2_000);
        let trip_counts = [48u32, 11, 5, 1, 48];
        let kernels: Vec<Kernel> = trip_counts.iter().map(|&t| member(t)).collect();
        let progs: Vec<_> = kernels.iter().map(linearize).collect();
        let refs: Vec<&LinearProgram> = progs.iter().collect();

        let family = simulate_family(&refs, &launch, &usage, &spec).unwrap();
        for (i, prog) in progs.iter().enumerate() {
            let standalone = simulate(prog, &launch, &usage, &spec).unwrap();
            assert_eq!(
                family[i], standalone,
                "family member with {} trips diverged from its standalone run",
                trip_counts[i]
            );
        }
    }

    #[test]
    fn multi_axis_family_matches_standalone_runs() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 2_000);
        // Both axes vary; no member matches the element-wise maximum
        // (9, 8), so the synthetic master reports to nobody directly.
        let combos = [(9u32, 2u32), (4, 8), (4, 2), (9, 2), (2, 5)];
        let kernels: Vec<Kernel> = combos.iter().map(|&(a, b)| member2(a, b)).collect();
        let progs: Vec<_> = kernels.iter().map(linearize).collect();
        let refs: Vec<&LinearProgram> = progs.iter().collect();

        let family = simulate_family(&refs, &launch, &usage, &spec).unwrap();
        for (i, prog) in progs.iter().enumerate() {
            let standalone = simulate(prog, &launch, &usage, &spec).unwrap();
            assert_eq!(
                family[i], standalone,
                "family member {:?} diverged from its standalone run",
                combos[i]
            );
        }
    }

    #[test]
    fn identical_members_share_one_run() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 0);
        let k = member(7);
        let prog = linearize(&k);
        let family = simulate_family(&[&prog, &prog], &launch, &usage, &spec).unwrap();
        let standalone = simulate(&prog, &launch, &usage, &spec).unwrap();
        assert_eq!(family, vec![standalone.clone(), standalone]);
    }

    #[test]
    fn structurally_different_programs_are_rejected() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 0);
        let a = linearize(&member(4));
        let mut other = KernelBuilder::new("other");
        let p = other.param(0);
        let acc = other.mov(1.0f32);
        other.repeat(4, |b| {
            b.fmad_acc(acc, 2.0f32, acc);
        });
        other.st_global(p, 0, acc);
        let b = linearize(&other.finish());
        assert_eq!(
            simulate_family(&[&a, &b], &launch, &usage, &spec).unwrap_err(),
            FamilyError::NotAFamily
        );
    }

    #[test]
    fn zero_trip_members_are_rejected() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 0);
        let a = linearize(&member(4));
        let z = linearize(&member(0));
        assert_eq!(
            simulate_family(&[&a, &z], &launch, &usage, &spec).unwrap_err(),
            FamilyError::NotAFamily
        );
    }

    #[test]
    fn varying_nested_loops_are_rejected() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 0);
        // member() nests a 3-trip loop inside the varying loop; build a
        // sibling whose *nested* trip count differs instead.
        fn nested(trips_inner: u32) -> Kernel {
            let mut b = KernelBuilder::new("nest");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(4, |b| {
                b.repeat(trips_inner, |b| {
                    b.fmad_acc(1.0f32, 1.0f32, acc);
                });
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        let a = linearize(&nested(3));
        let b = linearize(&nested(5));
        assert_eq!(
            simulate_family(&[&a, &b], &launch, &usage, &spec).unwrap_err(),
            FamilyError::NotAFamily
        );
    }

    #[test]
    fn launch_errors_surface_as_family_errors() {
        let spec = g80();
        let launch = Launch::new(Dim::new_1d(1), Dim::new_1d(512));
        let usage = ResourceUsage::new(512, 17, 0);
        let a = linearize(&member(4));
        assert!(matches!(
            simulate_family(&[&a], &launch, &usage, &spec).unwrap_err(),
            FamilyError::Launch(LaunchError::RegistersExhausted { .. })
        ));
    }

    /// The parallel evaluation engine moves these across worker threads.
    #[test]
    fn simulation_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimingReport>();
        assert_send_sync::<LinearProgram>();
        assert_send_sync::<DecodedProgram>();
        assert_send_sync::<MachineSpec>();
        assert_send_sync::<ResourceUsage>();
        assert_send_sync::<Launch>();
        assert_send_sync::<FamilyError>();
        assert_send_sync::<TimingError>();
    }
}

#[cfg(test)]
mod fuel_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel, Launch};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    fn launch_1d(blocks: u32, threads: u32) -> Launch {
        Launch::new(Dim::new_1d(blocks), Dim::new_1d(threads))
    }

    /// A kernel whose event loop takes at least `iters` steps.
    fn long_kernel(iters: u32) -> Kernel {
        let mut b = KernelBuilder::new("long");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(iters, |b| {
            b.fmad_acc(1.5f32, 2.5f32, acc);
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    #[test]
    fn a_runaway_kernel_terminates_with_fuel_exhausted() {
        let prog = linearize(&long_kernel(100_000));
        let usage = ResourceUsage::new(32, 8, 0);
        let err =
            simulate_fueled(&prog, &launch_1d(1, 32), &usage, &g80(), Some(1_000)).unwrap_err();
        assert_eq!(err, TimingError::FuelExhausted { fuel: 1_000 });
    }

    #[test]
    fn generous_fuel_reproduces_the_unfueled_report() {
        let prog = linearize(&long_kernel(50));
        let usage = ResourceUsage::new(32, 8, 0);
        let unfueled = simulate(&prog, &launch_1d(4, 64), &usage, &g80()).unwrap();
        let fueled =
            simulate_fueled(&prog, &launch_1d(4, 64), &usage, &g80(), Some(1 << 30)).unwrap();
        assert_eq!(unfueled, fueled);
    }

    #[test]
    fn launch_errors_take_precedence_over_fuel() {
        let prog = linearize(&long_kernel(4));
        let usage = ResourceUsage::new(512, 17, 0);
        let err = simulate_fueled(&prog, &launch_1d(1, 512), &usage, &g80(), Some(10)).unwrap_err();
        assert!(matches!(err, TimingError::Launch(LaunchError::RegistersExhausted { .. })));
    }

    #[test]
    fn family_runs_respect_fuel_and_match_standalone_when_generous() {
        let spec = g80();
        let launch = launch_1d(16, 128);
        let usage = ResourceUsage::new(128, 10, 0);
        let kernels: Vec<Kernel> = [12u32, 5, 3].iter().map(|&t| long_kernel(t)).collect();
        let progs: Vec<_> = kernels.iter().map(linearize).collect();
        let refs: Vec<&LinearProgram> = progs.iter().collect();

        // Generous fuel: bit-identical to the unfueled family run.
        let generous = simulate_family_fueled(&refs, &launch, &usage, &spec, Some(1 << 30));
        assert_eq!(generous.unwrap(), simulate_family(&refs, &launch, &usage, &spec).unwrap());

        // Starved fuel: the family run reports exhaustion rather than
        // silently truncating.
        let starved = simulate_family_fueled(&refs, &launch, &usage, &spec, Some(10));
        assert_eq!(starved.unwrap_err(), FamilyError::FuelExhausted { fuel: 10 });
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};

    /// A shared-memory-heavy loop with a configurable conflict degree.
    fn conflicted(ways: u8) -> gpu_ir::Kernel {
        let mut b = KernelBuilder::new("bank");
        b.alloc_shared(64 * 4);
        let out = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(100, |b| {
            let dst = b.fresh();
            b.push_instr(
                gpu_ir::Instr::new(
                    gpu_ir::Op::Ld(gpu_arch::MemorySpace::Shared),
                    Some(dst),
                    vec![0i32.into()],
                )
                .with_replays(ways),
            );
            b.fmad_acc(dst, 1.0f32, acc);
        });
        b.st_global(out, 0, acc);
        b.finish()
    }

    #[test]
    fn bank_conflicts_serialize_issue() {
        let spec = MachineSpec::geforce_8800_gtx();
        let launch = Launch::new(Dim::new_1d(16), Dim::new_1d(256));
        let usage = ResourceUsage::new(256, 8, 256);
        let clean = simulate(&linearize(&conflicted(1)), &launch, &usage, &spec).unwrap();
        let eight = simulate(&linearize(&conflicted(8)), &launch, &usage, &spec).unwrap();
        let sixteen = simulate(&linearize(&conflicted(16)), &launch, &usage, &spec).unwrap();
        assert!(eight.cycles_per_wave > clean.cycles_per_wave);
        assert!(sixteen.cycles_per_wave > eight.cycles_per_wave);
        // The replays occupy the issue port: busy cycles grow too.
        assert!(sixteen.busy_cycles > clean.busy_cycles * 3);
    }

    #[test]
    fn replays_do_not_change_functional_results() {
        use crate::interp::{run_kernel, DeviceMemory};
        let launch = Launch::new(Dim::new_1d(1), Dim::new_1d(1));
        let run = |k: &gpu_ir::Kernel| {
            let mut mem = DeviceMemory::new(1);
            run_kernel(&linearize(k), &launch, &[0], &mut mem).unwrap();
            mem.global[0]
        };
        assert_eq!(run(&conflicted(1)), run(&conflicted(16)));
    }
}

#[cfg(test)]
mod legacy_parity_tests {
    //! Spot checks that the decoded engine and the [`crate::legacy`]
    //! reference produce bit-identical reports. The exhaustive
    //! randomized comparison lives in the workspace-level
    //! `decoded_parity` differential suite.

    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};

    fn mixed(trips: u32) -> LinearProgram {
        let mut b = KernelBuilder::new("mix");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        let seed = b.ld_global(p, 0);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 4);
            let r = b.rsqrt(x);
            b.repeat(2, |b| {
                b.fmad_acc(r, 1.0f32, acc);
            });
            b.sync();
        });
        b.fmad_acc(seed, 1.0f32, acc);
        b.st_global(p, 0, acc);
        linearize(&b.finish())
    }

    #[test]
    fn decoded_report_equals_legacy_report() {
        let spec = MachineSpec::geforce_8800_gtx();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 2_000);
        let prog = mixed(17);
        let new = simulate(&prog, &launch, &usage, &spec).unwrap();
        let old = crate::legacy::timing::simulate(&prog, &launch, &usage, &spec).unwrap();
        assert_eq!(new, old);
    }

    #[test]
    fn decoded_family_equals_legacy_family_on_single_axis() {
        let spec = MachineSpec::geforce_8800_gtx();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let usage = ResourceUsage::new(128, 10, 2_000);
        let progs: Vec<LinearProgram> = [13u32, 4, 1].iter().map(|&t| mixed(t)).collect();
        let refs: Vec<&LinearProgram> = progs.iter().collect();
        let new = simulate_family(&refs, &launch, &usage, &spec).unwrap();
        let old =
            crate::legacy::timing::simulate_family_fueled(&refs, &launch, &usage, &spec, None)
                .unwrap();
        assert_eq!(new, old);
    }

    #[test]
    fn decoded_fuel_accounting_equals_legacy() {
        let spec = MachineSpec::geforce_8800_gtx();
        let launch = Launch::new(Dim::new_1d(4), Dim::new_1d(64));
        let usage = ResourceUsage::new(64, 10, 0);
        let prog = mixed(40);
        let new = simulate_fueled(&prog, &launch, &usage, &spec, Some(500)).unwrap_err();
        let old = crate::legacy::timing::simulate_fueled(&prog, &launch, &usage, &spec, Some(500))
            .unwrap_err();
        assert_eq!(new, old);
        assert_eq!(new, TimingError::FuelExhausted { fuel: 500 });
    }
}
