//! Functional interpretation of linearized kernels.
//!
//! Executes every thread of every block on real data: global memory is a
//! flat array of `f32` words, each block gets a zeroed shared-memory
//! scratchpad, and `__syncthreads` is honoured by running threads in
//! barrier-delimited segments. The engine is deliberately simple and
//! sequential — its job is *correctness ground truth* for the generated
//! kernels, not speed.

use gpu_arch::MemorySpace;
use gpu_ir::linear::{LinOp, LinearProgram};
use gpu_ir::types::{Operand, Special, VReg};
use gpu_ir::{Instr, Launch, Op};

use crate::error::SimError;

/// Default per-block step budget; generated kernels are counted loops so
/// this only trips on generator bugs.
pub const DEFAULT_STEP_BUDGET: u64 = 1 << 32;

/// Device memory visible to a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMemory {
    /// Global (off-chip) memory, word-addressed.
    pub global: Vec<f32>,
    /// Constant memory (read-only from kernels).
    pub constant: Vec<f32>,
}

impl DeviceMemory {
    /// Allocate `global_words` of zeroed global memory and no constants.
    pub fn new(global_words: usize) -> Self {
        Self { global: vec![0.0; global_words], constant: Vec::new() }
    }

    /// Allocate global memory and a constant bank.
    pub fn with_constant(global_words: usize, constant: Vec<f32>) -> Self {
        Self { global: vec![0.0; global_words], constant }
    }
}

/// A runtime register value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    F32(f32),
    I32(i32),
}

impl Value {
    fn as_f32(self, op: &Instr) -> Result<f32, SimError> {
        match self {
            Value::F32(v) => Ok(v),
            Value::I32(_) => Err(SimError::TypeMismatch { op: op.op.mnemonic() }),
        }
    }

    fn as_i32(self, op: &Instr) -> Result<i32, SimError> {
        match self {
            Value::I32(v) => Ok(v),
            Value::F32(_) => Err(SimError::TypeMismatch { op: op.op.mnemonic() }),
        }
    }
}

/// Thread-geometry values for one thread.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    tid: (u32, u32),
    ctaid: (u32, u32),
    ntid: (u32, u32),
    nctaid: (u32, u32),
}

impl Geometry {
    fn special(&self, s: Special) -> i32 {
        let v = match s {
            Special::TidX => self.tid.0,
            Special::TidY => self.tid.1,
            Special::CtaIdX => self.ctaid.0,
            Special::CtaIdY => self.ctaid.1,
            Special::NTidX => self.ntid.0,
            Special::NTidY => self.ntid.1,
            Special::NCtaIdX => self.nctaid.0,
            Special::NCtaIdY => self.nctaid.1,
        };
        v as i32
    }
}

#[derive(Debug, Clone)]
struct LoopFrame {
    body_start: usize,
    remaining: u32,
    counter: Option<VReg>,
    iter: i32,
}

/// Where a thread stopped at the end of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    AtBarrier(usize),
    Done,
}

/// Per-word access record for the dynamic race oracle, epoch-stamped so
/// a barrier resets every word in O(1): a record is live only while its
/// `epoch` matches the tracker's current epoch.
#[derive(Debug, Clone, Copy)]
struct WordAccess {
    epoch: u64,
    /// First thread that wrote this word this segment.
    writer: Option<u32>,
    /// Bit pattern of the last recorded write.
    write_bits: u32,
    /// A second *distinct* thread that also wrote this word — necessarily
    /// with the same bit pattern, or the tracker would already have
    /// reported a race.
    other_writer: Option<u32>,
    /// First thread that read this word this segment.
    reader: Option<u32>,
    /// A second distinct thread that read this word this segment.
    other_reader: Option<u32>,
}

const EMPTY_WORD: WordAccess = WordAccess {
    epoch: 0,
    writer: None,
    write_bits: 0,
    other_writer: None,
    reader: None,
    other_reader: None,
};

/// The dynamic shared-memory race oracle for one thread block.
///
/// Tracks which threads read and wrote each shared-memory word within the
/// current barrier-delimited segment and reports the first conflict
/// between distinct threads as [`SimError::SharedRace`]. Write/write
/// collisions that store the *same* bit pattern are benign — the word's
/// final value is the same under any interleaving — and are tolerated
/// (the clamped staging loops of the SAD kernel rely on this); the
/// static detector in `gpu_ir::analysis::races` applies the same
/// exemption so the two stay comparable.
#[derive(Debug)]
struct RaceTracker {
    words: Vec<WordAccess>,
    epoch: u64,
}

impl RaceTracker {
    fn new(words: usize) -> Self {
        Self { words: vec![EMPTY_WORD; words], epoch: 1 }
    }

    /// Start a new barrier-delimited segment, forgetting all accesses.
    fn advance(&mut self) {
        self.epoch += 1;
    }

    fn slot(&mut self, addr: usize) -> &mut WordAccess {
        let w = &mut self.words[addr];
        if w.epoch != self.epoch {
            *w = WordAccess { epoch: self.epoch, ..EMPTY_WORD };
        }
        w
    }

    /// Record a read of shared word `addr` by thread `lane`.
    fn on_read(&mut self, addr: usize, lane: u32) -> Result<(), SimError> {
        let w = self.slot(addr);
        if let Some(t) = [w.writer, w.other_writer].into_iter().flatten().find(|&t| t != lane) {
            return Err(SimError::SharedRace { addr, first: t, second: lane, kind: "read/write" });
        }
        match w.reader {
            None => w.reader = Some(lane),
            Some(r) if r != lane && w.other_reader.is_none() => w.other_reader = Some(lane),
            Some(_) => {}
        }
        Ok(())
    }

    /// Record a write of bit pattern `bits` to shared word `addr` by
    /// thread `lane`.
    fn on_write(&mut self, addr: usize, lane: u32, bits: u32) -> Result<(), SimError> {
        let w = self.slot(addr);
        if let Some(t) = [w.reader, w.other_reader].into_iter().flatten().find(|&t| t != lane) {
            return Err(SimError::SharedRace { addr, first: t, second: lane, kind: "read/write" });
        }
        match w.writer {
            None => {
                w.writer = Some(lane);
                w.write_bits = bits;
            }
            Some(prev) => {
                if bits != w.write_bits {
                    // A different value makes every earlier write by any
                    // *other* thread order-dependent.
                    if let Some(t) =
                        [Some(prev), w.other_writer].into_iter().flatten().find(|&t| t != lane)
                    {
                        return Err(SimError::SharedRace {
                            addr,
                            first: t,
                            second: lane,
                            kind: "write/write",
                        });
                    }
                    w.write_bits = bits;
                } else if prev != lane && w.other_writer.is_none() {
                    w.other_writer = Some(lane);
                }
            }
        }
        Ok(())
    }
}

struct Thread {
    regs: Vec<Value>,
    pc: usize,
    frames: Vec<LoopFrame>,
    /// Private spill space. Typed, because register spilling moves both
    /// float and integer registers through local memory.
    local: Vec<Value>,
    geom: Geometry,
}

impl Thread {
    fn new(num_vregs: u32, geom: Geometry) -> Self {
        Self {
            regs: vec![Value::I32(0); num_vregs as usize],
            pc: 0,
            frames: Vec::new(),
            local: Vec::new(),
            geom,
        }
    }

    fn operand(&self, o: &Operand, params: &[i32]) -> Result<Value, SimError> {
        match o {
            Operand::Reg(r) => Ok(self.regs[r.index()]),
            Operand::ImmF32(v) => Ok(Value::F32(*v)),
            Operand::ImmI32(v) => Ok(Value::I32(*v)),
            Operand::Special(s) => Ok(Value::I32(self.geom.special(*s))),
            Operand::Param(i) => params
                .get(*i as usize)
                .map(|v| Value::I32(*v))
                .ok_or(SimError::MissingParam { index: *i }),
        }
    }

    /// Execute until the next barrier or the end of the program.
    ///
    /// `race` is the block's race oracle (when enabled) and `lane` this
    /// thread's linear index `tid.y * ntid.x + tid.x` within the block.
    #[allow(clippy::too_many_arguments)]
    fn run_segment(
        &mut self,
        prog: &LinearProgram,
        params: &[i32],
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        budget: &mut u64,
        mut race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<Stop, SimError> {
        let code = &prog.code;
        loop {
            if self.pc >= code.len() {
                return Ok(Stop::Done);
            }
            if *budget == 0 {
                return Err(SimError::StepBudgetExhausted);
            }
            *budget -= 1;
            match &code[self.pc] {
                LinOp::Sync => {
                    let here = self.pc;
                    self.pc += 1;
                    return Ok(Stop::AtBarrier(here));
                }
                LinOp::LoopStart { counter, trips, end } => {
                    if *trips == 0 {
                        self.pc = end + 1;
                    } else {
                        if let Some(c) = counter {
                            self.regs[c.index()] = Value::I32(0);
                        }
                        self.frames.push(LoopFrame {
                            body_start: self.pc + 1,
                            remaining: *trips,
                            counter: *counter,
                            iter: 0,
                        });
                        self.pc += 1;
                    }
                }
                LinOp::LoopEnd { .. } => {
                    let frame = self.frames.last_mut().expect("loop frame underflow");
                    frame.remaining -= 1;
                    if frame.remaining > 0 {
                        frame.iter += 1;
                        if let Some(c) = frame.counter {
                            self.regs[c.index()] = Value::I32(frame.iter);
                        }
                        self.pc = frame.body_start;
                    } else {
                        self.frames.pop();
                        self.pc += 1;
                    }
                }
                LinOp::Instr(i) => {
                    self.exec(i, params, mem, shared, race.as_deref_mut(), lane)?;
                    self.pc += 1;
                }
            }
        }
    }

    fn addr_of(&self, i: &Instr, params: &[i32]) -> Result<i64, SimError> {
        let base = self.operand(&i.srcs[0], params)?.as_i32(i)?;
        Ok(i64::from(base) + i64::from(i.offset))
    }

    fn load(
        &mut self,
        space: MemorySpace,
        addr: i64,
        mem: &DeviceMemory,
        shared: &[f32],
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<Value, SimError> {
        let fetch = |buf: &[f32], name: &'static str| -> Result<Value, SimError> {
            usize::try_from(addr)
                .ok()
                .and_then(|a| buf.get(a).copied())
                .map(Value::F32)
                .ok_or(SimError::OutOfBounds { space: name, addr, len: buf.len() })
        };
        match space {
            MemorySpace::Global | MemorySpace::Texture => fetch(&mem.global, "global"),
            MemorySpace::Constant => fetch(&mem.constant, "const"),
            MemorySpace::Shared => {
                let v = fetch(shared, "shared")?;
                if let Some(t) = race {
                    // The fetch succeeded, so `addr` fits in usize.
                    t.on_read(addr as usize, lane)?;
                }
                Ok(v)
            }
            MemorySpace::Local => {
                // Local memory grows on demand: it is private spill space.
                let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                    space: "local",
                    addr,
                    len: self.local.len(),
                })?;
                Ok(self.local.get(a).copied().unwrap_or(Value::F32(0.0)))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn store(
        &mut self,
        space: MemorySpace,
        addr: i64,
        value: Value,
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        op: &Instr,
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<(), SimError> {
        match space {
            MemorySpace::Global => {
                let len = mem.global.len();
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|a| mem.global.get_mut(a))
                    .ok_or(SimError::OutOfBounds { space: "global", addr, len })?;
                *slot = value.as_f32(op)?;
            }
            MemorySpace::Shared => {
                let len = shared.len();
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|a| shared.get_mut(a))
                    .ok_or(SimError::OutOfBounds { space: "shared", addr, len })?;
                let v = value.as_f32(op)?;
                *slot = v;
                if let Some(t) = race {
                    // The bounds check passed, so `addr` fits in usize.
                    t.on_write(addr as usize, lane, v.to_bits())?;
                }
            }
            MemorySpace::Local => {
                let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                    space: "local",
                    addr,
                    len: self.local.len(),
                })?;
                if a >= self.local.len() {
                    self.local.resize(a + 1, Value::F32(0.0));
                }
                self.local[a] = value;
            }
            MemorySpace::Constant | MemorySpace::Texture => {
                return Err(SimError::TypeMismatch { op: format!("st.{space}") });
            }
        }
        Ok(())
    }

    fn exec(
        &mut self,
        i: &Instr,
        params: &[i32],
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<(), SimError> {
        use Op::*;
        let v = |t: &Self, n: usize| t.operand(&i.srcs[n], params);

        let result: Value = match i.op {
            FAdd => Value::F32(v(self, 0)?.as_f32(i)? + v(self, 1)?.as_f32(i)?),
            FSub => Value::F32(v(self, 0)?.as_f32(i)? - v(self, 1)?.as_f32(i)?),
            FMul => Value::F32(v(self, 0)?.as_f32(i)? * v(self, 1)?.as_f32(i)?),
            FMad => Value::F32(
                v(self, 0)?.as_f32(i)?.mul_add(v(self, 1)?.as_f32(i)?, v(self, 2)?.as_f32(i)?),
            ),
            FMin => Value::F32(v(self, 0)?.as_f32(i)?.min(v(self, 1)?.as_f32(i)?)),
            FMax => Value::F32(v(self, 0)?.as_f32(i)?.max(v(self, 1)?.as_f32(i)?)),
            FNeg => Value::F32(-v(self, 0)?.as_f32(i)?),
            FAbs => Value::F32(v(self, 0)?.as_f32(i)?.abs()),
            Rcp => Value::F32(1.0 / v(self, 0)?.as_f32(i)?),
            Rsqrt => Value::F32(1.0 / v(self, 0)?.as_f32(i)?.sqrt()),
            Sqrt => Value::F32(v(self, 0)?.as_f32(i)?.sqrt()),
            Sin => Value::F32(v(self, 0)?.as_f32(i)?.sin()),
            Cos => Value::F32(v(self, 0)?.as_f32(i)?.cos()),
            Ex2 => Value::F32(v(self, 0)?.as_f32(i)?.exp2()),
            IAdd => Value::I32(v(self, 0)?.as_i32(i)?.wrapping_add(v(self, 1)?.as_i32(i)?)),
            ISub => Value::I32(v(self, 0)?.as_i32(i)?.wrapping_sub(v(self, 1)?.as_i32(i)?)),
            IMul => Value::I32(v(self, 0)?.as_i32(i)?.wrapping_mul(v(self, 1)?.as_i32(i)?)),
            IMad => Value::I32(
                v(self, 0)?
                    .as_i32(i)?
                    .wrapping_mul(v(self, 1)?.as_i32(i)?)
                    .wrapping_add(v(self, 2)?.as_i32(i)?),
            ),
            IDiv => {
                let (a, b) = (v(self, 0)?.as_i32(i)?, v(self, 1)?.as_i32(i)?);
                Value::I32(if b == 0 { 0 } else { a.wrapping_div(b) })
            }
            IRem => {
                let (a, b) = (v(self, 0)?.as_i32(i)?, v(self, 1)?.as_i32(i)?);
                Value::I32(if b == 0 { 0 } else { a.wrapping_rem(b) })
            }
            Shl => Value::I32(v(self, 0)?.as_i32(i)?.wrapping_shl(v(self, 1)?.as_i32(i)? as u32)),
            Shr => Value::I32(v(self, 0)?.as_i32(i)?.wrapping_shr(v(self, 1)?.as_i32(i)? as u32)),
            And => Value::I32(v(self, 0)?.as_i32(i)? & v(self, 1)?.as_i32(i)?),
            Or => Value::I32(v(self, 0)?.as_i32(i)? | v(self, 1)?.as_i32(i)?),
            Xor => Value::I32(v(self, 0)?.as_i32(i)? ^ v(self, 1)?.as_i32(i)?),
            IMin => Value::I32(v(self, 0)?.as_i32(i)?.min(v(self, 1)?.as_i32(i)?)),
            IMax => Value::I32(v(self, 0)?.as_i32(i)?.max(v(self, 1)?.as_i32(i)?)),
            Mov => v(self, 0)?,
            F2I => Value::I32(v(self, 0)?.as_f32(i)? as i32),
            I2F => Value::F32(v(self, 0)?.as_i32(i)? as f32),
            SetLt | SetLe | SetEq | SetNe => {
                let (a, b) = (v(self, 0)?, v(self, 1)?);
                let ord = match (a, b) {
                    (Value::F32(x), Value::F32(y)) => x.partial_cmp(&y),
                    (Value::I32(x), Value::I32(y)) => Some(x.cmp(&y)),
                    _ => return Err(SimError::TypeMismatch { op: i.op.mnemonic() }),
                };
                let t = match (i.op, ord) {
                    (SetLt, Some(o)) => o.is_lt(),
                    (SetLe, Some(o)) => o.is_le(),
                    (SetEq, Some(o)) => o.is_eq(),
                    (SetNe, Some(o)) => o.is_ne(),
                    (SetNe, None) => true, // NaN != anything
                    (_, None) => false,
                    _ => unreachable!("outer match restricts the op"),
                };
                Value::I32(i32::from(t))
            }
            Selp => {
                let c = v(self, 2)?.as_i32(i)?;
                if c != 0 {
                    v(self, 0)?
                } else {
                    v(self, 1)?
                }
            }
            Ld(space) => {
                let addr = self.addr_of(i, params)?;
                self.load(space, addr, mem, shared, race, lane)?
            }
            St(space) => {
                let addr = self.addr_of(i, params)?;
                let value = self.operand(&i.srcs[1], params)?;
                self.store(space, addr, value, mem, shared, i, race, lane)?;
                return Ok(());
            }
        };
        let dst = i.dst.expect("non-store ops have destinations");
        self.regs[dst.index()] = result;
        Ok(())
    }
}

/// Execute `prog` over the whole `launch` grid against `mem`.
///
/// `params` are the kernel's launch-time scalar parameters (word
/// addresses and sizes), indexed by `Operand::Param`.
///
/// # Errors
///
/// Propagates any [`SimError`] raised by a thread: out-of-bounds
/// accesses, type mismatches, missing parameters, or divergent barriers.
pub fn run_kernel(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_kernel_with_budget(prog, launch, params, mem, DEFAULT_STEP_BUDGET)
}

/// [`run_kernel`] with an explicit per-block step budget.
///
/// # Errors
///
/// As [`run_kernel`], plus [`SimError::StepBudgetExhausted`] when a block
/// exceeds `budget` interpreted steps.
pub fn run_kernel_with_budget(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    budget: u64,
) -> Result<(), SimError> {
    run_grid(prog, launch, params, mem, budget, false)
}

/// [`run_kernel`] with the dynamic shared-memory race oracle enabled.
///
/// In addition to executing the kernel, every shared-memory access is
/// recorded in a per-block, per-barrier-segment access set; the first
/// conflict between distinct threads (read/write, or write/write with
/// different bit patterns) aborts the run. This is the ground truth the
/// static detector in `gpu_ir::analysis::races` is validated against.
///
/// # Errors
///
/// As [`run_kernel`], plus [`SimError::SharedRace`] on the first
/// shared-memory conflict.
pub fn run_kernel_checked(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_grid(prog, launch, params, mem, DEFAULT_STEP_BUDGET, true)
}

fn run_grid(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    budget: u64,
    check_races: bool,
) -> Result<(), SimError> {
    if launch.grid.count() == 0 || launch.block.count() == 0 {
        return Err(SimError::EmptyLaunch);
    }
    let (gx, gy) = (launch.grid.x, launch.grid.y);
    let (bx, by) = (launch.block.x, launch.block.y);

    for cy in 0..gy {
        for cx in 0..gx {
            let mut shared = vec![0.0f32; prog.smem_words as usize];
            let mut tracker = check_races.then(|| RaceTracker::new(prog.smem_words as usize));
            let mut threads: Vec<Thread> = (0..by)
                .flat_map(|ty| (0..bx).map(move |tx| (tx, ty)))
                .map(|(tx, ty)| {
                    Thread::new(
                        prog.num_vregs,
                        Geometry {
                            tid: (tx, ty),
                            ctaid: (cx, cy),
                            ntid: (bx, by),
                            nctaid: (gx, gy),
                        },
                    )
                })
                .collect();

            let mut block_budget = budget;
            loop {
                let mut stops = Vec::with_capacity(threads.len());
                for (lane, t) in threads.iter_mut().enumerate() {
                    stops.push(t.run_segment(
                        prog,
                        params,
                        mem,
                        &mut shared,
                        &mut block_budget,
                        tracker.as_mut(),
                        lane as u32,
                    )?);
                }
                // Non-empty: zero-extent launches were rejected above.
                let first = stops[0];
                if stops.iter().any(|s| *s != first) {
                    return Err(SimError::BarrierDivergence);
                }
                if first == Stop::Done {
                    break;
                }
                if let Some(t) = tracker.as_mut() {
                    t.advance();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};

    fn launch_1d(blocks: u32, threads: u32) -> Launch {
        Launch::new(Dim::new_1d(blocks), Dim::new_1d(threads))
    }

    #[test]
    fn global_copy_across_blocks() {
        // out[g] = in[g] for 4 blocks of 8 threads.
        let mut b = KernelBuilder::new("copy");
        let src = b.param(0);
        let dst = b.param(1);
        let tid = b.read_special(Special::TidX);
        let cta = b.read_special(Special::CtaIdX);
        let ntid = b.read_special(Special::NTidX);
        let g = b.imad(cta, ntid, tid);
        let sa = b.iadd(src, g);
        let da = b.iadd(dst, g);
        let v = b.ld_global(sa, 0);
        b.st_global(da, 0, v);
        let prog = linearize(&b.finish());

        let mut mem = DeviceMemory::new(64);
        for i in 0..32 {
            mem.global[i] = (i * i) as f32;
        }
        run_kernel(&prog, &launch_1d(4, 8), &[0, 32], &mut mem).unwrap();
        for i in 0..32 {
            assert_eq!(mem.global[32 + i], (i * i) as f32);
        }
    }

    use gpu_ir::types::Special;

    #[test]
    fn shared_memory_reversal_with_barrier() {
        // Each thread writes shared[tid] = in[tid]; after the barrier
        // reads shared[N-1-tid].
        let n = 16;
        let mut b = KernelBuilder::new("rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        b.sync();
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        let prog = linearize(&b.finish());

        let mut mem = DeviceMemory::new(2 * n as usize);
        for i in 0..n as usize {
            mem.global[i] = i as f32;
        }
        run_kernel(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        for i in 0..n as usize {
            assert_eq!(mem.global[n as usize + i], (n as usize - 1 - i) as f32);
        }
    }

    #[test]
    fn loop_counter_values_are_sequential() {
        // out[i] = i via a loop writing global[counter].
        let mut b = KernelBuilder::new("iota");
        let dst = b.param(0);
        b.for_loop(10, |b, i| {
            let addr = b.iadd(dst, i);
            let fi = b.i2f(i);
            b.st_global(addr, 0, fi);
        });
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(10);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        let got: Vec<f32> = mem.global.clone();
        let want: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_loops_execute_product_of_trips() {
        let mut b = KernelBuilder::new("acc");
        let dst = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(7, |b| {
            b.repeat(5, |b| {
                b.fmad_acc(1.0f32, 1.0f32, acc);
            });
        });
        b.st_global(dst, 0, acc);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 35.0);
    }

    #[test]
    fn zero_trip_loop_skips_body() {
        let mut b = KernelBuilder::new("z");
        let dst = b.param(0);
        b.repeat(0, |b| {
            b.st_global(0i32, 0, 99.0f32);
        });
        b.st_global(dst, 0, 1.0f32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 1.0);
    }

    #[test]
    fn local_memory_spill_roundtrip() {
        let mut b = KernelBuilder::new("spill");
        let dst = b.param(0);
        let x = b.mov(42.5f32);
        b.st_local(0i32, 3, x);
        let y = b.ld_local(0i32, 3);
        b.st_global(dst, 0, y);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 42.5);
    }

    #[test]
    fn constant_memory_reads() {
        let mut b = KernelBuilder::new("c");
        let dst = b.param(0);
        let v = b.ld_const(2i32, 0);
        b.st_global(dst, 0, v);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::with_constant(1, vec![1.0, 2.0, 3.0]);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 3.0);
    }

    #[test]
    fn out_of_bounds_global_is_reported() {
        let mut b = KernelBuilder::new("oob");
        b.ld_global(100i32, 0);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(4);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { space: "global", .. }));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut b = KernelBuilder::new("tm");
        let x = b.mov(1i32);
        b.fadd(x, 1.0f32); // float add on integer register
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_param_is_reported() {
        let mut b = KernelBuilder::new("mp");
        let p = b.param(5);
        b.st_global(p, 0, 0.0f32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[0, 1], &mut mem).unwrap_err();
        assert_eq!(err, SimError::MissingParam { index: 5 });
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = KernelBuilder::new("long");
        b.repeat(1000, |b| {
            b.mov(0i32);
        });
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel_with_budget(&prog, &launch_1d(1, 1), &[], &mut mem, 100).unwrap_err();
        assert_eq!(err, SimError::StepBudgetExhausted);
    }

    #[test]
    fn predicates_and_select() {
        let mut b = KernelBuilder::new("sel");
        let dst = b.param(0);
        let p = b.set_lt(3i32, 5i32);
        let v = b.selp(10.0f32, 20.0f32, p);
        b.st_global(dst, 0, v);
        let q = b.set_lt(5i32, 3i32);
        let w = b.selp(10.0f32, 20.0f32, q);
        b.st_global(dst, 1, w);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global, vec![10.0, 20.0]);
    }

    #[test]
    fn integer_division_by_zero_yields_zero() {
        let mut b = KernelBuilder::new("div0");
        let dst = b.param(0);
        let d = b.idiv(7i32, 0i32);
        let r = b.irem(7i32, 0i32);
        let s = b.iadd(d, r);
        let f = b.i2f(s);
        b.st_global(dst, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 0.0);
    }

    #[test]
    fn two_dimensional_geometry() {
        // out[ty*4+tx] = ctaid.y*1000 + tid.y*4 + tid.x over a 4x2 block.
        let mut b = KernelBuilder::new("geom");
        let dst = b.param(0);
        let tx = b.read_special(Special::TidX);
        let ty = b.read_special(Special::TidY);
        let idx = b.imad(ty, 4i32, tx);
        let addr = b.iadd(dst, idx);
        let f = b.i2f(idx);
        b.st_global(addr, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(8);
        let launch = Launch::new(Dim::new_1d(1), Dim::new_2d(4, 2));
        run_kernel(&prog, &launch, &[0], &mut mem).unwrap();
        let want: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(mem.global, want);
    }

    #[test]
    fn empty_block_is_an_error_not_a_panic() {
        let mut b = KernelBuilder::new("empty");
        b.mov(0i32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 0), &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
        let err = run_kernel(&prog, &launch_1d(0, 4), &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
        let launch = Launch::new(Dim::new_2d(1, 0), Dim::new_1d(4));
        let err = run_kernel(&prog, &launch, &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
    }

    /// Reversal kernel *without* the barrier: thread t writes shared[t]
    /// and reads shared[N-1-t] — a read/write race the sequential
    /// interpreter silently masks.
    fn racy_reversal(n: u32) -> LinearProgram {
        let mut b = KernelBuilder::new("racy_rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        // missing b.sync()
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        linearize(&b.finish())
    }

    #[test]
    fn race_oracle_flags_read_write_conflict() {
        let n = 16u32;
        let prog = racy_reversal(n);
        let mut mem = DeviceMemory::new(2 * n as usize);
        // The plain interpreter accepts the racy kernel (the soundness
        // hole the oracle closes)...
        run_kernel(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        // ...while the oracle reports the conflict.
        let err =
            run_kernel_checked(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::SharedRace { kind: "read/write", .. }), "got {err:?}");
    }

    #[test]
    fn race_oracle_accepts_barrier_separated_accesses() {
        // The well-synchronized reversal from
        // `shared_memory_reversal_with_barrier`.
        let n = 16u32;
        let mut b = KernelBuilder::new("rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        b.sync();
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2 * n as usize);
        for i in 0..n as usize {
            mem.global[i] = i as f32;
        }
        run_kernel_checked(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        for i in 0..n as usize {
            assert_eq!(mem.global[n as usize + i], (n as usize - 1 - i) as f32);
        }
    }

    #[test]
    fn race_oracle_flags_write_write_of_distinct_values() {
        // Every thread writes its own tid to shared word 0.
        let mut b = KernelBuilder::new("ww");
        b.alloc_shared(4);
        let tid = b.read_special(Special::TidX);
        let f = b.i2f(tid);
        b.st_shared(0i32, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel_checked(&prog, &launch_1d(1, 4), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::SharedRace { kind: "write/write", addr: 0, .. }));
    }

    #[test]
    fn race_oracle_tolerates_same_value_write_write() {
        // Every thread writes the same constant to shared word 0 — the
        // final value is interleaving-independent, so this is benign
        // (SAD's clamped staging loop depends on this exemption).
        let mut b = KernelBuilder::new("ww_benign");
        let dst = b.param(0);
        b.alloc_shared(4);
        b.st_shared(0i32, 0, 7.5f32);
        b.sync();
        let v = b.ld_shared(0i32, 0);
        let tid = b.read_special(Special::TidX);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, v);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(4);
        run_kernel_checked(&prog, &launch_1d(1, 4), &[0], &mut mem).unwrap();
        assert_eq!(mem.global, vec![7.5; 4]);
    }

    #[test]
    fn race_oracle_resets_at_barriers() {
        // Thread t writes shared[t] in segment 1 and shared[(t+1)%n] in
        // segment 2: same words touched by different threads, but never
        // within one segment.
        let n = 8u32;
        let mut b = KernelBuilder::new("rotate");
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let f = b.i2f(tid);
        b.st_shared(tid, 0, f);
        b.sync();
        let shifted = b.iadd(tid, 1i32);
        let wrapped = b.irem(shifted, n as i32);
        b.st_shared(wrapped, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel_checked(&prog, &launch_1d(1, n), &[], &mut mem).unwrap();
    }

    #[test]
    fn sfu_ops_compute() {
        let mut b = KernelBuilder::new("sfu");
        let dst = b.param(0);
        let r = b.rsqrt(4.0f32);
        b.st_global(dst, 0, r);
        let c = b.cos(0.0f32);
        b.st_global(dst, 1, c);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert!((mem.global[0] - 0.5).abs() < 1e-6);
        assert!((mem.global[1] - 1.0).abs() < 1e-6);
    }
}
