//! Functional interpretation of linearized kernels.
//!
//! Executes every thread of every block on real data: global memory is a
//! flat array of `f32` words, each block gets a zeroed shared-memory
//! scratchpad, and `__syncthreads` is honoured by running threads in
//! barrier-delimited segments. The engine is deliberately simple and
//! sequential — its job is *correctness ground truth* for the generated
//! kernels, not speed.
//!
//! Execution runs on the pre-decoded form from [`crate::decode`]: an
//! index walk over the flat op arena, with every thread's registers and
//! loop frames held in per-block slabs that are reused across blocks.
//! The structured-[`LinOp`] reference interpreter lives in
//! [`crate::legacy`] and is held bit-identical to this one by the
//! differential test suite.
//!
//! [`LinOp`]: gpu_ir::linear::LinOp

use gpu_arch::MemorySpace;
use gpu_ir::linear::LinearProgram;
use gpu_ir::types::Special;
use gpu_ir::{Launch, Op};

use crate::decode::{decode, DecKind, DecodedOp, DecodedProgram, Slot, NO_REG};
use crate::error::SimError;

/// Default per-block step budget; generated kernels are counted loops so
/// this only trips on generator bugs.
pub const DEFAULT_STEP_BUDGET: u64 = 1 << 32;

/// Device memory visible to a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMemory {
    /// Global (off-chip) memory, word-addressed.
    pub global: Vec<f32>,
    /// Constant memory (read-only from kernels).
    pub constant: Vec<f32>,
}

impl DeviceMemory {
    /// Allocate `global_words` of zeroed global memory and no constants.
    pub fn new(global_words: usize) -> Self {
        Self { global: vec![0.0; global_words], constant: Vec::new() }
    }

    /// Allocate global memory and a constant bank.
    pub fn with_constant(global_words: usize, constant: Vec<f32>) -> Self {
        Self { global: vec![0.0; global_words], constant }
    }
}

/// A runtime register value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    F32(f32),
    I32(i32),
}

impl Value {
    pub(crate) fn as_f32(self, op: Op) -> Result<f32, SimError> {
        match self {
            Value::F32(v) => Ok(v),
            Value::I32(_) => Err(SimError::TypeMismatch { op: op.mnemonic() }),
        }
    }

    pub(crate) fn as_i32(self, op: Op) -> Result<i32, SimError> {
        match self {
            Value::I32(v) => Ok(v),
            Value::F32(_) => Err(SimError::TypeMismatch { op: op.mnemonic() }),
        }
    }
}

/// Thread-geometry values for one thread.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Geometry {
    pub(crate) tid: (u32, u32),
    pub(crate) ctaid: (u32, u32),
    pub(crate) ntid: (u32, u32),
    pub(crate) nctaid: (u32, u32),
}

impl Geometry {
    pub(crate) fn special(&self, s: Special) -> i32 {
        let v = match s {
            Special::TidX => self.tid.0,
            Special::TidY => self.tid.1,
            Special::CtaIdX => self.ctaid.0,
            Special::CtaIdY => self.ctaid.1,
            Special::NTidX => self.ntid.0,
            Special::NTidY => self.ntid.1,
            Special::NCtaIdX => self.nctaid.0,
            Special::NCtaIdY => self.nctaid.1,
        };
        v as i32
    }
}

const ZERO_GEOM: Geometry = Geometry { tid: (0, 0), ctaid: (0, 0), ntid: (0, 0), nctaid: (0, 0) };

/// Where a thread stopped at the end of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stop {
    AtBarrier(usize),
    Done,
}

/// Per-word access record for the dynamic race oracle, epoch-stamped so
/// a barrier resets every word in O(1): a record is live only while its
/// `epoch` matches the tracker's current epoch.
#[derive(Debug, Clone, Copy)]
struct WordAccess {
    epoch: u64,
    /// First thread that wrote this word this segment.
    writer: Option<u32>,
    /// Bit pattern of the last recorded write.
    write_bits: u32,
    /// A second *distinct* thread that also wrote this word — necessarily
    /// with the same bit pattern, or the tracker would already have
    /// reported a race.
    other_writer: Option<u32>,
    /// First thread that read this word this segment.
    reader: Option<u32>,
    /// A second distinct thread that read this word this segment.
    other_reader: Option<u32>,
}

const EMPTY_WORD: WordAccess = WordAccess {
    epoch: 0,
    writer: None,
    write_bits: 0,
    other_writer: None,
    reader: None,
    other_reader: None,
};

/// The dynamic shared-memory race oracle for one thread block.
///
/// Tracks which threads read and wrote each shared-memory word within the
/// current barrier-delimited segment and reports the first conflict
/// between distinct threads as [`SimError::SharedRace`]. Write/write
/// collisions that store the *same* bit pattern are benign — the word's
/// final value is the same under any interleaving — and are tolerated
/// (the clamped staging loops of the SAD kernel rely on this); the
/// static detector in `gpu_ir::analysis::races` applies the same
/// exemption so the two stay comparable.
#[derive(Debug)]
pub(crate) struct RaceTracker {
    words: Vec<WordAccess>,
    epoch: u64,
}

impl RaceTracker {
    pub(crate) fn new(words: usize) -> Self {
        Self { words: vec![EMPTY_WORD; words], epoch: 1 }
    }

    /// Start a new barrier-delimited segment, forgetting all accesses.
    pub(crate) fn advance(&mut self) {
        self.epoch += 1;
    }

    fn slot(&mut self, addr: usize) -> &mut WordAccess {
        let w = &mut self.words[addr];
        if w.epoch != self.epoch {
            *w = WordAccess { epoch: self.epoch, ..EMPTY_WORD };
        }
        w
    }

    /// Record a read of shared word `addr` by thread `lane`.
    pub(crate) fn on_read(&mut self, addr: usize, lane: u32) -> Result<(), SimError> {
        let w = self.slot(addr);
        if let Some(t) = [w.writer, w.other_writer].into_iter().flatten().find(|&t| t != lane) {
            return Err(SimError::SharedRace { addr, first: t, second: lane, kind: "read/write" });
        }
        match w.reader {
            None => w.reader = Some(lane),
            Some(r) if r != lane && w.other_reader.is_none() => w.other_reader = Some(lane),
            Some(_) => {}
        }
        Ok(())
    }

    /// Record a write of bit pattern `bits` to shared word `addr` by
    /// thread `lane`.
    pub(crate) fn on_write(&mut self, addr: usize, lane: u32, bits: u32) -> Result<(), SimError> {
        let w = self.slot(addr);
        if let Some(t) = [w.reader, w.other_reader].into_iter().flatten().find(|&t| t != lane) {
            return Err(SimError::SharedRace { addr, first: t, second: lane, kind: "read/write" });
        }
        match w.writer {
            None => {
                w.writer = Some(lane);
                w.write_bits = bits;
            }
            Some(prev) => {
                if bits != w.write_bits {
                    // A different value makes every earlier write by any
                    // *other* thread order-dependent.
                    if let Some(t) =
                        [Some(prev), w.other_writer].into_iter().flatten().find(|&t| t != lane)
                    {
                        return Err(SimError::SharedRace {
                            addr,
                            first: t,
                            second: lane,
                            kind: "write/write",
                        });
                    }
                    w.write_bits = bits;
                } else if prev != lane && w.other_writer.is_none() {
                    w.other_writer = Some(lane);
                }
            }
        }
        Ok(())
    }
}

/// One open loop of one thread: which loop, trips left, and the value of
/// its counter register (re-materialized each back edge).
#[derive(Debug, Clone, Copy)]
struct FrameI {
    loop_id: u32,
    remaining: u32,
    iter: i32,
}

const EMPTY_FRAME: FrameI = FrameI { loop_id: NO_REG, remaining: 0, iter: 0 };

/// All threads of one block, struct-of-arrays: every thread's registers
/// share one `thread × num_vregs` slab and loop frames one
/// `thread × depth` slab, reused (reset, not reallocated) from block to
/// block.
struct BlockThreads {
    /// Registers per thread — the slab stride.
    nv: usize,
    /// Loop-frame capacity per thread (the arena's max nesting depth).
    depth_cap: usize,
    regs: Vec<Value>,
    pc: Vec<u32>,
    frames: Vec<FrameI>,
    flen: Vec<u32>,
    /// Private spill space, per thread. Typed, because register spilling
    /// moves both float and integer registers through local memory; a
    /// nested `Vec` because spilling is rare and usually tiny.
    local: Vec<Vec<Value>>,
    geom: Vec<Geometry>,
}

impl BlockThreads {
    fn new(nt: usize, num_vregs: u32, depth_cap: usize) -> Self {
        let nv = num_vregs as usize;
        Self {
            nv,
            depth_cap,
            regs: vec![Value::I32(0); nt * nv],
            pc: vec![0; nt],
            frames: vec![EMPTY_FRAME; nt * depth_cap],
            flen: vec![0; nt],
            local: vec![Vec::new(); nt],
            geom: vec![ZERO_GEOM; nt],
        }
    }

    /// Re-arm the slabs for the block at `(cx, cy)`, ty-major thread
    /// order (linear lane index `ty * bx + tx`).
    fn reset(&mut self, (cx, cy): (u32, u32), (bx, by): (u32, u32), (gx, gy): (u32, u32)) {
        self.regs.fill(Value::I32(0));
        self.pc.fill(0);
        self.flen.fill(0);
        for l in &mut self.local {
            l.clear();
        }
        let mut ti = 0;
        for ty in 0..by {
            for tx in 0..bx {
                self.geom[ti] =
                    Geometry { tid: (tx, ty), ctaid: (cx, cy), ntid: (bx, by), nctaid: (gx, gy) };
                ti += 1;
            }
        }
    }

    fn slot_value(
        &self,
        base: usize,
        ti: usize,
        s: Slot,
        params: &[i32],
    ) -> Result<Value, SimError> {
        match s {
            Slot::Reg(r) => Ok(self.regs[base + r as usize]),
            Slot::ImmF(v) => Ok(Value::F32(v)),
            Slot::ImmI(v) => Ok(Value::I32(v)),
            Slot::Special(sp) => Ok(Value::I32(self.geom[ti].special(sp))),
            Slot::Param(i) => params
                .get(i as usize)
                .map(|v| Value::I32(*v))
                .ok_or(SimError::MissingParam { index: i }),
            Slot::None => unreachable!("operand slot beyond the op's arity"),
        }
    }

    /// Execute thread `ti` until the next barrier or the end of the
    /// program.
    ///
    /// `race` is the block's race oracle (when enabled) and `lane` this
    /// thread's linear index `tid.y * ntid.x + tid.x` within the block.
    #[allow(clippy::too_many_arguments)]
    fn run_segment(
        &mut self,
        ti: usize,
        prog: &DecodedProgram,
        params: &[i32],
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        budget: &mut u64,
        mut race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<Stop, SimError> {
        let ops = &prog.arena.ops;
        let n_ops = ops.len() as u32;
        let base = ti * self.nv;
        loop {
            let pc = self.pc[ti];
            if pc >= n_ops {
                return Ok(Stop::Done);
            }
            if *budget == 0 {
                return Err(SimError::StepBudgetExhausted);
            }
            *budget -= 1;
            let op = &ops[pc as usize];
            match op.kind {
                DecKind::Sync => {
                    self.pc[ti] = pc + 1;
                    return Ok(Stop::AtBarrier(pc as usize));
                }
                DecKind::LoopStart => {
                    let trips = prog.loop_trips[op.loop_id as usize];
                    if trips == 0 {
                        self.pc[ti] = op.target;
                    } else {
                        if op.counter != NO_REG {
                            self.regs[base + op.counter as usize] = Value::I32(0);
                        }
                        let slot = ti * self.depth_cap + self.flen[ti] as usize;
                        self.frames[slot] =
                            FrameI { loop_id: op.loop_id, remaining: trips, iter: 0 };
                        self.flen[ti] += 1;
                        self.pc[ti] = pc + 1;
                    }
                }
                DecKind::LoopEnd => {
                    let len = self.flen[ti] as usize;
                    debug_assert!(len > 0, "loop frame underflow");
                    let frame = &mut self.frames[ti * self.depth_cap + len - 1];
                    debug_assert_eq!(frame.loop_id, op.loop_id);
                    frame.remaining -= 1;
                    if frame.remaining > 0 {
                        frame.iter += 1;
                        let iter = frame.iter;
                        if op.counter != NO_REG {
                            self.regs[base + op.counter as usize] = Value::I32(iter);
                        }
                        self.pc[ti] = op.target;
                    } else {
                        self.flen[ti] -= 1;
                        self.pc[ti] = pc + 1;
                    }
                }
                DecKind::Instr => {
                    self.exec(ti, op, params, mem, shared, race.as_deref_mut(), lane)?;
                    self.pc[ti] = pc + 1;
                }
            }
        }
    }

    fn addr_of(&self, ti: usize, op: &DecodedOp, params: &[i32]) -> Result<i64, SimError> {
        let base = self.slot_value(ti * self.nv, ti, op.srcs[0], params)?.as_i32(op.op)?;
        Ok(i64::from(base) + i64::from(op.offset))
    }

    #[allow(clippy::too_many_arguments)]
    fn load(
        &mut self,
        ti: usize,
        space: MemorySpace,
        addr: i64,
        mem: &DeviceMemory,
        shared: &[f32],
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<Value, SimError> {
        let fetch = |buf: &[f32], name: &'static str| -> Result<Value, SimError> {
            usize::try_from(addr)
                .ok()
                .and_then(|a| buf.get(a).copied())
                .map(Value::F32)
                .ok_or(SimError::OutOfBounds { space: name, addr, len: buf.len() })
        };
        match space {
            MemorySpace::Global | MemorySpace::Texture => fetch(&mem.global, "global"),
            MemorySpace::Constant => fetch(&mem.constant, "const"),
            MemorySpace::Shared => {
                let v = fetch(shared, "shared")?;
                if let Some(t) = race {
                    // The fetch succeeded, so `addr` fits in usize.
                    t.on_read(addr as usize, lane)?;
                }
                Ok(v)
            }
            MemorySpace::Local => {
                // Local memory grows on demand: it is private spill space.
                let local = &self.local[ti];
                let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                    space: "local",
                    addr,
                    len: local.len(),
                })?;
                Ok(local.get(a).copied().unwrap_or(Value::F32(0.0)))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn store(
        &mut self,
        ti: usize,
        space: MemorySpace,
        addr: i64,
        value: Value,
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        op: Op,
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<(), SimError> {
        match space {
            MemorySpace::Global => {
                let len = mem.global.len();
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|a| mem.global.get_mut(a))
                    .ok_or(SimError::OutOfBounds { space: "global", addr, len })?;
                *slot = value.as_f32(op)?;
            }
            MemorySpace::Shared => {
                let len = shared.len();
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|a| shared.get_mut(a))
                    .ok_or(SimError::OutOfBounds { space: "shared", addr, len })?;
                let v = value.as_f32(op)?;
                *slot = v;
                if let Some(t) = race {
                    // The bounds check passed, so `addr` fits in usize.
                    t.on_write(addr as usize, lane, v.to_bits())?;
                }
            }
            MemorySpace::Local => {
                let local = &mut self.local[ti];
                let a = usize::try_from(addr).map_err(|_| SimError::OutOfBounds {
                    space: "local",
                    addr,
                    len: local.len(),
                })?;
                if a >= local.len() {
                    local.resize(a + 1, Value::F32(0.0));
                }
                local[a] = value;
            }
            MemorySpace::Constant | MemorySpace::Texture => {
                return Err(SimError::TypeMismatch { op: format!("st.{space}") });
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(
        &mut self,
        ti: usize,
        op: &DecodedOp,
        params: &[i32],
        mem: &mut DeviceMemory,
        shared: &mut [f32],
        race: Option<&mut RaceTracker>,
        lane: u32,
    ) -> Result<(), SimError> {
        use Op::*;
        let base = ti * self.nv;
        let o = op.op;
        let v = |t: &Self, n: usize| t.slot_value(base, ti, op.srcs[n], params);

        let result: Value = match o {
            FAdd => Value::F32(v(self, 0)?.as_f32(o)? + v(self, 1)?.as_f32(o)?),
            FSub => Value::F32(v(self, 0)?.as_f32(o)? - v(self, 1)?.as_f32(o)?),
            FMul => Value::F32(v(self, 0)?.as_f32(o)? * v(self, 1)?.as_f32(o)?),
            FMad => Value::F32(
                v(self, 0)?.as_f32(o)?.mul_add(v(self, 1)?.as_f32(o)?, v(self, 2)?.as_f32(o)?),
            ),
            FMin => Value::F32(v(self, 0)?.as_f32(o)?.min(v(self, 1)?.as_f32(o)?)),
            FMax => Value::F32(v(self, 0)?.as_f32(o)?.max(v(self, 1)?.as_f32(o)?)),
            FNeg => Value::F32(-v(self, 0)?.as_f32(o)?),
            FAbs => Value::F32(v(self, 0)?.as_f32(o)?.abs()),
            Rcp => Value::F32(1.0 / v(self, 0)?.as_f32(o)?),
            Rsqrt => Value::F32(1.0 / v(self, 0)?.as_f32(o)?.sqrt()),
            Sqrt => Value::F32(v(self, 0)?.as_f32(o)?.sqrt()),
            Sin => Value::F32(v(self, 0)?.as_f32(o)?.sin()),
            Cos => Value::F32(v(self, 0)?.as_f32(o)?.cos()),
            Ex2 => Value::F32(v(self, 0)?.as_f32(o)?.exp2()),
            IAdd => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_add(v(self, 1)?.as_i32(o)?)),
            ISub => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_sub(v(self, 1)?.as_i32(o)?)),
            IMul => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_mul(v(self, 1)?.as_i32(o)?)),
            IMad => Value::I32(
                v(self, 0)?
                    .as_i32(o)?
                    .wrapping_mul(v(self, 1)?.as_i32(o)?)
                    .wrapping_add(v(self, 2)?.as_i32(o)?),
            ),
            IDiv => {
                let (a, b) = (v(self, 0)?.as_i32(o)?, v(self, 1)?.as_i32(o)?);
                Value::I32(if b == 0 { 0 } else { a.wrapping_div(b) })
            }
            IRem => {
                let (a, b) = (v(self, 0)?.as_i32(o)?, v(self, 1)?.as_i32(o)?);
                Value::I32(if b == 0 { 0 } else { a.wrapping_rem(b) })
            }
            Shl => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_shl(v(self, 1)?.as_i32(o)? as u32)),
            Shr => Value::I32(v(self, 0)?.as_i32(o)?.wrapping_shr(v(self, 1)?.as_i32(o)? as u32)),
            And => Value::I32(v(self, 0)?.as_i32(o)? & v(self, 1)?.as_i32(o)?),
            Or => Value::I32(v(self, 0)?.as_i32(o)? | v(self, 1)?.as_i32(o)?),
            Xor => Value::I32(v(self, 0)?.as_i32(o)? ^ v(self, 1)?.as_i32(o)?),
            IMin => Value::I32(v(self, 0)?.as_i32(o)?.min(v(self, 1)?.as_i32(o)?)),
            IMax => Value::I32(v(self, 0)?.as_i32(o)?.max(v(self, 1)?.as_i32(o)?)),
            Mov => v(self, 0)?,
            F2I => Value::I32(v(self, 0)?.as_f32(o)? as i32),
            I2F => Value::F32(v(self, 0)?.as_i32(o)? as f32),
            SetLt | SetLe | SetEq | SetNe => {
                let (a, b) = (v(self, 0)?, v(self, 1)?);
                let ord = match (a, b) {
                    (Value::F32(x), Value::F32(y)) => x.partial_cmp(&y),
                    (Value::I32(x), Value::I32(y)) => Some(x.cmp(&y)),
                    _ => return Err(SimError::TypeMismatch { op: o.mnemonic() }),
                };
                let t = match (o, ord) {
                    (SetLt, Some(ord)) => ord.is_lt(),
                    (SetLe, Some(ord)) => ord.is_le(),
                    (SetEq, Some(ord)) => ord.is_eq(),
                    (SetNe, Some(ord)) => ord.is_ne(),
                    (SetNe, None) => true, // NaN != anything
                    (_, None) => false,
                    _ => unreachable!("outer match restricts the op"),
                };
                Value::I32(i32::from(t))
            }
            Selp => {
                let c = v(self, 2)?.as_i32(o)?;
                if c != 0 {
                    v(self, 0)?
                } else {
                    v(self, 1)?
                }
            }
            Ld(space) => {
                let addr = self.addr_of(ti, op, params)?;
                self.load(ti, space, addr, mem, shared, race, lane)?
            }
            St(space) => {
                let addr = self.addr_of(ti, op, params)?;
                let value = self.slot_value(base, ti, op.srcs[1], params)?;
                self.store(ti, space, addr, value, mem, shared, o, race, lane)?;
                return Ok(());
            }
        };
        debug_assert!(op.dst != NO_REG, "non-store ops have destinations");
        self.regs[base + op.dst as usize] = result;
        Ok(())
    }
}

/// Execute `prog` over the whole `launch` grid against `mem`.
///
/// `params` are the kernel's launch-time scalar parameters (word
/// addresses and sizes), indexed by `Operand::Param`.
///
/// Decodes `prog` first; callers interpreting one program many times
/// should decode once with [`crate::decode::decode`] and call
/// [`run_decoded`].
///
/// # Errors
///
/// Propagates any [`SimError`] raised by a thread: out-of-bounds
/// accesses, type mismatches, missing parameters, or divergent barriers.
pub fn run_kernel(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_decoded(&decode(prog), launch, params, mem)
}

/// [`run_kernel`] with an explicit per-block step budget.
///
/// # Errors
///
/// As [`run_kernel`], plus [`SimError::StepBudgetExhausted`] when a block
/// exceeds `budget` interpreted steps.
pub fn run_kernel_with_budget(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    budget: u64,
) -> Result<(), SimError> {
    run_decoded_with_budget(&decode(prog), launch, params, mem, budget)
}

/// [`run_kernel`] with the dynamic shared-memory race oracle enabled.
///
/// In addition to executing the kernel, every shared-memory access is
/// recorded in a per-block, per-barrier-segment access set; the first
/// conflict between distinct threads (read/write, or write/write with
/// different bit patterns) aborts the run. This is the ground truth the
/// static detector in `gpu_ir::analysis::races` is validated against.
///
/// # Errors
///
/// As [`run_kernel`], plus [`SimError::SharedRace`] on the first
/// shared-memory conflict.
pub fn run_kernel_checked(
    prog: &LinearProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_decoded_checked(&decode(prog), launch, params, mem)
}

/// [`run_kernel`] over an already-decoded program.
///
/// # Errors
///
/// As [`run_kernel`].
pub fn run_decoded(
    prog: &DecodedProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_decoded_with_budget(prog, launch, params, mem, DEFAULT_STEP_BUDGET)
}

/// [`run_kernel_with_budget`] over an already-decoded program.
///
/// # Errors
///
/// As [`run_kernel_with_budget`].
pub fn run_decoded_with_budget(
    prog: &DecodedProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    budget: u64,
) -> Result<(), SimError> {
    run_grid(prog, launch, params, mem, budget, false)
}

/// [`run_kernel_checked`] over an already-decoded program.
///
/// # Errors
///
/// As [`run_kernel_checked`].
pub fn run_decoded_checked(
    prog: &DecodedProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
) -> Result<(), SimError> {
    run_grid(prog, launch, params, mem, DEFAULT_STEP_BUDGET, true)
}

fn run_grid(
    prog: &DecodedProgram,
    launch: &Launch,
    params: &[i32],
    mem: &mut DeviceMemory,
    budget: u64,
    check_races: bool,
) -> Result<(), SimError> {
    if launch.grid.count() == 0 || launch.block.count() == 0 {
        return Err(SimError::EmptyLaunch);
    }
    let (gx, gy) = (launch.grid.x, launch.grid.y);
    let (bx, by) = (launch.block.x, launch.block.y);
    let nt = (bx * by) as usize;

    let mut threads = BlockThreads::new(nt, prog.num_vregs(), prog.arena.max_loop_depth);
    let mut shared = vec![0.0f32; prog.smem_words() as usize];
    let mut tracker = check_races.then(|| RaceTracker::new(prog.smem_words() as usize));
    let mut stops: Vec<Stop> = Vec::with_capacity(nt);

    for cy in 0..gy {
        for cx in 0..gx {
            threads.reset((cx, cy), (bx, by), (gx, gy));
            shared.fill(0.0);
            if let Some(t) = tracker.as_mut() {
                // Epoch bump == fresh tracker: stale records from the
                // previous block are dead on arrival.
                t.advance();
            }

            let mut block_budget = budget;
            loop {
                stops.clear();
                for ti in 0..nt {
                    stops.push(threads.run_segment(
                        ti,
                        prog,
                        params,
                        mem,
                        &mut shared,
                        &mut block_budget,
                        tracker.as_mut(),
                        ti as u32,
                    )?);
                }
                // Non-empty: zero-extent launches were rejected above.
                let first = stops[0];
                if stops.iter().any(|s| *s != first) {
                    return Err(SimError::BarrierDivergence);
                }
                if first == Stop::Done {
                    break;
                }
                if let Some(t) = tracker.as_mut() {
                    t.advance();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};

    fn launch_1d(blocks: u32, threads: u32) -> Launch {
        Launch::new(Dim::new_1d(blocks), Dim::new_1d(threads))
    }

    #[test]
    fn global_copy_across_blocks() {
        // out[g] = in[g] for 4 blocks of 8 threads.
        let mut b = KernelBuilder::new("copy");
        let src = b.param(0);
        let dst = b.param(1);
        let tid = b.read_special(Special::TidX);
        let cta = b.read_special(Special::CtaIdX);
        let ntid = b.read_special(Special::NTidX);
        let g = b.imad(cta, ntid, tid);
        let sa = b.iadd(src, g);
        let da = b.iadd(dst, g);
        let v = b.ld_global(sa, 0);
        b.st_global(da, 0, v);
        let prog = linearize(&b.finish());

        let mut mem = DeviceMemory::new(64);
        for i in 0..32 {
            mem.global[i] = (i * i) as f32;
        }
        run_kernel(&prog, &launch_1d(4, 8), &[0, 32], &mut mem).unwrap();
        for i in 0..32 {
            assert_eq!(mem.global[32 + i], (i * i) as f32);
        }
    }

    use gpu_ir::types::Special;

    #[test]
    fn shared_memory_reversal_with_barrier() {
        // Each thread writes shared[tid] = in[tid]; after the barrier
        // reads shared[N-1-tid].
        let n = 16;
        let mut b = KernelBuilder::new("rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        b.sync();
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        let prog = linearize(&b.finish());

        let mut mem = DeviceMemory::new(2 * n as usize);
        for i in 0..n as usize {
            mem.global[i] = i as f32;
        }
        run_kernel(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        for i in 0..n as usize {
            assert_eq!(mem.global[n as usize + i], (n as usize - 1 - i) as f32);
        }
    }

    #[test]
    fn loop_counter_values_are_sequential() {
        // out[i] = i via a loop writing global[counter].
        let mut b = KernelBuilder::new("iota");
        let dst = b.param(0);
        b.for_loop(10, |b, i| {
            let addr = b.iadd(dst, i);
            let fi = b.i2f(i);
            b.st_global(addr, 0, fi);
        });
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(10);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        let got: Vec<f32> = mem.global.clone();
        let want: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_loops_execute_product_of_trips() {
        let mut b = KernelBuilder::new("acc");
        let dst = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(7, |b| {
            b.repeat(5, |b| {
                b.fmad_acc(1.0f32, 1.0f32, acc);
            });
        });
        b.st_global(dst, 0, acc);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 35.0);
    }

    #[test]
    fn zero_trip_loop_skips_body() {
        let mut b = KernelBuilder::new("z");
        let dst = b.param(0);
        b.repeat(0, |b| {
            b.st_global(0i32, 0, 99.0f32);
        });
        b.st_global(dst, 0, 1.0f32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 1.0);
    }

    #[test]
    fn local_memory_spill_roundtrip() {
        let mut b = KernelBuilder::new("spill");
        let dst = b.param(0);
        let x = b.mov(42.5f32);
        b.st_local(0i32, 3, x);
        let y = b.ld_local(0i32, 3);
        b.st_global(dst, 0, y);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 42.5);
    }

    #[test]
    fn constant_memory_reads() {
        let mut b = KernelBuilder::new("c");
        let dst = b.param(0);
        let v = b.ld_const(2i32, 0);
        b.st_global(dst, 0, v);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::with_constant(1, vec![1.0, 2.0, 3.0]);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 3.0);
    }

    #[test]
    fn out_of_bounds_global_is_reported() {
        let mut b = KernelBuilder::new("oob");
        b.ld_global(100i32, 0);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(4);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { space: "global", .. }));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut b = KernelBuilder::new("tm");
        let x = b.mov(1i32);
        b.fadd(x, 1.0f32); // float add on integer register
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_param_is_reported() {
        let mut b = KernelBuilder::new("mp");
        let p = b.param(5);
        b.st_global(p, 0, 0.0f32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 1), &[0, 1], &mut mem).unwrap_err();
        assert_eq!(err, SimError::MissingParam { index: 5 });
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = KernelBuilder::new("long");
        b.repeat(1000, |b| {
            b.mov(0i32);
        });
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel_with_budget(&prog, &launch_1d(1, 1), &[], &mut mem, 100).unwrap_err();
        assert_eq!(err, SimError::StepBudgetExhausted);
    }

    #[test]
    fn predicates_and_select() {
        let mut b = KernelBuilder::new("sel");
        let dst = b.param(0);
        let p = b.set_lt(3i32, 5i32);
        let v = b.selp(10.0f32, 20.0f32, p);
        b.st_global(dst, 0, v);
        let q = b.set_lt(5i32, 3i32);
        let w = b.selp(10.0f32, 20.0f32, q);
        b.st_global(dst, 1, w);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global, vec![10.0, 20.0]);
    }

    #[test]
    fn integer_division_by_zero_yields_zero() {
        let mut b = KernelBuilder::new("div0");
        let dst = b.param(0);
        let d = b.idiv(7i32, 0i32);
        let r = b.irem(7i32, 0i32);
        let s = b.iadd(d, r);
        let f = b.i2f(s);
        b.st_global(dst, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 0.0);
    }

    #[test]
    fn two_dimensional_geometry() {
        // out[ty*4+tx] = ctaid.y*1000 + tid.y*4 + tid.x over a 4x2 block.
        let mut b = KernelBuilder::new("geom");
        let dst = b.param(0);
        let tx = b.read_special(Special::TidX);
        let ty = b.read_special(Special::TidY);
        let idx = b.imad(ty, 4i32, tx);
        let addr = b.iadd(dst, idx);
        let f = b.i2f(idx);
        b.st_global(addr, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(8);
        let launch = Launch::new(Dim::new_1d(1), Dim::new_2d(4, 2));
        run_kernel(&prog, &launch, &[0], &mut mem).unwrap();
        let want: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(mem.global, want);
    }

    #[test]
    fn empty_block_is_an_error_not_a_panic() {
        let mut b = KernelBuilder::new("empty");
        b.mov(0i32);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel(&prog, &launch_1d(1, 0), &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
        let err = run_kernel(&prog, &launch_1d(0, 4), &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
        let launch = Launch::new(Dim::new_2d(1, 0), Dim::new_1d(4));
        let err = run_kernel(&prog, &launch, &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::EmptyLaunch);
    }

    /// Reversal kernel *without* the barrier: thread t writes shared[t]
    /// and reads shared[N-1-t] — a read/write race the sequential
    /// interpreter silently masks.
    fn racy_reversal(n: u32) -> LinearProgram {
        let mut b = KernelBuilder::new("racy_rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        // missing b.sync()
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        linearize(&b.finish())
    }

    #[test]
    fn race_oracle_flags_read_write_conflict() {
        let n = 16u32;
        let prog = racy_reversal(n);
        let mut mem = DeviceMemory::new(2 * n as usize);
        // The plain interpreter accepts the racy kernel (the soundness
        // hole the oracle closes)...
        run_kernel(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        // ...while the oracle reports the conflict.
        let err =
            run_kernel_checked(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::SharedRace { kind: "read/write", .. }), "got {err:?}");
    }

    #[test]
    fn race_oracle_accepts_barrier_separated_accesses() {
        // The well-synchronized reversal from
        // `shared_memory_reversal_with_barrier`.
        let n = 16u32;
        let mut b = KernelBuilder::new("rev");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        b.sync();
        let ni = b.mov((n as i32) - 1);
        let rev = b.isub(ni, tid);
        let rv = b.ld_shared(rev, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, rv);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2 * n as usize);
        for i in 0..n as usize {
            mem.global[i] = i as f32;
        }
        run_kernel_checked(&prog, &launch_1d(1, n), &[0, n as i32], &mut mem).unwrap();
        for i in 0..n as usize {
            assert_eq!(mem.global[n as usize + i], (n as usize - 1 - i) as f32);
        }
    }

    #[test]
    fn race_oracle_flags_write_write_of_distinct_values() {
        // Every thread writes its own tid to shared word 0.
        let mut b = KernelBuilder::new("ww");
        b.alloc_shared(4);
        let tid = b.read_special(Special::TidX);
        let f = b.i2f(tid);
        b.st_shared(0i32, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        let err = run_kernel_checked(&prog, &launch_1d(1, 4), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::SharedRace { kind: "write/write", addr: 0, .. }));
    }

    #[test]
    fn race_oracle_tolerates_same_value_write_write() {
        // Every thread writes the same constant to shared word 0 — the
        // final value is interleaving-independent, so this is benign
        // (SAD's clamped staging loop depends on this exemption).
        let mut b = KernelBuilder::new("ww_benign");
        let dst = b.param(0);
        b.alloc_shared(4);
        b.st_shared(0i32, 0, 7.5f32);
        b.sync();
        let v = b.ld_shared(0i32, 0);
        let tid = b.read_special(Special::TidX);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, v);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(4);
        run_kernel_checked(&prog, &launch_1d(1, 4), &[0], &mut mem).unwrap();
        assert_eq!(mem.global, vec![7.5; 4]);
    }

    #[test]
    fn race_oracle_resets_at_barriers() {
        // Thread t writes shared[t] in segment 1 and shared[(t+1)%n] in
        // segment 2: same words touched by different threads, but never
        // within one segment.
        let n = 8u32;
        let mut b = KernelBuilder::new("rotate");
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let f = b.i2f(tid);
        b.st_shared(tid, 0, f);
        b.sync();
        let shifted = b.iadd(tid, 1i32);
        let wrapped = b.irem(shifted, n as i32);
        b.st_shared(wrapped, 0, f);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(1);
        run_kernel_checked(&prog, &launch_1d(1, n), &[], &mut mem).unwrap();
    }

    #[test]
    fn sfu_ops_compute() {
        let mut b = KernelBuilder::new("sfu");
        let dst = b.param(0);
        let r = b.rsqrt(4.0f32);
        b.st_global(dst, 0, r);
        let c = b.cos(0.0f32);
        b.st_global(dst, 1, c);
        let prog = linearize(&b.finish());
        let mut mem = DeviceMemory::new(2);
        run_kernel(&prog, &launch_1d(1, 1), &[0], &mut mem).unwrap();
        assert!((mem.global[0] - 0.5).abs() < 1e-6);
        assert!((mem.global[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn decoded_run_matches_legacy_run() {
        // A kernel touching every execution feature: geometry, shared
        // memory with a barrier, nested counted loops, predication,
        // and local spill.
        let n = 8u32;
        let mut b = KernelBuilder::new("all");
        let src = b.param(0);
        let dst = b.param(1);
        b.alloc_shared(n * 4);
        let tid = b.read_special(Special::TidX);
        let sa = b.iadd(src, tid);
        let v = b.ld_global(sa, 0);
        b.st_shared(tid, 0, v);
        b.sync();
        let acc = b.mov(0.0f32);
        b.for_loop(4, |b, i| {
            let w = b.irem(i, n as i32);
            let sv = b.ld_shared(w, 0);
            b.fmad_acc(sv, 0.5f32, acc);
        });
        let p = b.set_lt(tid, 4i32);
        let sel = b.selp(acc, 0.0f32, p);
        b.st_local(0i32, 0, sel);
        let back = b.ld_local(0i32, 0);
        let da = b.iadd(dst, tid);
        b.st_global(da, 0, back);
        let prog = linearize(&b.finish());

        let launch = launch_1d(2, n);
        let params = [0, n as i32];
        let mut mem_new = DeviceMemory::new(2 * n as usize);
        let mut mem_old = DeviceMemory::new(2 * n as usize);
        for i in 0..n as usize {
            mem_new.global[i] = (i * 3) as f32;
            mem_old.global[i] = (i * 3) as f32;
        }
        run_kernel(&prog, &launch, &params, &mut mem_new).unwrap();
        crate::legacy::interp::run_kernel(&prog, &launch, &params, &mut mem_old).unwrap();
        assert_eq!(mem_new, mem_old);
    }
}
