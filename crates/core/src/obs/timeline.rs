//! Offline trace analysis: parse a `--trace-out` JSONL file back into
//! records, reconstruct the run's timeline (phase wall spans, per-worker
//! busy/idle), and render the human-readable summary behind
//! `gpu-autotune trace report`.
//!
//! Everything here works on [`Rec`] — an owned mirror of [`Event`]
//! (whose `name` is a `&'static str` and so cannot be rebuilt from a
//! parsed file). A live [`Trace`] converts losslessly via
//! [`Rec::from_event`], so the same analysis runs in-process in tests
//! and offline on exported files.
//!
//! [`Trace`]: super::sink::Trace

use super::convergence::ConvergenceCurve;
use super::event::{Event, TRACE_SCHEMA};
use super::json::{self, Json};

/// One parsed trace record: an owned [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub struct Rec {
    /// Microseconds since the sink's origin.
    pub ts_us: u64,
    /// Small per-thread tag.
    pub thread: u64,
    /// `"search"` or `"runtime"`.
    pub scope: String,
    /// `"begin"`, `"end"`, `"point"`, or `"counter"`.
    pub kind: String,
    /// Dotted event name.
    pub name: String,
    /// Structured payload.
    pub fields: Json,
}

impl Rec {
    /// Mirror a live event.
    pub fn from_event(e: &Event) -> Self {
        Self {
            ts_us: e.ts_us,
            thread: e.thread,
            scope: e.scope.as_str().to_string(),
            kind: e.kind.as_str().to_string(),
            name: e.name.to_string(),
            fields: Json::Obj(
                e.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            ),
        }
    }

    /// Parse one JSONL record object.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record: missing `{k}`"))
        };
        Ok(Self {
            ts_us: j.get("ts_us").and_then(Json::as_u64).ok_or("record: missing `ts_us`")?,
            thread: j.get("thread").and_then(Json::as_u64).ok_or("record: missing `thread`")?,
            scope: s("scope")?,
            kind: s("kind")?,
            name: s("name")?,
            fields: j.get("fields").cloned().unwrap_or(Json::Obj(Vec::new())),
        })
    }

    /// A `u64` payload field.
    pub fn field_u64(&self, k: &str) -> Option<u64> {
        self.fields.get(k).and_then(Json::as_u64)
    }

    /// An `f64` payload field.
    pub fn field_f64(&self, k: &str) -> Option<f64> {
        self.fields.get(k).and_then(Json::as_f64)
    }

    /// A string payload field.
    pub fn field_str(&self, k: &str) -> Option<&str> {
        self.fields.get(k).and_then(Json::as_str)
    }
}

/// Parse a JSONL trace. Records carrying an unknown `schema` are
/// rejected; records without one (written before trace schemas existed)
/// are accepted.
pub fn parse_jsonl(text: &str) -> Result<Vec<Rec>, String> {
    let mut recs = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = json::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        match j.get("schema") {
            None => {}
            Some(s) => {
                let s = s.as_u64().ok_or_else(|| format!("line {}: bad `schema`", n + 1))?;
                if s != TRACE_SCHEMA {
                    return Err(format!(
                        "line {}: unsupported trace schema {s} (this tool reads schema {TRACE_SCHEMA})",
                        n + 1
                    ));
                }
            }
        }
        recs.push(Rec::from_json(&j).map_err(|e| format!("line {}: {e}", n + 1))?);
    }
    Ok(recs)
}

/// Aggregated wall time of one span name (e.g. `phase.timing`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Span name.
    pub name: String,
    /// Completed begin/end pairs.
    pub spans: u64,
    /// Summed wall time, µs.
    pub wall_us: u64,
}

/// One worker thread's busy accounting, from `pool.item` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLane {
    /// Thread tag.
    pub thread: u64,
    /// Items executed.
    pub items: u64,
    /// Summed item wall time, µs.
    pub busy_us: u64,
}

/// The run's reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Wall span of the whole trace (first to last timestamp), µs.
    pub span_us: u64,
    /// Aggregated spans in first-begin order (outermost first).
    pub phases: Vec<PhaseSpan>,
    /// Worker lanes ordered by thread tag.
    pub workers: Vec<WorkerLane>,
}

impl Timeline {
    /// Reconstruct phase spans and worker lanes from parsed records.
    /// `begin`/`end` records pair up per name (nested re-entry folds
    /// into one aggregate); `pool.item` records, stamped at item end
    /// with their wall time, populate the worker lanes.
    pub fn from_records(recs: &[Rec]) -> Self {
        let lo = recs.iter().map(|r| r.ts_us).min().unwrap_or(0);
        let hi = recs.iter().map(|r| r.ts_us).max().unwrap_or(0);
        let mut phases: Vec<(String, Vec<u64>, u64, u64)> = Vec::new(); // name, open stack, spans, wall
        let mut workers: Vec<WorkerLane> = Vec::new();
        for r in recs {
            match r.kind.as_str() {
                "begin" => {
                    match phases.iter_mut().find(|(n, ..)| *n == r.name) {
                        Some((_, open, ..)) => open.push(r.ts_us),
                        None => phases.push((r.name.clone(), vec![r.ts_us], 0, 0)),
                    };
                }
                "end" => {
                    if let Some((_, open, spans, wall)) =
                        phases.iter_mut().find(|(n, ..)| *n == r.name)
                    {
                        if let Some(begin) = open.pop() {
                            *spans += 1;
                            *wall += r.ts_us.saturating_sub(begin);
                        }
                    }
                }
                _ if r.name == "pool.item" => {
                    let wall = r.field_u64("wall_us").unwrap_or(0);
                    match workers.iter_mut().find(|w| w.thread == r.thread) {
                        Some(w) => {
                            w.items += 1;
                            w.busy_us += wall;
                        }
                        None => {
                            workers.push(WorkerLane { thread: r.thread, items: 1, busy_us: wall })
                        }
                    }
                }
                _ => {}
            }
        }
        workers.sort_by_key(|w| w.thread);
        Self {
            span_us: hi - lo,
            phases: phases
                .into_iter()
                .map(|(name, _, spans, wall_us)| PhaseSpan { name, spans, wall_us })
                .collect(),
            workers,
        }
    }

    /// Fraction of `workers × span` spent busy, clamped to `[0, 1]`.
    /// Zero without workers or span.
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.span_us == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_us).sum();
        (busy as f64 / (self.span_us * self.workers.len() as u64) as f64).min(1.0)
    }
}

/// Everything `trace report` prints, as data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Total records.
    pub events: u64,
    /// Strategy named by the `search` begin record.
    pub strategy: Option<String>,
    /// Space size named by the `search` begin record.
    pub space: Option<u64>,
    /// Best time from the last `search` end record.
    pub best_time_ms: Option<f64>,
    /// Timed candidates (`sim.done` records).
    pub timed: u64,
    /// Convergence curve from the last `engine.metrics` counter.
    pub convergence: ConvergenceCurve,
    /// Reconstructed timeline.
    pub timeline: Timeline,
    /// Top-k slowest timed candidates, `(candidate, time_ms)`, slowest
    /// first.
    pub slowest: Vec<(u64, f64)>,
    /// Quarantine counts by error kind, most frequent first.
    pub quarantine_by_kind: Vec<(String, u64)>,
    /// Retry rounds observed.
    pub retry_rounds: u64,
    /// Evaluations re-attempted across those rounds.
    pub retried: u64,
    /// Memo-cache hits / misses.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
    /// Persistent-store hits.
    pub store_hits: u64,
    /// Fresh program decodes (`decode.done` records).
    pub decodes: u64,
    /// Decoded ops across those decodes.
    pub decode_ops: u64,
    /// Flat arena bytes across those decodes.
    pub decode_arena_bytes: u64,
}

/// Digest a parsed trace into a [`TraceSummary`] keeping the `top_k`
/// slowest candidates.
pub fn summarize(recs: &[Rec], top_k: usize) -> TraceSummary {
    let mut s = TraceSummary {
        events: recs.len() as u64,
        timeline: Timeline::from_records(recs),
        ..Default::default()
    };
    let mut timed: Vec<(u64, f64)> = Vec::new();
    for r in recs {
        match (r.kind.as_str(), r.name.as_str()) {
            ("begin", "search") => {
                s.strategy = r.field_str("strategy").map(str::to_string);
                s.space = r.field_u64("space");
            }
            ("end", "search") => s.best_time_ms = r.field_f64("best_time_ms"),
            ("point", "sim.done") => {
                s.timed += 1;
                if let (Some(c), Some(t)) = (r.field_u64("candidate"), r.field_f64("time_ms")) {
                    timed.push((c, t));
                }
            }
            ("point", "quarantine") => {
                let kind = r.field_str("kind").unwrap_or("unknown").to_string();
                match s.quarantine_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => *n += 1,
                    None => s.quarantine_by_kind.push((kind, 1)),
                }
            }
            ("point", "retry.round") => {
                s.retry_rounds += 1;
                s.retried += r.field_u64("count").unwrap_or(0);
            }
            ("point", "cache.hit") => s.cache_hits += 1,
            ("point", "cache.miss") => s.cache_misses += 1,
            ("point", "store.hit") => s.store_hits += 1,
            ("point", "decode.done") => {
                s.decodes += 1;
                s.decode_ops += r.field_u64("ops").unwrap_or(0);
                s.decode_arena_bytes += r.field_u64("arena_bytes").unwrap_or(0);
            }
            ("counter", "engine.metrics") => {
                if let Ok(c) = ConvergenceCurve::from_json_opt(r.fields.get("convergence")) {
                    s.convergence = c;
                }
            }
            _ => {}
        }
    }
    // Slowest first; candidate index breaks ties deterministically.
    timed.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    timed.truncate(top_k);
    s.slowest = timed;
    s.quarantine_by_kind.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    s
}

/// Render a [`TraceSummary`] as the `trace report` text.
pub fn format_summary(s: &TraceSummary) -> String {
    use crate::report::{fmt_ms, fmt_us, table_aligned};
    let mut out = String::new();
    let strategy = s.strategy.as_deref().unwrap_or("unknown");
    out.push_str(&format!(
        "search: {strategy}, space {}, {} timed, best {}\n",
        s.space.map(|n| n.to_string()).unwrap_or_else(|| "?".into()),
        s.timed,
        s.best_time_ms.map(fmt_ms).unwrap_or_else(|| "-".into()),
    ));
    out.push_str(&format!("trace: {} events spanning {}\n", s.events, fmt_us(s.timeline.span_us)));

    if !s.convergence.is_empty() {
        out.push_str("\nconvergence\n");
        let mut rows = vec![vec![
            "sims".to_string(),
            "unique".to_string(),
            "best".to_string(),
            "pruned".to_string(),
        ]];
        for p in &s.convergence.samples {
            rows.push(vec![
                p.sims.to_string(),
                p.unique_sims.to_string(),
                fmt_ms(p.best_time_ms),
                p.bound_pruned_points.to_string(),
            ]);
        }
        out.push_str(&table_aligned(&rows, &[true, true, true, true]));
        if let (Some(n), Some(u)) =
            (s.convergence.sims_to_optimum(), s.convergence.unique_to_optimum())
        {
            out.push_str(&format!("optimum reached after {n} sims ({u} unique)\n"));
        }
    }

    if !s.timeline.phases.is_empty() {
        out.push_str("\nphases\n");
        let mut rows = vec![vec![
            "phase".to_string(),
            "spans".to_string(),
            "wall".to_string(),
            "share".to_string(),
        ]];
        for p in &s.timeline.phases {
            let share = if s.timeline.span_us == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * p.wall_us as f64 / s.timeline.span_us as f64)
            };
            rows.push(vec![p.name.clone(), p.spans.to_string(), fmt_us(p.wall_us), share]);
        }
        out.push_str(&table_aligned(&rows, &[false, true, true, true]));
    }

    if !s.timeline.workers.is_empty() {
        out.push_str("\nworkers\n");
        let mut rows = vec![vec![
            "thread".to_string(),
            "items".to_string(),
            "busy".to_string(),
            "utilization".to_string(),
        ]];
        for w in &s.timeline.workers {
            let util = if s.timeline.span_us == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * (w.busy_us as f64 / s.timeline.span_us as f64).min(1.0))
            };
            rows.push(vec![w.thread.to_string(), w.items.to_string(), fmt_us(w.busy_us), util]);
        }
        out.push_str(&table_aligned(&rows, &[true, true, true, true]));
        out.push_str(&format!(
            "overall: {} worker threads, {:.1}% utilized over the trace span\n",
            s.timeline.workers.len(),
            100.0 * s.timeline.utilization()
        ));
    }

    if !s.slowest.is_empty() {
        out.push_str("\nslowest candidates\n");
        let mut rows = vec![vec!["candidate".to_string(), "time".to_string()]];
        for (c, t) in &s.slowest {
            rows.push(vec![c.to_string(), fmt_ms(*t)]);
        }
        out.push_str(&table_aligned(&rows, &[true, true]));
    }

    out.push_str("\nfailures and reuse\n");
    if s.quarantine_by_kind.is_empty() {
        out.push_str("quarantined: none\n");
    } else {
        let total: u64 = s.quarantine_by_kind.iter().map(|(_, n)| n).sum();
        let kinds: Vec<String> =
            s.quarantine_by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect();
        out.push_str(&format!("quarantined: {total} ({})\n", kinds.join(", ")));
    }
    out.push_str(&format!("retry rounds: {} ({} re-attempts)\n", s.retry_rounds, s.retried));
    out.push_str(&format!(
        "cache: {} hits, {} misses, {} store hits\n",
        s.cache_hits, s.cache_misses, s.store_hits
    ));
    if s.decodes > 0 {
        out.push_str(&format!(
            "decode: {} arenas ({} ops, {} flat bytes)\n",
            s.decodes, s.decode_ops, s.decode_arena_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{EventKind, EventSink};

    #[test]
    fn records_mirror_live_events_and_survive_jsonl() {
        let sink = EventSink::new();
        sink.search(EventKind::Begin, "search", vec![("strategy", Json::from("exhaustive"))]);
        sink.runtime(EventKind::Point, "pool.item", vec![("wall_us", Json::from(5u64))]);
        let trace = sink.drain();
        let live: Vec<Rec> = trace.events.iter().map(Rec::from_event).collect();
        let parsed = parse_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(live, parsed);
        assert_eq!(parsed[0].field_str("strategy"), Some("exhaustive"));
    }

    #[test]
    fn unknown_schema_is_rejected_but_legacy_lines_pass() {
        let good = r#"{"schema":1,"seq":0,"ts_us":1,"thread":0,"scope":"search","kind":"point","name":"x","fields":{}}"#;
        let legacy = r#"{"seq":0,"ts_us":1,"thread":0,"scope":"search","kind":"point","name":"x","fields":{}}"#;
        let bad = r#"{"schema":99,"seq":0,"ts_us":1,"thread":0,"scope":"search","kind":"point","name":"x","fields":{}}"#;
        assert_eq!(parse_jsonl(good).unwrap().len(), 1);
        assert_eq!(parse_jsonl(legacy).unwrap().len(), 1);
        let err = parse_jsonl(bad).unwrap_err();
        assert!(err.contains("unsupported trace schema 99"), "{err}");
    }

    #[test]
    fn timeline_pairs_spans_and_lanes_workers() {
        let rec = |ts, thread, kind: &str, name: &str, fields: Json| Rec {
            ts_us: ts,
            thread,
            scope: "search".into(),
            kind: kind.into(),
            name: name.into(),
            fields,
        };
        let recs = vec![
            rec(0, 0, "begin", "search", Json::Obj(Vec::new())),
            rec(10, 0, "begin", "phase.timing", Json::Obj(Vec::new())),
            rec(40, 1, "point", "pool.item", Json::obj([("wall_us", Json::from(25u64))])),
            rec(50, 2, "point", "pool.item", Json::obj([("wall_us", Json::from(30u64))])),
            rec(60, 1, "point", "pool.item", Json::obj([("wall_us", Json::from(10u64))])),
            rec(90, 0, "end", "phase.timing", Json::Obj(Vec::new())),
            rec(100, 0, "end", "search", Json::Obj(Vec::new())),
        ];
        let t = Timeline::from_records(&recs);
        assert_eq!(t.span_us, 100);
        assert_eq!(
            t.phases,
            vec![
                PhaseSpan { name: "search".into(), spans: 1, wall_us: 100 },
                PhaseSpan { name: "phase.timing".into(), spans: 1, wall_us: 80 },
            ]
        );
        assert_eq!(
            t.workers,
            vec![
                WorkerLane { thread: 1, items: 2, busy_us: 35 },
                WorkerLane { thread: 2, items: 1, busy_us: 30 },
            ]
        );
        // 65 busy µs over 2 workers × 100 µs.
        assert!((t.utilization() - 0.325).abs() < 1e-12);
        assert_eq!(Timeline::from_records(&[]).utilization(), 0.0);
    }
}
