//! Chrome `trace_event` export.
//!
//! [`chrome_trace`] converts a drained [`Trace`] into the JSON object
//! format Perfetto and `chrome://tracing` load directly: span
//! begin/end events map to `B`/`E` duration events, counters to `C`
//! events, `pool.item` records (stamped at item end with their wall
//! time) to complete `X` events so each worker's busy timeline renders
//! as solid blocks on its own track, and remaining points to `i`
//! instants. Thread tags become `tid`s with name metadata, so the
//! orchestrator and every pool worker get separate tracks.

use super::event::{Event, EventKind, Scope};
use super::json::Json;
use super::sink::Trace;

fn args_obj(e: &Event, numeric_only: bool) -> Json {
    Json::Obj(
        e.fields
            .iter()
            .filter(|(_, v)| {
                !numeric_only
                    || matches!(v, Json::Int(_) | Json::Uint(_) | Json::Float(_) | Json::Bool(_))
            })
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    )
}

fn base(e: &Event, ph: &str, ts_us: u64) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::from(e.name)),
        ("cat".to_string(), Json::from(e.scope.as_str())),
        ("ph".to_string(), Json::from(ph)),
        ("ts".to_string(), Json::from(ts_us)),
        ("pid".to_string(), Json::from(1u64)),
        ("tid".to_string(), Json::from(e.thread)),
    ]
}

/// Convert a drained trace to a Chrome `trace_event` document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Track names: the orchestrator is the thread that emits
    // search-scope events; every other tid is a pool worker.
    let orchestrator = trace.events.iter().find(|e| e.scope == Scope::Search).map(|e| e.thread);
    let mut tids: Vec<u64> = trace.events.iter().map(|e| e.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    events.push(Json::obj([
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(1u64)),
        ("args", Json::obj([("name", Json::from("gpu-autotune"))])),
    ]));
    for tid in tids {
        let label = if Some(tid) == orchestrator {
            "orchestrator".to_string()
        } else {
            format!("worker {tid}")
        };
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(tid)),
            ("args", Json::obj([("name", Json::from(label))])),
        ]));
    }

    for e in &trace.events {
        let mut pairs = match e.kind {
            EventKind::Begin => base(e, "B", e.ts_us),
            EventKind::End => base(e, "E", e.ts_us),
            // Counter args must be numeric for the tracks to plot.
            EventKind::Counter => base(e, "C", e.ts_us),
            EventKind::Point if e.name == "pool.item" => {
                // A pool item is stamped at its end with its wall time:
                // shift `ts` back and emit a complete event so the
                // worker's busy block renders with real duration.
                let wall = e
                    .fields
                    .iter()
                    .find(|(k, _)| *k == "wall_us")
                    .and_then(|(_, v)| v.as_u64())
                    .unwrap_or(0);
                let mut pairs = base(e, "X", e.ts_us.saturating_sub(wall));
                pairs.push(("dur".to_string(), Json::from(wall)));
                pairs
            }
            EventKind::Point => {
                let mut pairs = base(e, "i", e.ts_us);
                pairs.push(("s".to_string(), Json::from("t")));
                pairs
            }
        };
        pairs.push(("args".to_string(), args_obj(e, e.kind == EventKind::Counter)));
        events.push(Json::Obj(pairs));
    }

    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::from("ms"))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::EventSink;

    #[test]
    fn spans_counters_items_and_instants_map_to_chrome_phases() {
        let sink = EventSink::new();
        sink.search(EventKind::Begin, "phase.timing", vec![("selected", Json::from(2u64))]);
        sink.search(EventKind::Point, "sim.done", vec![("time_ms", Json::from(4.5))]);
        sink.runtime(
            EventKind::Point,
            "pool.item",
            vec![("index", Json::from(0u64)), ("wall_us", Json::from(7u64))],
        );
        sink.search(
            EventKind::Counter,
            "engine.metrics",
            vec![("timed", Json::from(2u64)), ("convergence", Json::Arr(Vec::new()))],
        );
        sink.search(EventKind::End, "phase.timing", vec![]);
        let doc = chrome_trace(&sink.drain());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phs: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        // Metadata first (process + at least one thread), then the five
        // records in order.
        assert!(phs.starts_with(&["M", "M"]));
        assert_eq!(&phs[phs.len() - 5..], &["B", "i", "X", "C", "E"]);
        // The complete event carries a duration and a shifted start.
        let x = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("X")).unwrap();
        assert_eq!(x.get("dur").and_then(Json::as_u64), Some(7));
        // Counter args are numeric-only: the convergence array is
        // filtered out, the scalar survives.
        let c = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("C")).unwrap();
        assert_eq!(c.get("args").and_then(|a| a.get("timed")).and_then(Json::as_u64), Some(2));
        assert!(c.get("args").and_then(|a| a.get("convergence")).is_none());
        // Every non-metadata record names a pid/tid/ts.
        for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) != Some("M")) {
            assert!(e.get("pid").is_some() && e.get("tid").is_some() && e.get("ts").is_some());
        }
    }
}
