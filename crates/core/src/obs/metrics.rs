//! Aggregated engine metrics: one snapshot per search, split into a
//! **deterministic** section derived purely from [`EngineStats`]
//! (identical at any worker count) and a **runtime** section of
//! wall-clock measurements that naturally vary run to run.

use crate::engine::EngineStats;

use super::convergence::ConvergenceCurve;
use super::json::Json;
use super::sink::RuntimeCounters;

/// Bucket count of the hand-rolled latency histograms. Bucket `i`
/// covers `[2^i, 2^(i+1))` µs (bucket 0 also absorbs 0 µs; the top
/// bucket is open-ended), so 24 buckets span sub-µs to beyond 8 s.
pub const HIST_BUCKETS: usize = 24;

/// A log-bucketed latency histogram: fixed size, no allocation, no
/// dependencies. Counts are exact; reported values are bucket upper
/// bounds, so a percentile is accurate to within 2×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Sample counts per power-of-two bucket.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Histogram {
    /// The bucket index a microsecond value lands in.
    pub fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The exclusive upper bound of bucket `i`, µs (nominal for the
    /// open-ended top bucket).
    pub fn bucket_ceiling_us(i: usize) -> u64 {
        1u64 << (i + 1).min(HIST_BUCKETS)
    }

    /// Record one sample.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper bound of the bucket holding the `p`-quantile sample
    /// (`p` in `[0, 1]`), µs. Zero when the histogram is empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_ceiling_us(i);
            }
        }
        Self::bucket_ceiling_us(HIST_BUCKETS - 1)
    }

    /// Fold another histogram's counts into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The bucket counts as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.buckets.iter().map(|&n| Json::from(n)).collect())
    }

    /// Parse [`Histogram::to_json`] output; absent/null means empty
    /// (histograms did not exist in earlier snapshot schemas).
    pub fn from_json_opt(j: Option<&Json>) -> Result<Self, String> {
        let arr = match j {
            None | Some(Json::Null) => return Ok(Self::default()),
            Some(j) => j.as_arr().ok_or("histogram: expected an array")?,
        };
        if arr.len() != HIST_BUCKETS {
            return Err(format!("histogram: expected {HIST_BUCKETS} buckets, got {}", arr.len()));
        }
        let mut h = Self::default();
        for (slot, j) in h.buckets.iter_mut().zip(arr.iter()) {
            *slot = j.as_u64().ok_or("histogram: non-integer bucket count")?;
        }
        Ok(h)
    }
}

/// Nondeterministic wall-clock measurements for one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeMetrics {
    /// Worker threads configured.
    pub jobs: u64,
    /// Wall time of the static-evaluation phase, µs.
    pub static_wall_us: u64,
    /// Wall time of the timing-simulation phase, µs.
    pub timing_wall_us: u64,
    /// Summed per-item worker busy time across both phases, µs.
    pub worker_busy_us: u64,
    /// Worker threads spawned.
    pub workers_spawned: u64,
    /// Worker threads respawned after an unclean death.
    pub workers_respawned: u64,
    /// Wall time per executed simulation unit.
    pub sim_duration_hist: Histogram,
    /// Wall time per memo-cache key computation + lookup.
    pub cache_lookup_hist: Histogram,
    /// Wall time per persistent-store read or flush.
    pub store_io_hist: Histogram,
    /// Wall time per program decode (arena build or cached rebind).
    pub decode_hist: Histogram,
}

impl RuntimeMetrics {
    /// Build from the sink's counters and the configured job count.
    pub fn from_counters(c: RuntimeCounters, jobs: usize) -> Self {
        Self {
            jobs: jobs as u64,
            static_wall_us: c.static_wall_us,
            timing_wall_us: c.timing_wall_us,
            worker_busy_us: c.worker_busy_us,
            workers_spawned: c.workers_spawned,
            workers_respawned: c.workers_respawned,
            sim_duration_hist: c.sim_duration_hist,
            cache_lookup_hist: c.cache_lookup_hist,
            store_io_hist: c.store_io_hist,
            decode_hist: c.decode_hist,
        }
    }

    /// Fraction of the worker pool's capacity spent busy:
    /// `busy / (jobs × phase wall)`, clamped to `[0, 1]`. Zero when no
    /// wall time was recorded.
    pub fn worker_utilization(&self) -> f64 {
        let wall = self.static_wall_us + self.timing_wall_us;
        if wall == 0 || self.jobs == 0 {
            return 0.0;
        }
        (self.worker_busy_us as f64 / (wall * self.jobs) as f64).min(1.0)
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("jobs", Json::from(self.jobs)),
            ("static_wall_us", Json::from(self.static_wall_us)),
            ("timing_wall_us", Json::from(self.timing_wall_us)),
            ("worker_busy_us", Json::from(self.worker_busy_us)),
            ("workers_spawned", Json::from(self.workers_spawned)),
            ("workers_respawned", Json::from(self.workers_respawned)),
            ("worker_utilization", Json::from(self.worker_utilization())),
            ("sim_duration_hist", self.sim_duration_hist.to_json()),
            ("cache_lookup_hist", self.cache_lookup_hist.to_json()),
            ("store_io_hist", self.store_io_hist.to_json()),
            ("decode_hist", self.decode_hist.to_json()),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("runtime: missing `{k}`"))
        };
        Ok(Self {
            jobs: u("jobs")?,
            static_wall_us: u("static_wall_us")?,
            timing_wall_us: u("timing_wall_us")?,
            worker_busy_us: u("worker_busy_us")?,
            workers_spawned: u("workers_spawned")?,
            workers_respawned: u("workers_respawned")?,
            // Absent in snapshots written before latency histograms
            // existed: empty histograms.
            sim_duration_hist: Histogram::from_json_opt(j.get("sim_duration_hist"))?,
            cache_lookup_hist: Histogram::from_json_opt(j.get("cache_lookup_hist"))?,
            store_io_hist: Histogram::from_json_opt(j.get("store_io_hist"))?,
            decode_hist: Histogram::from_json_opt(j.get("decode_hist"))?,
        })
    }
}

/// One search's aggregated engine metrics.
///
/// Everything outside `runtime` is deterministic — derived from
/// [`EngineStats`], whose counters are byte-identical at any `--jobs` —
/// and is what [`EngineMetrics::deterministic_json`] serializes for
/// trace-determinism tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineMetrics {
    /// Candidates statically evaluated.
    pub static_evals: u64,
    /// Candidates that received a timing result.
    pub timed: u64,
    /// Timing simulations actually executed.
    pub sims_executed: u64,
    /// Timed candidates served from the memo cache / family forks.
    pub sims_memoized: u64,
    /// Family work units simulated in one forked run.
    pub family_forks: u64,
    /// Unique simulations covered by those forked runs.
    pub family_members: u64,
    /// Evaluations re-attempted after a transient failure.
    pub retries: u64,
    /// Candidates quarantined.
    pub quarantined: u64,
    /// Failures injected by the fault plan.
    pub injected_faults: u64,
    /// Whether a budget limit cut the evaluation short.
    pub budget_truncated: bool,
    /// Scheduler steps consumed by successful unique simulations.
    pub fuel_consumed: u64,
    /// Total simulated cycles across successful unique simulations.
    pub sim_cycles: u64,
    /// Issue-port idle cycles waiting on in-flight global memory.
    pub stall_mem_cycles: u64,
    /// Issue-port idle cycles waiting on the SFU port.
    pub stall_sfu_cycles: u64,
    /// Issue-port idle cycles waiting on arithmetic results.
    pub stall_arith_cycles: u64,
    /// Issue-port idle cycles from control flow and barriers.
    pub stall_other_cycles: u64,
    /// Subspaces a branch-and-bound search discarded by bound.
    pub bound_pruned_subspaces: u64,
    /// Configurations eliminated by bound pruning without ever being
    /// instantiated.
    pub bound_pruned_points: u64,
    /// Unique simulations served from the persistent result store.
    pub store_hits: u64,
    /// Damaged records the store's loader skipped at open.
    pub store_records_dropped: u64,
    /// Time-resolved convergence curve (deterministic; see
    /// [`ConvergenceCurve`]).
    pub convergence: ConvergenceCurve,
    /// Wall-clock measurements (nondeterministic).
    pub runtime: RuntimeMetrics,
}

impl EngineMetrics {
    /// Derive the deterministic section from the engine's counters; the
    /// runtime section starts zeroed (see
    /// [`EngineMetrics::with_runtime`]).
    pub fn from_stats(stats: &EngineStats) -> Self {
        Self {
            static_evals: stats.static_evals as u64,
            timed: stats.timed as u64,
            sims_executed: stats.unique_sims as u64,
            sims_memoized: stats.cache_hits as u64,
            family_forks: stats.family_forks as u64,
            family_members: stats.family_members as u64,
            retries: stats.retries as u64,
            quarantined: stats.quarantined as u64,
            injected_faults: stats.injected_faults as u64,
            budget_truncated: stats.budget_truncated,
            fuel_consumed: stats.fuel_consumed,
            sim_cycles: stats.sim_cycles,
            stall_mem_cycles: stats.stall_mem_cycles,
            stall_sfu_cycles: stats.stall_sfu_cycles,
            stall_arith_cycles: stats.stall_arith_cycles,
            stall_other_cycles: stats.stall_other_cycles,
            bound_pruned_subspaces: stats.bound_pruned_subspaces as u64,
            bound_pruned_points: stats.bound_pruned_points as u64,
            store_hits: stats.store_hits as u64,
            store_records_dropped: stats.store_records_dropped as u64,
            convergence: ConvergenceCurve::default(),
            runtime: RuntimeMetrics::default(),
        }
    }

    /// Attach wall-clock measurements.
    pub fn with_runtime(mut self, runtime: RuntimeMetrics) -> Self {
        self.runtime = runtime;
        self
    }

    /// Attach the convergence curve.
    pub fn with_convergence(mut self, convergence: ConvergenceCurve) -> Self {
        self.convergence = convergence;
        self
    }

    /// Fraction of timed candidates served without a fresh simulation:
    /// `sims_memoized / timed` (zero when nothing was timed).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.timed == 0 {
            0.0
        } else {
            self.sims_memoized as f64 / self.timed as f64
        }
    }

    /// Total attributed stall cycles.
    pub fn stall_total_cycles(&self) -> u64 {
        self.stall_mem_cycles
            + self.stall_sfu_cycles
            + self.stall_arith_cycles
            + self.stall_other_cycles
    }

    /// The deterministic section as event fields, for the search-scope
    /// `engine.metrics` counter event.
    pub fn deterministic_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("static_evals", Json::from(self.static_evals)),
            ("timed", Json::from(self.timed)),
            ("sims_executed", Json::from(self.sims_executed)),
            ("sims_memoized", Json::from(self.sims_memoized)),
            ("cache_hit_rate", Json::from(self.cache_hit_rate())),
            ("family_forks", Json::from(self.family_forks)),
            ("family_members", Json::from(self.family_members)),
            ("retries", Json::from(self.retries)),
            ("quarantined", Json::from(self.quarantined)),
            ("injected_faults", Json::from(self.injected_faults)),
            ("budget_truncated", Json::from(self.budget_truncated)),
            ("fuel_consumed", Json::from(self.fuel_consumed)),
            ("sim_cycles", Json::from(self.sim_cycles)),
            ("stall_mem_cycles", Json::from(self.stall_mem_cycles)),
            ("stall_sfu_cycles", Json::from(self.stall_sfu_cycles)),
            ("stall_arith_cycles", Json::from(self.stall_arith_cycles)),
            ("stall_other_cycles", Json::from(self.stall_other_cycles)),
            ("bound_pruned_subspaces", Json::from(self.bound_pruned_subspaces)),
            ("bound_pruned_points", Json::from(self.bound_pruned_points)),
            ("store_hits", Json::from(self.store_hits)),
            ("store_records_dropped", Json::from(self.store_records_dropped)),
            ("convergence", self.convergence.to_json()),
        ]
    }

    /// The deterministic section only — byte-identical at any `--jobs`.
    pub fn deterministic_json(&self) -> Json {
        Json::Obj(
            self.deterministic_fields().into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        )
    }

    /// The full snapshot, runtime section nested under `"runtime"`.
    pub fn to_json(&self) -> Json {
        let mut pairs = self.deterministic_fields();
        pairs.push(("runtime", self.runtime.to_json()));
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a snapshot produced by [`EngineMetrics::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("metrics: missing `{k}`"))
        };
        Ok(Self {
            static_evals: u("static_evals")?,
            timed: u("timed")?,
            sims_executed: u("sims_executed")?,
            sims_memoized: u("sims_memoized")?,
            family_forks: u("family_forks")?,
            family_members: u("family_members")?,
            retries: u("retries")?,
            quarantined: u("quarantined")?,
            injected_faults: u("injected_faults")?,
            budget_truncated: j
                .get("budget_truncated")
                .and_then(Json::as_bool)
                .ok_or("metrics: missing `budget_truncated`")?,
            fuel_consumed: u("fuel_consumed")?,
            sim_cycles: u("sim_cycles")?,
            stall_mem_cycles: u("stall_mem_cycles")?,
            stall_sfu_cycles: u("stall_sfu_cycles")?,
            stall_arith_cycles: u("stall_arith_cycles")?,
            stall_other_cycles: u("stall_other_cycles")?,
            // Absent in snapshots written before branch-and-bound
            // existed (e.g. committed BENCH files): default to zero
            // instead of rejecting them.
            bound_pruned_subspaces: j
                .get("bound_pruned_subspaces")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            bound_pruned_points: j.get("bound_pruned_points").and_then(Json::as_u64).unwrap_or(0),
            // Likewise absent in snapshots written before the durable
            // result store existed.
            store_hits: j.get("store_hits").and_then(Json::as_u64).unwrap_or(0),
            store_records_dropped: j
                .get("store_records_dropped")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            // Absent in snapshots written before convergence curves
            // existed: an empty curve.
            convergence: ConvergenceCurve::from_json_opt(j.get("convergence"))?,
            runtime: RuntimeMetrics::from_json(
                j.get("runtime").ok_or("metrics: missing `runtime`")?,
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> EngineStats {
        EngineStats {
            jobs: 4,
            static_evals: 13,
            timed: 12,
            unique_sims: 3,
            cache_hits: 9,
            retries: 2,
            quarantined: 1,
            injected_faults: 2,
            family_forks: 1,
            family_members: 4,
            fuel_consumed: 5_000,
            sim_cycles: 80_000,
            stall_mem_cycles: 1_200,
            stall_sfu_cycles: 30,
            stall_arith_cycles: 400,
            stall_other_cycles: 90,
            bound_pruned_subspaces: 5,
            bound_pruned_points: 70,
            ..Default::default()
        }
    }

    #[test]
    fn snapshots_without_bound_counters_parse_as_zero() {
        // BENCH files written before branch-and-bound existed lack the
        // bound_pruned_* keys; they must still parse.
        let mut m = EngineMetrics::from_stats(&sample_stats());
        m.bound_pruned_subspaces = 0;
        m.bound_pruned_points = 0;
        let text = m
            .to_json()
            .to_string_compact()
            .replace("\"bound_pruned_subspaces\":0,", "")
            .replace("\"bound_pruned_points\":0,", "");
        assert!(!text.contains("bound_pruned"));
        let back = EngineMetrics::from_json(&super::super::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn snapshots_without_store_counters_parse_as_zero() {
        // Snapshots written before the durable result store lack the
        // store_* keys; they must still parse.
        let m = EngineMetrics::from_stats(&sample_stats());
        let text = m
            .to_json()
            .to_string_compact()
            .replace("\"store_hits\":0,", "")
            .replace("\"store_records_dropped\":0,", "");
        assert!(!text.contains("store_hits"));
        assert!(!text.contains("store_records_dropped"));
        let back = EngineMetrics::from_json(&super::super::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn derived_rates_are_correct() {
        let m = EngineMetrics::from_stats(&sample_stats());
        assert_eq!(m.sims_executed, 3);
        assert_eq!(m.sims_memoized, 9);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(m.stall_total_cycles(), 1_720);
        assert_eq!(EngineMetrics::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn deterministic_json_excludes_runtime() {
        let m = EngineMetrics::from_stats(&sample_stats()).with_runtime(RuntimeMetrics {
            jobs: 8,
            static_wall_us: 123,
            timing_wall_us: 456,
            worker_busy_us: 400,
            workers_spawned: 8,
            workers_respawned: 0,
            sim_duration_hist: Histogram::default(),
            cache_lookup_hist: Histogram::default(),
            store_io_hist: Histogram::default(),
            decode_hist: Histogram::default(),
        });
        let det = m.deterministic_json().to_string_compact();
        assert!(!det.contains("wall_us"), "runtime leaked into the deterministic form: {det}");
        // Two snapshots with different runtimes share a deterministic
        // form.
        let other = EngineMetrics::from_stats(&sample_stats());
        assert_eq!(det, other.deterministic_json().to_string_compact());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = EngineMetrics::from_stats(&sample_stats()).with_runtime(RuntimeMetrics {
            jobs: 2,
            static_wall_us: 10,
            timing_wall_us: 90,
            worker_busy_us: 150,
            workers_spawned: 2,
            workers_respawned: 1,
            sim_duration_hist: {
                let mut h = Histogram::default();
                h.record(5);
                h.record(700);
                h
            },
            cache_lookup_hist: Histogram::default(),
            store_io_hist: Histogram::default(),
            decode_hist: {
                let mut h = Histogram::default();
                h.record(3);
                h
            },
        });
        let text = m.to_json().to_string_compact();
        let back = EngineMetrics::from_json(&super::super::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn histogram_buckets_are_log2_with_saturating_ends() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of((1 << 23) - 1), 22);
        assert_eq!(Histogram::bucket_of(1 << 23), HIST_BUCKETS - 1);
        // Values beyond the top bucket's span saturate instead of
        // indexing out of bounds.
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_report_bucket_ceilings() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile_us(0.5), 0);
        for us in [1, 1, 1, 10, 100] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile_us(0.0), 2); // rank clamps to the first sample
        assert_eq!(h.percentile_us(0.5), 2); // 3 of 5 samples in bucket 0
        assert_eq!(h.percentile_us(0.8), 16); // 10 µs -> bucket [8, 16)
        assert_eq!(h.percentile_us(1.0), 128); // 100 µs -> bucket [64, 128)
        let mut other = Histogram::default();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.percentile_us(1.0), Histogram::bucket_ceiling_us(HIST_BUCKETS - 1));
    }

    #[test]
    fn histogram_round_trips_and_tolerates_absence() {
        let mut h = Histogram::default();
        for us in [0, 5, 5_000, u64::MAX] {
            h.record(us);
        }
        let text = h.to_json().to_string_compact();
        let back =
            Histogram::from_json_opt(Some(&super::super::json::parse(&text).unwrap())).unwrap();
        assert_eq!(back, h);
        assert_eq!(Histogram::from_json_opt(None).unwrap(), Histogram::default());
        assert!(Histogram::from_json_opt(Some(&Json::Arr(vec![Json::from(1u64)]))).is_err());
    }

    #[test]
    fn metrics_convergence_round_trips_and_stays_deterministic() {
        let mut m = EngineMetrics::from_stats(&sample_stats());
        m.convergence.samples.push(super::super::convergence::ConvergenceSample {
            sims: 1,
            unique_sims: 1,
            best_time_ms: 4.5,
            bound_pruned_points: 70,
        });
        let det = m.deterministic_json().to_string_compact();
        assert!(det.contains("\"convergence\":[{\"sims\":1"));
        let text = m.to_json().to_string_compact();
        let back = EngineMetrics::from_json(&super::super::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn worker_utilization_is_clamped_and_guarded() {
        let rt = RuntimeMetrics {
            jobs: 2,
            static_wall_us: 50,
            timing_wall_us: 50,
            worker_busy_us: 150,
            ..Default::default()
        };
        assert!((rt.worker_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(RuntimeMetrics::default().worker_utilization(), 0.0);
        let over = RuntimeMetrics { worker_busy_us: 10_000, ..rt };
        assert_eq!(over.worker_utilization(), 1.0);
    }
}
