//! A minimal JSON value, writer, and parser.
//!
//! The workspace is offline (vendored-only policy), so instead of serde
//! this module provides the small JSON subset the observability layer
//! needs: a tree value whose object keys keep **insertion order** (so
//! serialized output is stable across runs), a writer producing
//! deterministic text, and a recursive-descent parser for round-trip
//! validation of traces and manifests.
//!
//! Numbers are kept in three exact lanes — `i64`, `u64`, and `f64` — so
//! counters round-trip bit-exactly and floats use Rust's shortest
//! round-trip `Display` form.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (anything in `i64` range parses here).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    Uint(u64),
    /// A float (any literal with a `.`, `e`, or `E`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Int(i) if *i >= 0 => Some(*i as u64),
            Self::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric lane.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(i) => Some(*i as f64),
            Self::Uint(u) => Some(*u as f64),
            Self::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to compact JSON text (no whitespace), deterministically:
    /// object keys come out in insertion order.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Serialize to 2-space-indented JSON text (for committed
    /// artifacts), trailing newline included.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out.push('\n');
        out
    }
}

fn write_pretty(v: &Json, out: &mut String, depth: usize) {
    let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, depth + 1);
                write_pretty(item, out, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, depth);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                pad(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, depth);
            out.push('}');
        }
        _ => write_value(v, out),
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Self::Int(i64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Self::Uint(v), Self::Int)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::from(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Self::Null, Into::into)
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Uint(u) => out.push_str(&u.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

/// Floats print in Rust's shortest round-trip form, forced to carry a
/// `.` or exponent so the parser puts them back in the float lane.
/// Non-finite values have no JSON representation and become `null`.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .and_then(|s| u32::from_str_radix(s, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; lone surrogates degrade to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|e| self.err(e.to_string()))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else {
            text.parse::<u64>().map(Json::Uint).map_err(|e| self.err(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "42", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.5, 1e-9, std::f64::consts::PI, -2.75, 86.4e9] {
            let v = Json::Float(f);
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(back, v, "float {f} did not round-trip");
        }
        // Whole-valued floats keep their lane through a round trip.
        assert_eq!(parse(&Json::Float(2.0).to_string_compact()).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn big_u64_counters_round_trip() {
        let v = Json::from(u64::MAX);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), Json::Uint(u64::MAX));
        let v = Json::from(123u64);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), Json::Int(123));
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.to_string_compact(), "{\"z\":1,\"a\":2}");
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("list", Json::Arr(vec![Json::Null, Json::Bool(true), Json::from("x\n\"y\"")])),
            ("obj", Json::obj([("k", Json::from(-1i64))])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t newline\n quote\" backslash\\ control\u{1} unicode\u{e9}";
        let v = Json::from(s);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(parse(" { \"a\" : [ 1 , 2 ] } ").unwrap().to_string_compact(), "{\"a\":[1,2]}");
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("42 junk").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":3,\"f\":1.5,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_printing_round_trips() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":{},\"d\":[]}").unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.ends_with('\n'));
        assert!(pretty.contains("  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }
}
