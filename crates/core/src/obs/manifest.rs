//! The machine-readable run manifest: everything needed to explain one
//! search run — machine spec, space shape, budgets, engine metrics, and
//! the result summary — as one JSON document stable enough to commit as
//! a `BENCH_*.json` trajectory point.

use gpu_arch::MachineSpec;

use crate::space::SelectionRecord;
use crate::tuner::SearchReport;

use super::json::{parse, Json, ParseError};
use super::metrics::EngineMetrics;

/// Manifest schema version; bump on breaking layout changes.
///
/// History: 1 — initial layout; 2 — `metrics` gained the embedded
/// `convergence` curve and runtime latency histograms. Both additions
/// parse tolerantly, so `from_json` accepts schema 1 documents
/// (committed `BENCH_*.json` trajectory points) unchanged.
pub const MANIFEST_SCHEMA: u64 = 2;

/// The simulated machine, summarized.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSummary {
    /// Streaming multiprocessors.
    pub num_sms: u64,
    /// Streaming processors per SM.
    pub sps_per_sm: u64,
    /// Shader clock, Hz.
    pub clock_hz: f64,
    /// Threads per warp.
    pub warp_size: u64,
    /// Off-chip bandwidth, bytes/s.
    pub global_bandwidth_bytes_per_sec: f64,
}

impl MachineSummary {
    /// Summarize a machine spec.
    pub fn from_spec(spec: &MachineSpec) -> Self {
        Self {
            num_sms: u64::from(spec.num_sms),
            sps_per_sm: u64::from(spec.sps_per_sm),
            clock_hz: spec.clock_hz,
            warp_size: u64::from(spec.warp_size),
            global_bandwidth_bytes_per_sec: spec.global_bandwidth_bytes_per_sec,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("num_sms", Json::from(self.num_sms)),
            ("sps_per_sm", Json::from(self.sps_per_sm)),
            ("clock_hz", Json::from(self.clock_hz)),
            ("warp_size", Json::from(self.warp_size)),
            ("global_bandwidth_bytes_per_sec", Json::from(self.global_bandwidth_bytes_per_sec)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("machine: missing `{k}`"))
        };
        let f = |k: &str| {
            j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("machine: missing `{k}`"))
        };
        Ok(Self {
            num_sms: u("num_sms")?,
            sps_per_sm: u("sps_per_sm")?,
            clock_hz: f("clock_hz")?,
            warp_size: u("warp_size")?,
            global_bandwidth_bytes_per_sec: f("global_bandwidth_bytes_per_sec")?,
        })
    }
}

/// The winning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BestSummary {
    /// Candidate index in the space.
    pub candidate: u64,
    /// Candidate label.
    pub label: String,
    /// Simulated kernel time, ms.
    pub time_ms: f64,
}

/// The persistent result store a run was attached to.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSummary {
    /// Store directory path as given on the command line.
    pub path: String,
    /// Store generation (segment count) when it was opened.
    pub generation: u64,
    /// Records loaded into the index at open.
    pub records_loaded: u64,
    /// Damaged records the corruption-tolerant loader skipped at open.
    pub records_dropped: u64,
    /// Unique simulations this run served from the store.
    pub hits: u64,
}

impl StoreSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", Json::from(self.path.as_str())),
            ("generation", Json::from(self.generation)),
            ("records_loaded", Json::from(self.records_loaded)),
            ("records_dropped", Json::from(self.records_dropped)),
            ("hits", Json::from(self.hits)),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64);
        Some(Self {
            path: j.get("path")?.as_str()?.to_string(),
            generation: u("generation")?,
            records_loaded: u("records_loaded")?,
            records_dropped: u("records_dropped")?,
            hits: u("hits")?,
        })
    }
}

/// One complete run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_SCHEMA`]).
    pub schema: u64,
    /// Application / kernel name (e.g. `"sad"`).
    pub app: String,
    /// Search strategy name.
    pub strategy: String,
    /// The simulated machine.
    pub machine: MachineSummary,
    /// Total configurations in the space.
    pub space_size: u64,
    /// Valid (launchable) configurations.
    pub valid: u64,
    /// Configurations that received a timing result.
    pub simulated: u64,
    /// Configurations quarantined by evaluation failures.
    pub quarantined: u64,
    /// Fraction of the valid space not timed (Table 4's "Space
    /// Reduction").
    pub space_reduction: f64,
    /// Summed simulated time over timed configurations, ms (Table 4's
    /// "Evaluation Time").
    pub evaluation_time_ms: f64,
    /// The winner, if any configuration was timed.
    pub best: Option<BestSummary>,
    /// `max_sims` budget, if set.
    pub budget_max_sims: Option<u64>,
    /// `deadline_ms` budget, if set.
    pub budget_deadline_ms: Option<f64>,
    /// Aggregated engine metrics.
    pub metrics: EngineMetrics,
    /// Quarantine counts per error kind, sorted by kind name.
    pub quarantine_by_kind: Vec<(String, u64)>,
    /// The declarative selection (`--filter`/`--sample`) the search ran
    /// under, if any. Serialized tolerantly (absent/`null` means none),
    /// so pre-selection manifests still parse under schema 1.
    pub selection: Option<SelectionRecord>,
    /// Which declared grid the app built its space from (`--grid`),
    /// when the app offers more than one (e.g. matmul's `coarse` /
    /// `fine`). Absent/`null` means the app's single default grid;
    /// serialized tolerantly so earlier manifests still parse.
    pub grid: Option<String>,
    /// The persistent result store the run consulted (`--store-dir`),
    /// if any: path, generation, and hit/drop counters. Absent/`null`
    /// means no store; serialized tolerantly so earlier manifests still
    /// parse.
    pub store: Option<StoreSummary>,
}

impl RunManifest {
    /// Build a manifest from a finished search. The winner's label is
    /// read from its static evaluation, so no candidate slice is needed
    /// — lazily instantiated searches produce the same manifest.
    pub fn from_search(app: impl Into<String>, report: &SearchReport, spec: &MachineSpec) -> Self {
        let best = report.best.and_then(|i| {
            let time_ms = report.simulated.get(i)?.as_ref()?.time_ms;
            Some(BestSummary {
                candidate: i as u64,
                label: report
                    .statics
                    .get(i)
                    .and_then(|s| s.as_ref())
                    .map(|e| e.label.clone())
                    .unwrap_or_default(),
                time_ms,
            })
        });
        let mut by_kind: Vec<(String, u64)> = Vec::new();
        for q in &report.quarantined {
            let kind = q.error.kind().to_string();
            match by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => by_kind.push((kind, 1)),
            }
        }
        by_kind.sort();
        Self {
            schema: MANIFEST_SCHEMA,
            app: app.into(),
            strategy: report.strategy.clone(),
            machine: MachineSummary::from_spec(spec),
            space_size: report.space_size as u64,
            valid: report.valid_count() as u64,
            simulated: report.evaluated_count() as u64,
            quarantined: report.quarantined.len() as u64,
            space_reduction: report.space_reduction(),
            evaluation_time_ms: report.evaluation_time_ms(),
            best,
            budget_max_sims: report.stats.budget.max_sims.map(|n| n as u64),
            budget_deadline_ms: report.stats.budget.deadline_ms,
            metrics: report.metrics.clone(),
            quarantine_by_kind: by_kind,
            selection: report.selection.clone(),
            grid: None,
            store: None,
        }
    }

    /// Record which declared grid the space came from.
    pub fn with_grid(mut self, grid: impl Into<String>) -> Self {
        self.grid = Some(grid.into());
        self
    }

    /// Record the persistent result store the run was attached to.
    pub fn with_store(mut self, store: StoreSummary) -> Self {
        self.store = Some(store);
        self
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(self.schema)),
            ("app", Json::from(self.app.as_str())),
            ("strategy", Json::from(self.strategy.as_str())),
            ("machine", self.machine.to_json()),
            ("space_size", Json::from(self.space_size)),
            ("valid", Json::from(self.valid)),
            ("simulated", Json::from(self.simulated)),
            ("quarantined", Json::from(self.quarantined)),
            ("space_reduction", Json::from(self.space_reduction)),
            ("evaluation_time_ms", Json::from(self.evaluation_time_ms)),
            (
                "best",
                match &self.best {
                    None => Json::Null,
                    Some(b) => Json::obj([
                        ("candidate", Json::from(b.candidate)),
                        ("label", Json::from(b.label.as_str())),
                        ("time_ms", Json::from(b.time_ms)),
                    ]),
                },
            ),
            ("budget_max_sims", Json::from(self.budget_max_sims)),
            ("budget_deadline_ms", Json::from(self.budget_deadline_ms)),
            ("metrics", self.metrics.to_json()),
            (
                "quarantine_by_kind",
                Json::Obj(
                    self.quarantine_by_kind
                        .iter()
                        .map(|(k, n)| (k.clone(), Json::from(*n)))
                        .collect(),
                ),
            ),
            (
                "selection",
                match &self.selection {
                    None => Json::Null,
                    Some(sel) => sel.to_json(),
                },
            ),
            (
                "grid",
                match &self.grid {
                    None => Json::Null,
                    Some(g) => Json::from(g.as_str()),
                },
            ),
            (
                "store",
                match &self.store {
                    None => Json::Null,
                    Some(st) => st.to_json(),
                },
            ),
        ])
    }

    /// Parse a manifest back from a JSON value.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing `{k}`"));
        let f = |k: &str| j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("missing `{k}`"));
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{k}`"))
        };
        let schema = u("schema")?;
        if !(1..=MANIFEST_SCHEMA).contains(&schema) {
            return Err(format!("unsupported manifest schema {schema}"));
        }
        let best = match j.get("best") {
            None | Some(Json::Null) => None,
            Some(b) => Some(BestSummary {
                candidate: b.get("candidate").and_then(Json::as_u64).ok_or("best: candidate")?,
                label: b.get("label").and_then(Json::as_str).ok_or("best: label")?.to_string(),
                time_ms: b.get("time_ms").and_then(Json::as_f64).ok_or("best: time_ms")?,
            }),
        };
        let by_kind = match j.get("quarantine_by_kind") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("quarantine_by_kind: `{k}` not a count"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `quarantine_by_kind`".into()),
        };
        Ok(Self {
            schema,
            app: s("app")?,
            strategy: s("strategy")?,
            machine: MachineSummary::from_json(j.get("machine").ok_or("missing `machine`")?)?,
            space_size: u("space_size")?,
            valid: u("valid")?,
            simulated: u("simulated")?,
            quarantined: u("quarantined")?,
            space_reduction: f("space_reduction")?,
            evaluation_time_ms: f("evaluation_time_ms")?,
            best,
            budget_max_sims: match j.get("budget_max_sims") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("budget_max_sims not a count")?),
            },
            budget_deadline_ms: match j.get("budget_deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("budget_deadline_ms not a number")?),
            },
            metrics: EngineMetrics::from_json(j.get("metrics").ok_or("missing `metrics`")?)?,
            quarantine_by_kind: by_kind,
            selection: match j.get("selection") {
                None | Some(Json::Null) => None,
                Some(sel) => Some(SelectionRecord::from_json(sel).ok_or("selection: malformed")?),
            },
            grid: match j.get("grid") {
                None | Some(Json::Null) => None,
                Some(g) => Some(g.as_str().ok_or("grid not a string")?.to_string()),
            },
            store: match j.get("store") {
                None | Some(Json::Null) => None,
                Some(st) => Some(StoreSummary::from_json(st).ok_or("store: malformed")?),
            },
        })
    }

    /// Parse a manifest from JSON text.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let j = parse(text).map_err(|e: ParseError| e.to_string())?;
        Self::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use crate::tuner::{ExhaustiveSearch, SearchStrategy};
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Launch};

    fn tiny_space() -> Vec<Candidate> {
        (1u32..=3)
            .map(|t| {
                let mut b = KernelBuilder::new("k");
                let p = b.param(0);
                let acc = b.mov(0.0f32);
                b.repeat(8 * t, |b| {
                    let x = b.ld_global(p, 0);
                    b.fmad_acc(x, 1.0f32, acc);
                });
                b.st_global(p, 0, acc);
                Candidate::new(
                    format!("t{t}"),
                    b.finish(),
                    Launch::new(Dim::new_1d(64), Dim::new_1d(128)),
                )
            })
            .collect()
    }

    #[test]
    fn manifest_round_trips_and_reconciles_with_the_report() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let report = ExhaustiveSearch.run(&space, &spec);
        let manifest = RunManifest::from_search("tiny", &report, &spec);

        assert_eq!(manifest.simulated, report.evaluated_count() as u64);
        assert_eq!(manifest.metrics.sims_executed, report.stats.unique_sims as u64);
        assert_eq!(manifest.metrics.sims_memoized, report.stats.cache_hits as u64);
        assert_eq!(manifest.quarantined, report.quarantined.len() as u64);
        let best = manifest.best.as_ref().expect("a best exists");
        assert_eq!(best.label, space[report.best.unwrap()].label);

        let text = manifest.to_json().to_string_compact();
        let back = RunManifest::parse_str(&text).expect("round trip parses");
        assert_eq!(back, manifest);
    }

    #[test]
    fn selection_round_trips_and_absent_selection_parses() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let mut report = ExhaustiveSearch.run(&space, &spec);
        report.selection = Some(SelectionRecord {
            filters: vec![("tile".into(), "16".into())],
            sample: Some((10, 7)),
            matched: 3,
        });
        let manifest = RunManifest::from_search("tiny", &report, &spec);
        let text = manifest.to_json().to_string_compact();
        let back = RunManifest::parse_str(&text).expect("round trip parses");
        assert_eq!(back.selection, manifest.selection);

        // A pre-selection manifest (no `selection` key at all) still
        // parses under schema 1.
        let mut j = manifest.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "selection");
        }
        assert_eq!(RunManifest::from_json(&j).expect("tolerant parse").selection, None);
    }

    #[test]
    fn grid_round_trips_and_absent_grid_parses() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let report = ExhaustiveSearch.run(&space, &spec);
        let manifest = RunManifest::from_search("tiny", &report, &spec).with_grid("fine");
        let text = manifest.to_json().to_string_compact();
        let back = RunManifest::parse_str(&text).expect("round trip parses");
        assert_eq!(back.grid.as_deref(), Some("fine"));

        // A pre-grid manifest (no `grid` key at all) still parses.
        let mut j = manifest.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "grid");
        }
        assert_eq!(RunManifest::from_json(&j).expect("tolerant parse").grid, None);
    }

    #[test]
    fn store_round_trips_and_absent_store_parses() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let report = ExhaustiveSearch.run(&space, &spec);
        let manifest = RunManifest::from_search("tiny", &report, &spec).with_store(StoreSummary {
            path: "/tmp/store".into(),
            generation: 3,
            records_loaded: 12,
            records_dropped: 1,
            hits: 12,
        });
        let text = manifest.to_json().to_string_compact();
        let back = RunManifest::parse_str(&text).expect("round trip parses");
        assert_eq!(back.store, manifest.store);

        // A pre-store manifest (no `store` key at all) still parses.
        let mut j = manifest.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "store");
        }
        assert_eq!(RunManifest::from_json(&j).expect("tolerant parse").store, None);
    }

    #[test]
    fn schema_one_manifests_still_parse() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let report = ExhaustiveSearch.run(&space, &spec);
        let mut j = RunManifest::from_search("tiny", &report, &spec).to_json();
        // Downgrade to the layout a schema-1 writer produced: no
        // convergence curve inside metrics.
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::from(1u64);
            if let Some(Json::Obj(m)) =
                pairs.iter_mut().find(|(k, _)| k == "metrics").map(|p| &mut p.1)
            {
                m.retain(|(k, _)| k != "convergence");
            }
        }
        let back = RunManifest::from_json(&j).expect("legacy manifest parses");
        assert_eq!(back.schema, 1);
        assert!(back.metrics.convergence.is_empty());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = tiny_space();
        let report = ExhaustiveSearch.run(&space, &spec);
        let mut j = RunManifest::from_search("tiny", &report, &spec).to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::from(99u64);
        }
        assert!(RunManifest::from_json(&j).unwrap_err().contains("schema"));
    }
}
