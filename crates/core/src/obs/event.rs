//! Structured trace events.
//!
//! One [`Event`] is one record in the JSONL trace: a span boundary, a
//! point occurrence, or a counter snapshot. Every event carries two
//! kinds of data with very different determinism guarantees:
//!
//! * **Content** — `scope`, `kind`, `name`, and `fields`. For
//!   [`Scope::Search`] events this is *deterministic*: emitted from the
//!   single-threaded search orchestrator in program order, so the
//!   sequence of canonical lines is byte-identical at any `--jobs`.
//! * **Timing** — `seq`, `ts_us`, `thread`. Monotonic bookkeeping that
//!   naturally differs run to run; it is excluded from
//!   [`Event::canonical_line`] and lives in designated JSON fields so
//!   tools can ignore it when diffing traces.
//!
//! [`Scope::Runtime`] events (worker spawns, per-item wall times) are
//! nondeterministic by nature and never enter the canonical form.

use super::json::Json;

/// Version of the JSONL trace record layout. Every line written by
/// `--trace-out` carries it as a `schema` field so tools (and
/// `gpu-autotune validate`) can reject records they do not understand
/// instead of misreading them.
pub const TRACE_SCHEMA: u64 = 1;

/// Who vouches for the event's determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Deterministic search content: identical at any worker count.
    Search,
    /// Runtime bookkeeping (scheduling, wall times): varies run to run.
    Runtime,
}

impl Scope {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Search => "search",
            Self::Runtime => "runtime",
        }
    }
}

/// What the event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (a phase, a search).
    Begin,
    /// The matching span closes.
    End,
    /// A point occurrence (a cache hit, a quarantine).
    Point,
    /// A counter snapshot (aggregated metrics).
    Counter,
}

impl EventKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Begin => "begin",
            Self::End => "end",
            Self::Point => "point",
            Self::Counter => "counter",
        }
    }
}

/// One trace record. See the module docs for the content/timing split.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (nondeterministic across worker counts
    /// because runtime events interleave).
    pub seq: u64,
    /// Microseconds since the sink was created (monotonic clock).
    pub ts_us: u64,
    /// Small per-thread tag (0 = first thread to emit).
    pub thread: u64,
    /// Determinism scope.
    pub scope: Scope,
    /// Event kind.
    pub kind: EventKind,
    /// Dotted event name, e.g. `"phase.timing"` or `"cache.hit"`.
    pub name: &'static str,
    /// Structured payload, in emission-defined key order.
    pub fields: Vec<(&'static str, Json)>,
}

impl Event {
    /// The full JSONL record, timing fields included.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(TRACE_SCHEMA)),
            ("seq", Json::from(self.seq)),
            ("ts_us", Json::from(self.ts_us)),
            ("thread", Json::from(self.thread)),
            ("scope", Json::from(self.scope.as_str())),
            ("kind", Json::from(self.kind.as_str())),
            ("name", Json::from(self.name)),
            (
                "fields",
                Json::Obj(self.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect()),
            ),
        ])
    }

    /// The deterministic projection: kind, name, and fields only — no
    /// sequence number, timestamp, or thread tag. For [`Scope::Search`]
    /// events the ordered list of these lines is byte-identical at any
    /// worker count.
    pub fn canonical_line(&self) -> String {
        let fields =
            Json::Obj(self.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect());
        format!("{} {} {}", self.kind.as_str(), self.name, fields.to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, ts_us: u64, thread: u64) -> Event {
        Event {
            seq,
            ts_us,
            thread,
            scope: Scope::Search,
            kind: EventKind::Point,
            name: "cache.hit",
            fields: vec![("candidate", Json::from(3u64)), ("unique", Json::from(1u64))],
        }
    }

    #[test]
    fn canonical_line_excludes_timing() {
        let a = sample(1, 100, 0);
        let b = sample(99, 55_555, 7);
        assert_eq!(a.canonical_line(), b.canonical_line());
        assert_eq!(a.canonical_line(), "point cache.hit {\"candidate\":3,\"unique\":1}");
    }

    #[test]
    fn json_record_carries_everything() {
        let e = sample(5, 123, 2);
        let j = e.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_u64), Some(TRACE_SCHEMA));
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("ts_us").and_then(Json::as_u64), Some(123));
        assert_eq!(j.get("thread").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("scope").and_then(Json::as_str), Some("search"));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("point"));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("cache.hit"));
        assert_eq!(
            j.get("fields").and_then(|f| f.get("candidate")).and_then(Json::as_u64),
            Some(3)
        );
    }
}
