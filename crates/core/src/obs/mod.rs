//! Observability: structured event tracing, aggregated engine metrics,
//! and the machine-readable run manifest.
//!
//! The search stack is deterministic by construction — reports are
//! byte-identical at any worker count — and its instrumentation keeps
//! that property by splitting every record into deterministic *content*
//! and nondeterministic *timing*:
//!
//! * [`EventSink`] collects [`Event`]s from the orchestrator and the
//!   worker pool with per-thread shard locking. Search-scope events are
//!   emitted only from the single-threaded orchestrator, so their
//!   canonical projection ([`Trace::canonical_lines`]) is byte-identical
//!   at `--jobs 1` and `--jobs 8`; runtime-scope events (worker spawns,
//!   wall times) carry the nondeterministic story.
//! * [`EngineMetrics`] aggregates one search: cache behaviour, family
//!   forking, retries/quarantines, simulated-cycle and stall breakdowns
//!   (deterministic), plus per-phase wall time and worker utilization
//!   (runtime).
//! * [`RunManifest`] is the exportable run record — machine spec, space
//!   shape, budgets, metrics, result summary — serialized with the
//!   in-tree [`json`] support (the workspace is offline; no serde).
//! * Time-resolved telemetry rides on the same split: the
//!   [`ConvergenceCurve`] recorded by the engine is deterministic and
//!   travels inside [`EngineMetrics`]; per-phase spans, worker lanes,
//!   and latency [`Histogram`]s are runtime data reconstructed by
//!   [`timeline`] or exported to Perfetto via [`chrome_trace`].

pub mod chrome;
pub mod convergence;
pub mod event;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod sink;
pub mod timeline;

pub use chrome::chrome_trace;
pub use convergence::{ConvergenceCurve, ConvergenceRecorder, ConvergenceSample};
pub use event::{Event, EventKind, Scope, TRACE_SCHEMA};
pub use json::Json;
pub use manifest::{BestSummary, MachineSummary, RunManifest, StoreSummary, MANIFEST_SCHEMA};
pub use metrics::{EngineMetrics, Histogram, RuntimeMetrics, HIST_BUCKETS};
pub use sink::{EventSink, LatencyLane, Phase, RuntimeCounters, Trace};
pub use timeline::{
    format_summary, parse_jsonl, summarize, PhaseSpan, Rec, Timeline, TraceSummary, WorkerLane,
};
