//! The event sink: a lock-cheap, thread-safe collector of trace events
//! plus a handful of atomic runtime counters.
//!
//! Workers append to one of a fixed set of mutex-protected shards chosen
//! by thread tag, so concurrent emitters almost never contend on one
//! lock; the single-threaded orchestrator pays one uncontended lock per
//! event. [`EventSink::drain`] merges the shards back into global
//! `seq` order as a [`Trace`].
//!
//! Runtime aggregates that would be wasteful as individual events —
//! worker busy time, per-phase wall time, spawn counts — accumulate in
//! plain atomics and surface through [`RuntimeCounters`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::event::{Event, EventKind, Scope};
use super::json::Json;
use super::metrics::{Histogram, HIST_BUCKETS};

const SHARDS: usize = 16;

/// Process-global small-integer thread tags: the first thread to emit
/// gets 0, the next 1, and so on.
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// Which engine phase a wall-time or busy-time sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Static evaluation (metrics + occupancy).
    Static,
    /// Timing simulation.
    Timing,
}

impl Phase {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::Timing => "timing",
        }
    }
}

/// A latency histogram lane in the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyLane {
    /// Wall time of one executed simulation unit.
    Sim,
    /// Wall time of one memo-cache key computation + lookup.
    CacheLookup,
    /// Wall time of one persistent-store read or flush.
    StoreIo,
    /// Wall time of one program decode (arena build or cached-arena
    /// rebind) in the dedup pass.
    Decode,
}

const LANES: usize = 4;

/// Snapshot of the sink's atomic runtime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeCounters {
    /// Wall time spent in static evaluation (orchestrator clock), µs.
    pub static_wall_us: u64,
    /// Wall time spent in timing simulation (orchestrator clock), µs.
    pub timing_wall_us: u64,
    /// Summed per-item worker busy time across both phases, µs.
    pub worker_busy_us: u64,
    /// Worker threads spawned (initial complement).
    pub workers_spawned: u64,
    /// Worker threads respawned after an unclean death.
    pub workers_respawned: u64,
    /// Latency histogram of [`LatencyLane::Sim`].
    pub sim_duration_hist: Histogram,
    /// Latency histogram of [`LatencyLane::CacheLookup`].
    pub cache_lookup_hist: Histogram,
    /// Latency histogram of [`LatencyLane::StoreIo`].
    pub store_io_hist: Histogram,
    /// Latency histogram of [`LatencyLane::Decode`].
    pub decode_hist: Histogram,
}

/// The shared event sink. Cheap to clone behind an `Arc`; all methods
/// take `&self`.
#[derive(Debug)]
pub struct EventSink {
    origin: Instant,
    seq: AtomicU64,
    shards: [Mutex<Vec<Event>>; SHARDS],
    static_wall_us: AtomicU64,
    timing_wall_us: AtomicU64,
    worker_busy_us: AtomicU64,
    workers_spawned: AtomicU64,
    workers_respawned: AtomicU64,
    latency: [[AtomicU64; HIST_BUCKETS]; LANES],
}

impl Default for EventSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink {
    /// A fresh, empty sink; timestamps are relative to this moment.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            seq: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            static_wall_us: AtomicU64::new(0),
            timing_wall_us: AtomicU64::new(0),
            worker_busy_us: AtomicU64::new(0),
            workers_spawned: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            latency: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Record one event.
    pub fn emit(
        &self,
        scope: Scope,
        kind: EventKind,
        name: &'static str,
        fields: Vec<(&'static str, Json)>,
    ) {
        let thread = thread_tag();
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.origin.elapsed().as_micros() as u64,
            thread,
            scope,
            kind,
            name,
            fields,
        };
        let shard = (thread as usize) % SHARDS;
        self.shards[shard].lock().expect("sink shard poisoned").push(event);
    }

    /// Record a deterministic search-scope event.
    pub fn search(&self, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Json)>) {
        self.emit(Scope::Search, kind, name, fields);
    }

    /// Record a nondeterministic runtime-scope event.
    pub fn runtime(&self, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Json)>) {
        self.emit(Scope::Runtime, kind, name, fields);
    }

    /// Add orchestrator wall time to a phase.
    pub fn add_phase_wall_us(&self, phase: Phase, us: u64) {
        match phase {
            Phase::Static => &self.static_wall_us,
            Phase::Timing => &self.timing_wall_us,
        }
        .fetch_add(us, Ordering::Relaxed);
    }

    /// Add per-item worker busy time.
    pub fn add_busy_us(&self, us: u64) {
        self.worker_busy_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Count one worker spawn.
    pub fn note_spawn(&self) {
        self.workers_spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one worker respawn.
    pub fn note_respawn(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one latency sample (lock-free; workers call this from the
    /// hot simulation path).
    pub fn record_latency(&self, lane: LatencyLane, us: u64) {
        self.latency[lane as usize][Histogram::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    fn latency_hist(&self, lane: LatencyLane) -> Histogram {
        let mut h = Histogram::default();
        for (slot, counter) in h.buckets.iter_mut().zip(self.latency[lane as usize].iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        h
    }

    /// Snapshot the runtime counters.
    pub fn runtime_counters(&self) -> RuntimeCounters {
        RuntimeCounters {
            static_wall_us: self.static_wall_us.load(Ordering::Relaxed),
            timing_wall_us: self.timing_wall_us.load(Ordering::Relaxed),
            worker_busy_us: self.worker_busy_us.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            sim_duration_hist: self.latency_hist(LatencyLane::Sim),
            cache_lookup_hist: self.latency_hist(LatencyLane::CacheLookup),
            store_io_hist: self.latency_hist(LatencyLane::StoreIo),
            decode_hist: self.latency_hist(LatencyLane::Decode),
        }
    }

    /// Take every event recorded so far, merged into global emission
    /// (`seq`) order. The sink stays usable; runtime counters are left
    /// untouched.
    pub fn drain(&self) -> Trace {
        let mut events: Vec<Event> = Vec::new();
        for shard in &self.shards {
            events.append(&mut shard.lock().expect("sink shard poisoned"));
        }
        events.sort_by_key(|e| e.seq);
        Trace { events }
    }
}

/// A drained, seq-ordered sequence of events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Events in global emission order.
    pub events: Vec<Event>,
}

impl Trace {
    /// One JSON record per line, trailing newline included (empty string
    /// for an empty trace).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// The deterministic projection: canonical lines of the
    /// [`Scope::Search`] events, in emission order. Byte-identical at
    /// any worker count.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.events.iter().filter(|e| e.scope == Scope::Search).map(Event::canonical_line).collect()
    }

    /// [`Trace::canonical_lines`] joined with newlines.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for line in self.canonical_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Events with the given name, in order.
    pub fn named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_emission_order() {
        let sink = EventSink::new();
        for i in 0..10u64 {
            sink.search(EventKind::Point, "tick", vec![("i", Json::from(i))]);
        }
        let trace = sink.drain();
        assert_eq!(trace.events.len(), 10);
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.fields[0].1, Json::from(i as u64));
        }
        // Drain empties the sink.
        assert!(sink.drain().events.is_empty());
    }

    #[test]
    fn concurrent_emission_loses_nothing() {
        let sink = EventSink::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..100u64 {
                        sink.runtime(EventKind::Point, "work", vec![("i", Json::from(i))]);
                    }
                });
            }
        });
        let trace = sink.drain();
        assert_eq!(trace.events.len(), 800);
        // Sequence numbers are unique and the drain is sorted.
        for w in trace.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn canonical_lines_exclude_runtime_events() {
        let sink = EventSink::new();
        sink.search(EventKind::Begin, "phase.static", vec![("candidates", Json::from(4u64))]);
        sink.runtime(EventKind::Point, "pool.spawn", vec![("worker", Json::from(0u64))]);
        sink.search(EventKind::End, "phase.static", vec![("valid", Json::from(4u64))]);
        let trace = sink.drain();
        let lines = trace.canonical_lines();
        assert_eq!(
            lines,
            vec![
                "begin phase.static {\"candidates\":4}".to_string(),
                "end phase.static {\"valid\":4}".to_string(),
            ]
        );
        assert_eq!(trace.canonical_text(), lines.join("\n") + "\n");
    }

    #[test]
    fn runtime_counters_accumulate() {
        let sink = EventSink::new();
        sink.add_phase_wall_us(Phase::Static, 100);
        sink.add_phase_wall_us(Phase::Timing, 250);
        sink.add_phase_wall_us(Phase::Timing, 50);
        sink.add_busy_us(70);
        sink.note_spawn();
        sink.note_spawn();
        sink.note_respawn();
        let c = sink.runtime_counters();
        assert_eq!(c.static_wall_us, 100);
        assert_eq!(c.timing_wall_us, 300);
        assert_eq!(c.worker_busy_us, 70);
        assert_eq!(c.workers_spawned, 2);
        assert_eq!(c.workers_respawned, 1);
    }

    #[test]
    fn latency_lanes_accumulate_independently() {
        let sink = EventSink::new();
        sink.record_latency(LatencyLane::Sim, 0);
        sink.record_latency(LatencyLane::Sim, 1000);
        sink.record_latency(LatencyLane::CacheLookup, 3);
        sink.record_latency(LatencyLane::StoreIo, u64::MAX);
        sink.record_latency(LatencyLane::Decode, 12);
        let c = sink.runtime_counters();
        assert_eq!(c.sim_duration_hist.count(), 2);
        assert_eq!(c.sim_duration_hist.buckets[0], 1);
        assert_eq!(c.sim_duration_hist.buckets[Histogram::bucket_of(1000)], 1);
        assert_eq!(c.cache_lookup_hist.count(), 1);
        assert_eq!(c.store_io_hist.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(c.decode_hist.count(), 1);
        assert_eq!(c.decode_hist.buckets[Histogram::bucket_of(12)], 1);
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let sink = EventSink::new();
        sink.search(EventKind::Counter, "engine.metrics", vec![("timed", Json::from(12u64))]);
        sink.runtime(EventKind::Point, "pool.item", vec![("wall_us", Json::from(3u64))]);
        let text = sink.drain().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            super::super::json::parse(line).expect("each JSONL line parses");
        }
    }
}
