//! Time-resolved convergence telemetry.
//!
//! A search's end-of-run totals say *what* it found; a
//! [`ConvergenceCurve`] says *how fast*. The engine's
//! [`ConvergenceRecorder`] samples `(sims_completed, unique_sims,
//! best_time_ms, bound_pruned_points)` at every incumbent improvement
//! and at a fixed simulation interval, from the single-threaded result
//! reassembly loop — candidates are observed in candidate-index order
//! regardless of worker scheduling, so the curve is **deterministic**:
//! byte-identical at `--jobs 1` and `--jobs 8`, with or without fault
//! injection.
//!
//! The curve travels inside [`EngineMetrics`]'s deterministic section,
//! which puts it in the `engine.metrics` trace counter, the run
//! manifest, and `--profile` for free — and makes every existing
//! trace-determinism test also a convergence-determinism test.
//!
//! [`EngineMetrics`]: super::metrics::EngineMetrics

use std::sync::Mutex;

use super::json::Json;

/// Sample the curve every this many completed (timed) simulations, in
/// addition to every incumbent improvement.
pub const SAMPLE_INTERVAL: u64 = 32;

/// One point on a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceSample {
    /// Candidates with a timing result so far (memoized included).
    pub sims: u64,
    /// Unique simulations executed so far (store hits and memo reuse
    /// excluded).
    pub unique_sims: u64,
    /// Best simulated time seen so far, ms.
    pub best_time_ms: f64,
    /// Configurations eliminated by bound pruning so far.
    pub bound_pruned_points: u64,
}

impl ConvergenceSample {
    fn to_json(self) -> Json {
        Json::obj([
            ("sims", Json::from(self.sims)),
            ("unique_sims", Json::from(self.unique_sims)),
            ("best_time_ms", Json::from(self.best_time_ms)),
            ("bound_pruned_points", Json::from(self.bound_pruned_points)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("convergence: missing `{k}`"))
        };
        Ok(Self {
            sims: u("sims")?,
            unique_sims: u("unique_sims")?,
            best_time_ms: j
                .get("best_time_ms")
                .and_then(Json::as_f64)
                .ok_or("convergence: missing `best_time_ms`")?,
            bound_pruned_points: u("bound_pruned_points")?,
        })
    }
}

/// A search's convergence curve: samples in simulation order, best time
/// monotonically non-increasing, final sample reflecting the end of the
/// run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceCurve {
    /// Samples in simulation order.
    pub samples: Vec<ConvergenceSample>,
}

impl ConvergenceCurve {
    /// True when the search produced no timing results.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The final best time, ms.
    pub fn final_best_ms(&self) -> Option<f64> {
        self.samples.last().map(|s| s.best_time_ms)
    }

    /// Timed candidates needed before the search first held its final
    /// best time — the sims-to-optimum measure of the strategy
    /// benchmark.
    pub fn sims_to_optimum(&self) -> Option<u64> {
        let best = self.final_best_ms()?;
        self.samples.iter().find(|s| s.best_time_ms == best).map(|s| s.sims)
    }

    /// Unique simulations executed before the search first held its
    /// final best time.
    pub fn unique_to_optimum(&self) -> Option<u64> {
        let best = self.final_best_ms()?;
        self.samples.iter().find(|s| s.best_time_ms == best).map(|s| s.unique_sims)
    }

    /// Timed candidates needed before the search first held a best time
    /// at or below `threshold_ms`; `None` if it never got there. Exact,
    /// not interval-quantized: every improvement forces a sample, and
    /// the first best at or below any threshold is an improvement.
    pub fn sims_to_within(&self, threshold_ms: f64) -> Option<u64> {
        self.samples.iter().find(|s| s.best_time_ms <= threshold_ms).map(|s| s.sims)
    }

    /// The curve as a JSON array of sample objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.samples.iter().map(|s| s.to_json()).collect())
    }

    /// Parse [`ConvergenceCurve::to_json`] output.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let arr = j.as_arr().ok_or("convergence: expected an array")?;
        let samples = arr.iter().map(ConvergenceSample::from_json).collect::<Result<_, _>>()?;
        Ok(Self { samples })
    }

    /// Tolerant parse for containers written before convergence curves
    /// existed: an absent or null field is an empty curve.
    pub fn from_json_opt(j: Option<&Json>) -> Result<Self, String> {
        match j {
            None | Some(Json::Null) => Ok(Self::default()),
            Some(j) => Self::from_json(j),
        }
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    /// Timed candidates observed so far.
    sims: u64,
    /// Unique simulations observed so far.
    unique: u64,
    /// Best time so far (`None` until the first observation).
    best: Option<f64>,
    /// High-water mark of bound-pruned configurations.
    pruned: u64,
    /// True when state advanced past the last recorded sample.
    dirty: bool,
    samples: Vec<ConvergenceSample>,
}

impl RecorderState {
    fn push_sample(&mut self) {
        if let Some(best) = self.best {
            self.samples.push(ConvergenceSample {
                sims: self.sims,
                unique_sims: self.unique,
                best_time_ms: best,
                bound_pruned_points: self.pruned,
            });
            self.dirty = false;
        }
    }
}

/// Deterministic convergence recorder, shared by an engine and its
/// clones (a batched branch-and-bound search accumulates one curve
/// across batches). The engine calls [`ConvergenceRecorder::observe`]
/// from its single-threaded result-reassembly loop; the search strategy
/// brackets a run with [`ConvergenceRecorder::reset`] and
/// [`ConvergenceRecorder::finish`].
#[derive(Debug, Default)]
pub struct ConvergenceRecorder {
    state: Mutex<RecorderState>,
}

impl ConvergenceRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop everything recorded so far; called at the start of a search
    /// so one engine can serve several runs.
    pub fn reset(&self) {
        *self.state.lock().unwrap() = RecorderState::default();
    }

    /// Record one timed candidate. `sims_completed` is the cumulative
    /// timed-candidate count, `fresh_unique` marks the first accepted
    /// result backed by a fresh simulation of its unique, and
    /// `bound_pruned_points` is the current pruning high-water mark.
    /// Samples are taken on incumbent improvement and every
    /// [`SAMPLE_INTERVAL`] sims.
    pub fn observe(
        &self,
        sims_completed: u64,
        fresh_unique: bool,
        time_ms: f64,
        bound_pruned_points: u64,
    ) {
        let mut s = self.state.lock().unwrap();
        s.sims = sims_completed;
        if fresh_unique {
            s.unique += 1;
        }
        s.pruned = s.pruned.max(bound_pruned_points);
        s.dirty = true;
        let improved = s.best.is_none_or(|b| time_ms < b);
        if improved {
            s.best = Some(time_ms);
        }
        if improved || sims_completed.is_multiple_of(SAMPLE_INTERVAL) {
            s.push_sample();
        }
    }

    /// Close the curve: fold in the final pruning count and append a
    /// terminal sample if anything advanced since the last one.
    pub fn finish(&self, bound_pruned_points: u64) {
        let mut s = self.state.lock().unwrap();
        if bound_pruned_points > s.pruned {
            s.pruned = bound_pruned_points;
            s.dirty = true;
        }
        if s.dirty {
            s.push_sample();
        }
    }

    /// Snapshot the recorded curve.
    pub fn curve(&self) -> ConvergenceCurve {
        ConvergenceCurve { samples: self.state.lock().unwrap().samples.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(times: &[f64]) -> ConvergenceCurve {
        let r = ConvergenceRecorder::new();
        for (i, &t) in times.iter().enumerate() {
            r.observe(i as u64 + 1, true, t, 0);
        }
        r.finish(0);
        r.curve()
    }

    #[test]
    fn samples_on_improvement_and_at_the_end() {
        let c = record(&[9.0, 7.0, 8.0, 6.5, 7.7]);
        // Improvements at sims 1, 2, 4; terminal sample at 5.
        let sims: Vec<u64> = c.samples.iter().map(|s| s.sims).collect();
        assert_eq!(sims, vec![1, 2, 4, 5]);
        let best: Vec<f64> = c.samples.iter().map(|s| s.best_time_ms).collect();
        assert_eq!(best, vec![9.0, 7.0, 6.5, 6.5]);
        assert_eq!(c.samples.last().unwrap().unique_sims, 5);
        assert_eq!(c.sims_to_optimum(), Some(4));
        assert_eq!(c.unique_to_optimum(), Some(4));
    }

    #[test]
    fn sims_to_within_finds_the_exact_crossing() {
        let c = record(&[9.0, 7.0, 8.0, 6.5, 7.7]);
        assert_eq!(c.sims_to_within(9.5), Some(1));
        assert_eq!(c.sims_to_within(7.0), Some(2));
        // 6.9 is only reached by the 6.5 improvement at sims 4.
        assert_eq!(c.sims_to_within(6.9), Some(4));
        assert_eq!(c.sims_to_within(6.0), None);
        assert_eq!(ConvergenceCurve::default().sims_to_within(1.0), None);
    }

    #[test]
    fn interval_sampling_catches_flat_stretches() {
        let r = ConvergenceRecorder::new();
        r.observe(1, true, 5.0, 0);
        for sims in 2..=(SAMPLE_INTERVAL * 2 + 1) {
            r.observe(sims, true, 5.0 + sims as f64, 0);
        }
        r.finish(0);
        let sims: Vec<u64> = r.curve().samples.iter().map(|s| s.sims).collect();
        assert_eq!(sims, vec![1, SAMPLE_INTERVAL, SAMPLE_INTERVAL * 2, SAMPLE_INTERVAL * 2 + 1]);
    }

    #[test]
    fn memoized_results_do_not_advance_unique_sims() {
        let r = ConvergenceRecorder::new();
        r.observe(1, true, 4.0, 0);
        r.observe(2, false, 4.0, 0);
        r.observe(3, false, 3.0, 0);
        r.finish(0);
        let c = r.curve();
        assert_eq!(c.samples.last().unwrap().unique_sims, 1);
        assert_eq!(c.sims_to_optimum(), Some(3));
        assert_eq!(c.unique_to_optimum(), Some(1));
    }

    #[test]
    fn finish_records_late_pruning_without_double_sampling() {
        let r = ConvergenceRecorder::new();
        r.observe(1, true, 2.0, 10);
        r.finish(90);
        r.finish(90); // idempotent
        let c = r.curve();
        assert_eq!(c.samples.len(), 2);
        assert_eq!(c.samples[0].bound_pruned_points, 10);
        assert_eq!(c.samples[1].bound_pruned_points, 90);
        assert_eq!(c.samples[1].sims, 1);
    }

    #[test]
    fn empty_search_yields_an_empty_curve() {
        let r = ConvergenceRecorder::new();
        r.finish(7);
        assert!(r.curve().is_empty());
        assert_eq!(r.curve().sims_to_optimum(), None);
    }

    #[test]
    fn reset_clears_a_previous_run() {
        let r = ConvergenceRecorder::new();
        r.observe(1, true, 2.0, 0);
        r.finish(0);
        r.reset();
        r.observe(1, true, 9.0, 0);
        r.finish(0);
        let c = r.curve();
        assert_eq!(c.samples.len(), 1);
        assert_eq!(c.final_best_ms(), Some(9.0));
    }

    #[test]
    fn curve_round_trips_through_json_and_tolerates_absence() {
        let c = record(&[3.0, 2.5, 2.5]);
        let text = c.to_json().to_string_compact();
        let back = ConvergenceCurve::from_json(&super::super::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
        assert!(ConvergenceCurve::from_json_opt(None).unwrap().is_empty());
        assert!(ConvergenceCurve::from_json_opt(Some(&Json::Null)).unwrap().is_empty());
    }
}
