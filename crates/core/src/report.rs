//! Formatting helpers for the experiment harness: fixed-width tables and
//! ASCII scatter plots of the metric plane (the Figure 6 views), plus
//! the human-readable profile summary of an engine-metrics snapshot.

use crate::obs::{EngineMetrics, Histogram};
use crate::pareto::Point;

/// Render a fixed-width table. The first row is the header; every
/// column is left-aligned.
///
/// # Examples
///
/// ```
/// let t = optspace::report::table(&[
///     vec!["kernel".into(), "time".into()],
///     vec!["mm".into(), "4.2".into()],
/// ]);
/// assert!(t.contains("kernel"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn table(rows: &[Vec<String>]) -> String {
    table_aligned(rows, &[])
}

/// [`table`] with per-column alignment: columns flagged `true` in
/// `right_align` pad on the left, so numeric columns keep a straight
/// right edge no matter how wide an individual value grows. Columns
/// beyond the slice are left-aligned.
pub fn table_aligned(rows: &[Vec<String>], right_align: &[bool]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (c, width) in widths.iter().enumerate() {
            let cell = row.get(c).map(String::as_str).unwrap_or("");
            if right_align.get(c).copied().unwrap_or(false) {
                line.push_str(&format!("{cell:>width$}"));
            } else {
                line.push_str(&format!("{cell:<width$}"));
            }
            if c + 1 < cols {
                line.push_str("  ");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Normalise points so the maximum of each axis is 1 (the Figure 6
/// presentation). Zero-maximum axes stay at zero.
pub fn normalize(points: &[Point]) -> Vec<Point> {
    let mx = points.iter().map(|p| p.x).fold(0.0f64, f64::max);
    let my = points.iter().map(|p| p.y).fold(0.0f64, f64::max);
    points
        .iter()
        .map(|p| Point {
            x: if mx > 0.0 { p.x / mx } else { 0.0 },
            y: if my > 0.0 { p.y / my } else { 0.0 },
        })
        .collect()
}

/// Render an ASCII scatter of normalised metric points, `width`×`height`
/// characters (each clamped to at least 1). Points in `highlight` render
/// as `*`, the rest as `·`; a point in both renders as `*`. Marks the
/// optimum with `O` if given. Out-of-range `highlight`/`optimum` indices
/// are ignored rather than panicking — callers assemble them from search
/// reports whose shape this function cannot assume.
pub fn ascii_scatter(
    points: &[Point],
    highlight: &[usize],
    optimum: Option<usize>,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(1);
    let height = height.max(1);
    let pts = normalize(points);
    let mut grid = vec![vec![' '; width]; height];
    let place = |p: &Point| -> (usize, usize) {
        let col = (p.x * (width - 1) as f64).round() as usize;
        let row = (p.y * (height - 1) as f64).round() as usize;
        (height - 1 - row.min(height - 1), col.min(width - 1))
    };
    for p in &pts {
        let (r, c) = place(p);
        if grid[r][c] == ' ' {
            grid[r][c] = '.';
        }
    }
    for p in highlight.iter().filter_map(|&i| pts.get(i)) {
        let (r, c) = place(p);
        grid[r][c] = '*';
    }
    if let Some(p) = optimum.and_then(|i| pts.get(i)) {
        let (r, c) = place(p);
        grid[r][c] = 'O';
    }
    let mut out = String::new();
    out.push_str("utilization\n");
    for row in grid {
        out.push('|');
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("> efficiency\n");
    out
}

/// Percentage of `part` in `whole`, `-` when the whole is zero.
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Render the human-readable profile summary of one search's
/// [`EngineMetrics`]: evaluation counts and cache behaviour, the
/// simulated stall breakdown, and — when wall-clock data was collected —
/// per-phase wall time and worker utilization.
pub fn profile_table(m: &EngineMetrics) -> String {
    let mut rows: Vec<Vec<String>> = vec![vec!["metric".into(), "value".into(), "share".into()]];
    let mut row = |k: &str, v: String, s: String| rows.push(vec![k.into(), v, s]);
    row("static evals", m.static_evals.to_string(), String::new());
    row("timed candidates", m.timed.to_string(), String::new());
    row("sims executed", m.sims_executed.to_string(), pct(m.sims_executed, m.timed));
    row("sims memoized", m.sims_memoized.to_string(), pct(m.sims_memoized, m.timed));
    row("cache hit rate", format!("{:.1}%", 100.0 * m.cache_hit_rate()), String::new());
    row("family forks", m.family_forks.to_string(), String::new());
    row("family members", m.family_members.to_string(), String::new());
    row("retries", m.retries.to_string(), String::new());
    row("quarantined", m.quarantined.to_string(), String::new());
    if m.bound_pruned_subspaces > 0 || m.bound_pruned_points > 0 {
        row("bound-pruned subspaces", m.bound_pruned_subspaces.to_string(), String::new());
        row(
            "bound-pruned points",
            m.bound_pruned_points.to_string(),
            pct(m.bound_pruned_points, m.bound_pruned_points + m.static_evals),
        );
    }
    if m.store_hits > 0 || m.store_records_dropped > 0 {
        row("store hits", m.store_hits.to_string(), pct(m.store_hits, m.timed));
        row("store dropped records", m.store_records_dropped.to_string(), String::new());
    }
    row("fuel consumed", m.fuel_consumed.to_string(), String::new());
    row("sim cycles", m.sim_cycles.to_string(), String::new());
    let stalls = m.stall_total_cycles();
    row("stall cycles", stalls.to_string(), pct(stalls, m.sim_cycles));
    row("  memory", m.stall_mem_cycles.to_string(), pct(m.stall_mem_cycles, stalls.max(1)));
    row("  sfu", m.stall_sfu_cycles.to_string(), pct(m.stall_sfu_cycles, stalls.max(1)));
    row("  arithmetic", m.stall_arith_cycles.to_string(), pct(m.stall_arith_cycles, stalls.max(1)));
    row("  other", m.stall_other_cycles.to_string(), pct(m.stall_other_cycles, stalls.max(1)));
    if !m.convergence.is_empty() {
        row("convergence samples", m.convergence.samples.len().to_string(), String::new());
        if let Some(s) = m.convergence.sims_to_optimum() {
            row("sims to optimum", s.to_string(), pct(s, m.timed));
        }
        if let Some(u) = m.convergence.unique_to_optimum() {
            row("unique sims to optimum", u.to_string(), pct(u, m.sims_executed));
        }
    }
    let rt = &m.runtime;
    if rt.static_wall_us + rt.timing_wall_us > 0 {
        let wall = rt.static_wall_us + rt.timing_wall_us;
        row("jobs", rt.jobs.to_string(), String::new());
        row("static wall", fmt_ms(rt.static_wall_us as f64 / 1e3), pct(rt.static_wall_us, wall));
        row("timing wall", fmt_ms(rt.timing_wall_us as f64 / 1e3), pct(rt.timing_wall_us, wall));
        row("worker busy", fmt_ms(rt.worker_busy_us as f64 / 1e3), String::new());
        row(
            "worker utilization",
            format!("{:.1}%", 100.0 * rt.worker_utilization()),
            String::new(),
        );
        row("workers spawned", rt.workers_spawned.to_string(), String::new());
        if rt.workers_respawned > 0 {
            row("workers respawned", rt.workers_respawned.to_string(), String::new());
        }
    }
    let lat = |h: &Histogram| {
        format!("p50 {} / p95 {}", fmt_us(h.percentile_us(0.5)), fmt_us(h.percentile_us(0.95)))
    };
    if rt.sim_duration_hist.count() > 0 {
        row("sim latency", lat(&rt.sim_duration_hist), String::new());
    }
    if rt.cache_lookup_hist.count() > 0 {
        row("cache lookup latency", lat(&rt.cache_lookup_hist), String::new());
    }
    if rt.store_io_hist.count() > 0 {
        row("store io latency", lat(&rt.store_io_hist), String::new());
    }
    if rt.decode_hist.count() > 0 {
        row("decode latency", lat(&rt.decode_hist), String::new());
    }
    // Numeric value and share columns keep a straight right edge even
    // when a fine-grid count outgrows the header width.
    table_aligned(&rows, &[false, true, true])
}

/// Format milliseconds with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} us", ms * 1e3)
    }
}

/// Format a microsecond value with adaptive precision.
pub fn fmt_us(us: u64) -> String {
    fmt_ms(us as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t =
            table(&[vec!["a".into(), "long-header".into()], vec!["wide-cell".into(), "x".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        // Columns aligned: both data rows start the 2nd column at the
        // same offset.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('x'));
    }

    #[test]
    fn empty_table() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn right_aligned_columns_keep_a_straight_right_edge() {
        let t = table_aligned(
            &[
                vec!["metric".into(), "value".into()],
                vec!["short".into(), "7".into()],
                vec!["long".into(), "123456789012".into()],
            ],
            &[false, true],
        );
        assert_eq!(
            t,
            "metric         value\n\
             --------------------\n\
             short              7\n\
             long    123456789012\n"
        );
    }

    #[test]
    fn profile_values_stay_aligned_when_a_count_outgrows_its_column() {
        // A fine-grid-scale count must not shift the value column: the
        // value cells of share-less rows end at the same offset.
        let m = EngineMetrics {
            static_evals: 10,
            timed: 8,
            sims_executed: 2,
            sims_memoized: 6,
            fuel_consumed: 123_456_789_012_345,
            sim_cycles: 7,
            ..Default::default()
        };
        let t = profile_table(&m);
        let end =
            |key: &str| t.lines().find(|l| l.starts_with(key)).map(|l| l.trim_end().len()).unwrap();
        assert_eq!(end("fuel consumed"), end("family forks"));
    }

    #[test]
    fn normalize_scales_max_to_one() {
        let pts = vec![Point::new(2.0, 10.0), Point::new(1.0, 5.0)];
        let n = normalize(&pts);
        assert_eq!(n[0].x, 1.0);
        assert_eq!(n[0].y, 1.0);
        assert_eq!(n[1].x, 0.5);
        assert_eq!(n[1].y, 0.5);
    }

    #[test]
    fn normalize_handles_zero_axis() {
        let pts = vec![Point::new(0.0, 0.0)];
        let n = normalize(&pts);
        assert_eq!(n[0].x, 0.0);
    }

    #[test]
    fn scatter_marks_pareto_and_optimum() {
        let pts = vec![Point::new(1.0, 0.2), Point::new(0.2, 1.0), Point::new(0.5, 0.5)];
        let s = ascii_scatter(&pts, &[0, 1], Some(2), 20, 10);
        assert!(s.contains('*'));
        assert!(s.contains('O'));
        assert!(s.contains("efficiency"));
    }

    #[test]
    fn degenerate_tables_and_scatters_do_not_panic() {
        // All-empty rows: zero columns.
        assert!(table(&[vec![], vec![]]).contains('\n'));
        // Zero-sized canvas and out-of-range indices are tolerated.
        let pts = vec![Point::new(1.0, 0.5)];
        let s = ascii_scatter(&pts, &[0, 99], Some(42), 0, 0);
        assert!(s.contains("efficiency"));
        // Empty point set.
        assert!(ascii_scatter(&[], &[], None, 10, 5).contains("efficiency"));
    }

    #[test]
    fn profile_table_renders_and_hides_empty_runtime() {
        let mut m = EngineMetrics {
            static_evals: 10,
            timed: 8,
            sims_executed: 2,
            sims_memoized: 6,
            sim_cycles: 1_000,
            stall_mem_cycles: 100,
            stall_arith_cycles: 50,
            ..Default::default()
        };
        let t = profile_table(&m);
        assert!(t.contains("cache hit rate"));
        assert!(t.contains("75.0%"));
        assert!(!t.contains("worker utilization"), "no runtime data yet:\n{t}");
        assert!(!t.contains("bound-pruned"), "no bound pruning happened:\n{t}");
        m.bound_pruned_subspaces = 3;
        m.bound_pruned_points = 90;
        let t = profile_table(&m);
        assert!(t.contains("bound-pruned subspaces"));
        assert!(t.contains("90.0%"), "90 pruned of 100 considered:\n{t}");
        m.bound_pruned_subspaces = 0;
        m.bound_pruned_points = 0;
        m.runtime.jobs = 4;
        m.runtime.static_wall_us = 500;
        m.runtime.timing_wall_us = 1_500;
        m.runtime.worker_busy_us = 4_000;
        let t = profile_table(&m);
        assert!(t.contains("worker utilization"));
        assert!(t.contains("50.0%"), "busy 4ms over 4×2ms capacity:\n{t}");
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(250.0), "250 ms");
        assert_eq!(fmt_ms(4.25), "4.25 ms");
        assert_eq!(fmt_ms(0.5), "500.0 us");
    }
}
