//! The paper's two performance metrics (section 4).
//!
//! **Efficiency** (Equation 1) estimates how much total work a
//! configuration performs:
//!
//! ```text
//! Efficiency = 1 / (Instr × Threads)
//! ```
//!
//! **Utilization** (Equation 2) estimates how well the compute resources
//! stay fed while warps block:
//!
//! ```text
//! Utilization = (Instr / Regions) × [ (W_TB − 1)/2 + (B_SM − 1)·W_TB ]
//! ```
//!
//! `Instr` is dynamic instructions per thread, `Regions` the number of
//! blocking-delimited intervals, `W_TB` warps per block, `B_SM` resident
//! blocks per SM. "The relative values of these metrics among different
//! configurations is more meaningful than their absolute values."

use gpu_arch::{LaunchError, MachineSpec, Occupancy, ResourceUsage};
use gpu_ir::analysis::{dynamic_counts, instruction_mix, register_pressure, InstrMix};
use gpu_ir::{Kernel, Launch};

/// The static inputs to both metrics, extracted from `-ptx`/`-cubin`
/// analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticProfile {
    /// Dynamic instructions per thread (`Instr`).
    pub instr: u64,
    /// Blocking-delimited intervals (`Regions`).
    pub regions: u64,
    /// Warps per thread block (`W_TB`).
    pub warps_per_block: u32,
    /// Resident blocks per SM (`B_SM`).
    pub blocks_per_sm: u32,
    /// Total threads launched (`Threads`).
    pub total_threads: u64,
}

/// Knobs for metric variants, used by the ablation benches and the
/// future-work extensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsOptions {
    /// Divide the same-block warp term by two (the paper's barrier
    /// half-progress argument). Disabling this is the `ablation_halfterm`
    /// experiment.
    pub barrier_half_term: bool,
    /// The paper's §7 second future-work item: "account for factors such
    /// as memory access coalescing ... so that they may be more
    /// effective predictors of performance". When set, every uncoalesced
    /// off-chip access is charged as the 16 serialized transactions the
    /// G80 actually issues per half-warp, inflating `Instr` (and thus
    /// deflating Efficiency) for layouts the hardware punishes.
    pub coalescing_aware: bool,
}

impl Default for MetricsOptions {
    fn default() -> Self {
        Self { barrier_half_term: true, coalescing_aware: false }
    }
}

/// The two metric values for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Equation 1. Higher is better.
    pub efficiency: f64,
    /// Equation 2. Higher is better.
    pub utilization: f64,
}

impl Metrics {
    /// Compute both metrics from a profile with default options.
    pub fn from_profile(p: &StaticProfile) -> Self {
        Self::from_profile_with(p, MetricsOptions::default())
    }

    /// Compute both metrics with explicit [`MetricsOptions`].
    pub fn from_profile_with(p: &StaticProfile, opts: MetricsOptions) -> Self {
        let efficiency = 1.0 / (p.instr as f64 * p.total_threads as f64);
        let wtb = f64::from(p.warps_per_block);
        let bsm = f64::from(p.blocks_per_sm);
        let same_block = if opts.barrier_half_term { (wtb - 1.0) / 2.0 } else { wtb - 1.0 };
        let other_blocks = (bsm - 1.0) * wtb;
        let utilization = p.instr as f64 / p.regions as f64 * (same_block + other_blocks);
        Self { efficiency, utilization }
    }

    /// The plotted point `(efficiency, utilization)`.
    pub fn point(&self) -> crate::pareto::Point {
        crate::pareto::Point { x: self.efficiency, y: self.utilization }
    }
}

/// Everything the static "compilation" of one kernel produces: the
/// analog of running `nvcc -ptx -cubin` and the occupancy arithmetic of
/// section 2.2.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Metric inputs.
    pub profile: StaticProfile,
    /// `-cubin`-style resource usage.
    pub usage: ResourceUsage,
    /// Resident-blocks calculation.
    pub occupancy: Occupancy,
    /// Dynamic instruction mix (for the bandwidth screen).
    pub mix: InstrMix,
}

/// Statically profile `kernel` under `launch` on `spec`.
///
/// # Errors
///
/// Returns the occupancy [`LaunchError`] for configurations that cannot
/// execute (the paper's "invalid executable", e.g. prefetching pushing
/// register usage past the file size).
pub fn profile_kernel(
    kernel: &Kernel,
    launch: &Launch,
    spec: &MachineSpec,
) -> Result<KernelProfile, LaunchError> {
    // A zero-extent grid dimension runs no thread at all; the block side
    // of the same degeneracy falls out of the occupancy arithmetic as
    // `EmptyBlock` (zero threads per block), but the grid never reaches
    // it, so reject it here.
    if launch.grid.is_empty() {
        return Err(LaunchError::EmptyGrid);
    }
    let counts = dynamic_counts(kernel);
    let pressure = register_pressure(kernel);
    let mix = instruction_mix(kernel);
    let usage =
        ResourceUsage::new(launch.threads_per_block(), pressure.regs_per_thread, kernel.smem_bytes);
    let occupancy = spec.occupancy(&usage)?;
    Ok(KernelProfile {
        profile: StaticProfile {
            instr: counts.instrs,
            regions: counts.regions(),
            warps_per_block: occupancy.warps_per_block,
            blocks_per_sm: occupancy.blocks_per_sm,
            total_threads: launch.total_threads(),
        },
        usage,
        occupancy,
        mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::Dim;

    #[test]
    fn worked_example_matches_paper() {
        // Section 4: Instr = 15150, Regions = 769, W_TB = 8, B_SM = 2,
        // Threads = 2^24 -> Efficiency = 3.93e-12, Utilization = 227.
        let p = StaticProfile {
            instr: 15_150,
            regions: 769,
            warps_per_block: 8,
            blocks_per_sm: 2,
            total_threads: 1 << 24,
        };
        let m = Metrics::from_profile(&p);
        assert!((m.efficiency / 3.933e-12 - 1.0).abs() < 1e-3, "{}", m.efficiency);
        assert!((m.utilization - 226.56).abs() < 0.1, "{}", m.utilization);
    }

    #[test]
    fn efficiency_improves_with_fewer_instructions() {
        let mk = |instr| StaticProfile {
            instr,
            regions: 10,
            warps_per_block: 8,
            blocks_per_sm: 2,
            total_threads: 1 << 20,
        };
        let fast = Metrics::from_profile(&mk(1000));
        let slow = Metrics::from_profile(&mk(2000));
        assert!(fast.efficiency > slow.efficiency);
    }

    #[test]
    fn utilization_zero_when_single_warp_single_block() {
        let p = StaticProfile {
            instr: 1000,
            regions: 10,
            warps_per_block: 1,
            blocks_per_sm: 1,
            total_threads: 32,
        };
        let m = Metrics::from_profile(&p);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn utilization_rewards_more_blocks() {
        let mk = |bsm| StaticProfile {
            instr: 1000,
            regions: 10,
            warps_per_block: 8,
            blocks_per_sm: bsm,
            total_threads: 1 << 20,
        };
        let one = Metrics::from_profile(&mk(1));
        let three = Metrics::from_profile(&mk(3));
        assert!(three.utilization > one.utilization);
    }

    #[test]
    fn half_term_ablation_changes_only_same_block_share() {
        let p = StaticProfile {
            instr: 1000,
            regions: 10,
            warps_per_block: 9,
            blocks_per_sm: 1,
            total_threads: 1 << 20,
        };
        let half = Metrics::from_profile(&p);
        let full = Metrics::from_profile_with(
            &p,
            MetricsOptions { barrier_half_term: false, ..Default::default() },
        );
        assert!((full.utilization / half.utilization - 2.0).abs() < 1e-12);
    }

    #[test]
    fn profile_kernel_pipeline_end_to_end() {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(10, |b| {
            let x = b.ld_global(p, 0);
            b.fmad_acc(x, 2.0f32, acc);
            b.sync();
        });
        b.st_global(p, 0, acc);
        let k = b.finish();
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(256));
        let spec = MachineSpec::geforce_8800_gtx();
        let kp = profile_kernel(&k, &launch, &spec).unwrap();
        assert_eq!(kp.profile.warps_per_block, 8);
        assert_eq!(kp.profile.total_threads, 64 * 256);
        // 2 prologue + 10 * (2 + 1 sync + 3 overhead) + 1 store
        assert_eq!(kp.profile.instr, 2 + 10 * 6 + 1);
        // one load unit + one sync per iteration + 1
        assert_eq!(kp.profile.regions, 21);
        assert!(kp.usage.regs_per_thread >= 2);
    }

    #[test]
    fn invalid_kernel_is_a_launch_error() {
        // Build a kernel with enormous register pressure at 512 threads.
        let mut b = KernelBuilder::new("fat");
        let p = b.param(0);
        let vals: Vec<_> = (0..40).map(|i| b.ld_global(p, i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.fadd(acc, v);
        }
        b.st_global(p, 0, acc);
        let k = b.finish();
        let launch = Launch::new(Dim::new_1d(4), Dim::new_1d(512));
        let err = profile_kernel(&k, &launch, &MachineSpec::geforce_8800_gtx()).unwrap_err();
        assert!(matches!(err, LaunchError::RegistersExhausted { .. }));
    }
}
