//! The iterative search-strategy zoo: feedback-driven optimizers over
//! the [`Space`]/`Point` layer, executed through
//! [`crate::tuner::run_iterative`].
//!
//! Each strategy is a pure *policy*: it proposes batches of dense
//! candidate indices and digests the observed timing results; all
//! evaluation mechanics (parallel simulation, memoization, budgets,
//! fault handling) stay in the engine's round driver. This is the study
//! of *Benchmarking optimization algorithms for auto-tuning GPU
//! kernels* (arXiv 2210.01465) with the simulator supplying ground
//! truth:
//!
//! * [`HillClimb`] — steepest-descent hill climbing with random
//!   restarts; the neighborhood is ±1 step per axis grid rank.
//! * [`Annealing`] — simulated annealing: a random-neighbor walk with
//!   Metropolis acceptance under a geometric cooling schedule.
//! * [`Genetic`] — a generational strategy with axis-wise crossover,
//!   ±1-step mutation, and random immigrants.
//! * [`Surrogate`] — rank every unvisited point by
//!   [`model::predict_ms_static`] and evaluate in predicted order.
//!
//! Determinism contract (shared with the engine driver): all
//! randomness inside a round is drawn from `round_rng(seed, round)`
//! — a pure function of the strategy seed and the round index
//! — and every other piece of state evolves only from observed times,
//! which are themselves byte-identical at any worker count. Seeded
//! strategies put both budget and seed in their [`IterativeStrategy::name`].

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::candidate::Evaluated;
use crate::model;
use crate::space::Space;
use crate::tuner::{IterationContext, IterativeStrategy, Observation};

/// The zoo's CLI `--strategy` names, in table order.
pub const NAMES: [&str; 4] = ["hill", "anneal", "genetic", "surrogate"];

/// Construct a zoo strategy by its CLI name; `None` for names the zoo
/// does not know. `seed` is ignored by the deterministic [`Surrogate`].
///
/// # Panics
///
/// Panics if `budget` is zero (all zoo strategies are budgeted).
pub fn by_name(
    name: &str,
    space: &Space,
    budget: usize,
    seed: u64,
) -> Option<Box<dyn IterativeStrategy>> {
    Some(match name {
        "hill" => Box::new(HillClimb::new(space.clone(), budget, seed)),
        "anneal" => Box::new(Annealing::new(space.clone(), budget, seed)),
        "genetic" => Box::new(Genetic::new(space.clone(), budget, seed)),
        "surrogate" => Box::new(Surrogate::new(budget)),
        _ => return None,
    })
}

/// Per-round RNG: a pure function of `(seed, round)`. Strategies must
/// never carry RNG state across rounds — deriving each round's stream
/// fresh is what keeps replays and different `--jobs` runs
/// byte-identical.
fn round_rng(seed: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (round + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn assert_budget(budget: usize) {
    assert!(budget >= 1, "a budgeted strategy needs a budget >= 1");
}

/// Mixed-radix decode of a full-grid rank into per-axis value indices
/// (last axis varies fastest, matching the space's enumeration order).
fn decode(mut rank: usize, radices: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; radices.len()];
    for (i, &r) in radices.iter().enumerate().rev() {
        coords[i] = rank % r;
        rank /= r;
    }
    coords
}

/// Mixed-radix encode, the inverse of [`decode`].
fn encode(coords: &[usize], radices: &[usize]) -> usize {
    coords.iter().zip(radices).fold(0usize, |rank, (&c, &r)| rank * r + c)
}

/// The structured view every grid-walking strategy shares: dense
/// candidate indices mapped onto the axis grid, with validity taken
/// from the static phase (an invalid point is a wall, not a state).
struct Topology {
    /// Axis domain sizes (mixed radix).
    radices: Vec<usize>,
    /// Per dense index, axis value-index coordinates.
    coords: Vec<Vec<usize>>,
    /// Full-grid rank → dense index, admitted points only.
    dense_of: HashMap<usize, usize>,
    /// Valid dense indices, ascending.
    valid: Vec<usize>,
    /// Validity flag per dense index.
    is_valid: Vec<bool>,
}

impl Topology {
    fn build(space: &Space, statics: &[Option<Evaluated>]) -> Self {
        assert_eq!(
            space.len(),
            statics.len(),
            "iterative zoo strategies search the full declared space; \
             run them without --filter/--sample narrowing"
        );
        let radices: Vec<usize> = space.axes().iter().map(|a| a.values().len()).collect();
        let mut coords = Vec::with_capacity(space.len());
        let mut dense_of = HashMap::new();
        // Completions carry full-grid ranks; enumeration position is the
        // dense report index (the same mapping branch-and-bound uses).
        for (dense, p) in space.partial().completions().enumerate() {
            dense_of.insert(p.ordinal(), dense);
            coords.push(decode(p.ordinal(), &radices));
        }
        let is_valid: Vec<bool> = statics.iter().map(Option::is_some).collect();
        let valid = is_valid.iter().enumerate().filter_map(|(i, &v)| v.then_some(i)).collect();
        Self { radices, coords, dense_of, valid, is_valid }
    }

    /// Valid grid-adjacent neighbors (±1 value step on exactly one
    /// axis) of `dense`, in deterministic axis-major minus-then-plus
    /// order. Constraint-excluded and statically invalid points are
    /// skipped.
    fn neighbors(&self, dense: usize) -> Vec<usize> {
        let coords = &self.coords[dense];
        let mut out = Vec::new();
        for axis in 0..self.radices.len() {
            for delta in [-1i64, 1] {
                let moved = coords[axis] as i64 + delta;
                if moved < 0 || moved >= self.radices[axis] as i64 {
                    continue;
                }
                let mut n = coords.clone();
                n[axis] = moved as usize;
                if let Some(&d) = self.dense_of.get(&encode(&n, &self.radices)) {
                    if self.is_valid[d] {
                        out.push(d);
                    }
                }
            }
        }
        out
    }

    /// Valid indices not yet in `proposed`, ascending.
    fn fresh(&self, proposed: &HashSet<usize>) -> Vec<usize> {
        self.valid.iter().copied().filter(|i| !proposed.contains(i)).collect()
    }
}

/// Steepest-descent hill climbing with random restarts.
///
/// Each climb proposes *all* unvisited neighbors of the current point
/// in one batch (they time in parallel), moves to the best observed
/// improvement, and restarts from a fresh random point when the
/// neighborhood offers none. A failed (quarantined) start or neighbor
/// is simply a wall.
pub struct HillClimb {
    space: Space,
    budget: usize,
    seed: u64,
    topo: Option<Topology>,
    round: u64,
    left: usize,
    proposed: HashSet<usize>,
    /// Current position and its observed time; `None` while starting
    /// or restarting.
    current: Option<(usize, f64)>,
    /// A fresh start proposed last round, awaiting its observation.
    starting: Option<usize>,
}

impl HillClimb {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(space: Space, budget: usize, seed: u64) -> Self {
        assert_budget(budget);
        Self {
            space,
            budget,
            seed,
            topo: None,
            round: 0,
            left: budget,
            proposed: HashSet::new(),
            current: None,
            starting: None,
        }
    }
}

impl IterativeStrategy for HillClimb {
    fn name(&self) -> String {
        format!("hill-{}-s{}", self.budget, self.seed)
    }

    fn begin(&mut self, ctx: &IterationContext) {
        self.topo = Some(Topology::build(&self.space, ctx.statics));
        self.round = 0;
        self.left = self.budget;
        self.proposed.clear();
        self.current = None;
        self.starting = None;
    }

    fn propose(&mut self, observed: &[Observation]) -> Vec<usize> {
        let topo = self.topo.as_ref().expect("begin() before propose()");
        let rng = &mut round_rng(self.seed, self.round);
        self.round += 1;
        // Digest the previous round.
        if let Some(start) = self.starting.take() {
            if let Some(t) = observed.iter().find(|o| o.candidate == start).and_then(|o| o.time_ms)
            {
                self.current = Some((start, t));
            }
        } else if let Some((_, cur_t)) = self.current {
            let best = observed
                .iter()
                .filter_map(|o| o.time_ms.map(|t| (o.candidate, t)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            match best {
                Some((i, t)) if t < cur_t => self.current = Some((i, t)),
                // No improving neighbor: a local optimum — restart.
                _ => self.current = None,
            }
        }
        // Produce the next batch: climb, or restart on a fresh point.
        loop {
            if self.left == 0 {
                return Vec::new();
            }
            match self.current {
                Some((at, _)) => {
                    let mut batch: Vec<usize> = topo
                        .neighbors(at)
                        .into_iter()
                        .filter(|n| !self.proposed.contains(n))
                        .collect();
                    batch.truncate(self.left);
                    if batch.is_empty() {
                        // Fully explored neighborhood: restart.
                        self.current = None;
                        continue;
                    }
                    self.left -= batch.len();
                    self.proposed.extend(batch.iter().copied());
                    return batch;
                }
                None => {
                    let fresh = topo.fresh(&self.proposed);
                    if fresh.is_empty() {
                        return Vec::new();
                    }
                    let pick = fresh[rng.gen_range(0..fresh.len())];
                    self.proposed.insert(pick);
                    self.left -= 1;
                    self.starting = Some(pick);
                    return vec![pick];
                }
            }
        }
    }
}

/// Simulated annealing: a random-neighbor walk with Metropolis
/// acceptance on *relative* time deltas (`exp(-(t/cur - 1)/T)`, so one
/// temperature schedule serves every application's time scale) and a
/// geometric cooling schedule.
///
/// The chain warm-starts from the best of a small random init batch —
/// on large grids a cold single chain diffuses a few ±1 steps from
/// wherever it happened to land and never leaves a bad basin.
/// Already-evaluated neighbors are revisited from the strategy's own
/// memory — the protocol forbids re-proposing decided candidates — so
/// each round walks until it reaches a point the engine has not timed
/// yet; a walk stuck in known territory jumps back to the incumbent
/// best first and to a fresh random point after that.
pub struct Annealing {
    space: Space,
    budget: usize,
    seed: u64,
    /// Initial relative temperature.
    t0: f64,
    /// Geometric cooling factor per round.
    cooling: f64,
    topo: Option<Topology>,
    round: u64,
    left: usize,
    proposed: HashSet<usize>,
    /// Every decided outcome seen so far (`None` = failed), the walk's
    /// memory for in-place Metropolis steps over known points.
    times: HashMap<usize, Option<f64>>,
    current: Option<(usize, f64)>,
    /// Best observed result so far (the incumbent a stuck walk
    /// restarts from).
    best: Option<(usize, f64)>,
    /// Proposal awaiting its observation.
    pending: Option<usize>,
    /// Whether the warm-start init batch has been proposed.
    warmed: bool,
}

/// In-memory walk steps per round before the walk jumps to a fresh
/// random point instead (guards against circling a fully-known basin).
const MAX_WALK: usize = 64;

impl Annealing {
    /// Validated constructor with the default schedule
    /// (`T₀ = 0.25`, cooling `0.92`).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(space: Space, budget: usize, seed: u64) -> Self {
        assert_budget(budget);
        Self {
            space,
            budget,
            seed,
            t0: 0.25,
            cooling: 0.92,
            topo: None,
            round: 0,
            left: budget,
            proposed: HashSet::new(),
            times: HashMap::new(),
            current: None,
            best: None,
            pending: None,
            warmed: false,
        }
    }

    fn accept(&mut self, cand: usize, t: f64, temp: f64, rng: &mut StdRng) {
        let accept = match self.current {
            None => true,
            Some((_, cur)) => t <= cur || rng.gen_range(0.0..1.0) < (-(t / cur - 1.0) / temp).exp(),
        };
        if accept {
            self.current = Some((cand, t));
        }
    }
}

impl IterativeStrategy for Annealing {
    fn name(&self) -> String {
        format!("anneal-{}-s{}", self.budget, self.seed)
    }

    fn begin(&mut self, ctx: &IterationContext) {
        self.topo = Some(Topology::build(&self.space, ctx.statics));
        self.round = 0;
        self.left = self.budget;
        self.proposed.clear();
        self.times.clear();
        self.current = None;
        self.best = None;
        self.pending = None;
        self.warmed = false;
    }

    fn propose(&mut self, observed: &[Observation]) -> Vec<usize> {
        let rng = &mut round_rng(self.seed, self.round);
        self.round += 1;
        let temp = (self.t0 * self.cooling.powi(self.round as i32)).max(1e-6);
        for o in observed {
            self.times.insert(o.candidate, o.time_ms);
            if let Some(t) = o.time_ms {
                if self.best.is_none_or(|(_, b)| t < b) {
                    self.best = Some((o.candidate, t));
                }
            }
        }
        if !self.warmed {
            // Warm start: a small random init batch; the chain begins
            // from its best member next round.
            self.warmed = true;
            let topo = self.topo.as_ref().expect("begin() before propose()");
            let mut fresh = topo.fresh(&self.proposed);
            fresh.shuffle(rng);
            fresh.truncate(8.min(self.left));
            self.left -= fresh.len();
            self.proposed.extend(fresh.iter().copied());
            return fresh;
        }
        // Metropolis-decide the proposal from last round (a failure is
        // a rejected move: the walk stays put).
        if let Some(p) = self.pending.take() {
            if let Some(t) = self.times.get(&p).copied().flatten() {
                self.accept(p, t, temp, rng);
            }
        }
        if self.current.is_none() {
            // Adopt the incumbent (post-warm-start, or after every
            // observed proposal failed).
            self.current = self.best;
        }
        let mut steps = 0usize;
        let mut jumps = 0usize;
        loop {
            if self.left == 0 {
                return Vec::new();
            }
            let Some((at, _)) = self.current else {
                let topo = self.topo.as_ref().expect("begin() before propose()");
                let fresh = topo.fresh(&self.proposed);
                if fresh.is_empty() {
                    return Vec::new();
                }
                let pick = fresh[rng.gen_range(0..fresh.len())];
                self.proposed.insert(pick);
                self.left -= 1;
                self.pending = Some(pick);
                return vec![pick];
            };
            if steps >= MAX_WALK {
                // Circling known territory: restart from the incumbent
                // best once, then jump to a fresh random point.
                steps = 0;
                jumps += 1;
                self.current = if jumps == 1 { self.best } else { None };
                continue;
            }
            steps += 1;
            let topo = self.topo.as_ref().expect("begin() before propose()");
            let neighbors = topo.neighbors(at);
            if neighbors.is_empty() {
                self.current = None;
                continue;
            }
            let next = neighbors[rng.gen_range(0..neighbors.len())];
            match self.times.get(&next) {
                // Known result: take the Metropolis step in place and
                // keep walking — no engine round needed.
                Some(Some(t)) => {
                    let t = *t;
                    self.accept(next, t, temp, rng);
                }
                // Known failure: a rejected move.
                Some(None) => {}
                None => {
                    if self.proposed.contains(&next) {
                        // Proposed but never decided (budget-cut round):
                        // not re-proposable; treat as a wall.
                        continue;
                    }
                    self.proposed.insert(next);
                    self.left -= 1;
                    self.pending = Some(next);
                    return vec![next];
                }
            }
        }
    }
}

/// A generational genetic strategy: parents are the best half of every
/// result so far, children come from axis-wise crossover plus ±1-step
/// mutation, and random immigrants top up generations the operators
/// cannot fill (including the whole first one).
pub struct Genetic {
    space: Space,
    budget: usize,
    seed: u64,
    /// Generation size.
    population: usize,
    topo: Option<Topology>,
    round: u64,
    left: usize,
    proposed: HashSet<usize>,
    /// Evaluated successes `(dense index, time)` in observation order.
    fitness: Vec<(usize, f64)>,
}

impl Genetic {
    /// Validated constructor with the default generation size (12).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(space: Space, budget: usize, seed: u64) -> Self {
        assert_budget(budget);
        Self {
            space,
            budget,
            seed,
            population: 12,
            topo: None,
            round: 0,
            left: budget,
            proposed: HashSet::new(),
            fitness: Vec::new(),
        }
    }
}

impl IterativeStrategy for Genetic {
    fn name(&self) -> String {
        format!("genetic-{}-s{}", self.budget, self.seed)
    }

    fn begin(&mut self, ctx: &IterationContext) {
        self.topo = Some(Topology::build(&self.space, ctx.statics));
        self.round = 0;
        self.left = self.budget;
        self.proposed.clear();
        self.fitness.clear();
    }

    fn propose(&mut self, observed: &[Observation]) -> Vec<usize> {
        let topo = self.topo.as_ref().expect("begin() before propose()");
        let rng = &mut round_rng(self.seed, self.round);
        self.round += 1;
        for o in observed {
            if let Some(t) = o.time_ms {
                self.fitness.push((o.candidate, t));
            }
        }
        if self.left == 0 {
            return Vec::new();
        }
        let want = self.population.min(self.left);
        let mut batch: Vec<usize> = Vec::new();
        if self.fitness.len() >= 2 {
            let mut ranked = self.fitness.clone();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            ranked.truncate(self.population.div_ceil(2).max(2));
            let axes = topo.radices.len();
            let mut attempts = 0usize;
            while batch.len() < want && attempts < want * 20 {
                attempts += 1;
                let pa = &topo.coords[ranked[rng.gen_range(0..ranked.len())].0];
                let pb = &topo.coords[ranked[rng.gen_range(0..ranked.len())].0];
                // Axis-wise crossover...
                let mut child: Vec<usize> = pa
                    .iter()
                    .zip(pb)
                    .map(|(&a, &b)| if rng.gen_range(0..2u32) == 0 { a } else { b })
                    .collect();
                // ...then ±1-step mutation per axis with probability
                // 1/axes (one expected step per child).
                for (axis, c) in child.iter_mut().enumerate() {
                    if rng.gen_range(0.0..1.0) < 1.0 / axes as f64 {
                        let delta = if rng.gen_range(0..2u32) == 0 { -1i64 } else { 1 };
                        let moved = *c as i64 + delta;
                        if moved >= 0 && moved < topo.radices[axis] as i64 {
                            *c = moved as usize;
                        }
                    }
                }
                if let Some(&d) = topo.dense_of.get(&encode(&child, &topo.radices)) {
                    if topo.is_valid[d] && !self.proposed.contains(&d) && !batch.contains(&d) {
                        batch.push(d);
                    }
                }
            }
        }
        if batch.len() < want {
            // Immigrants: fresh uniform blood — and the entire first
            // generation.
            let mut fresh: Vec<usize> =
                topo.fresh(&self.proposed).into_iter().filter(|i| !batch.contains(i)).collect();
            fresh.shuffle(rng);
            batch.extend(fresh.into_iter().take(want - batch.len()));
        }
        if batch.is_empty() {
            return Vec::new();
        }
        self.left -= batch.len();
        self.proposed.extend(batch.iter().copied());
        batch
    }
}

/// Surrogate search: rank every valid point by the static cost model's
/// [`model::predict_ms_static`] and evaluate in predicted order, a
/// fixed batch per round. Fully deterministic — no seed, so none in the
/// name.
pub struct Surrogate {
    budget: usize,
    /// Proposals per round.
    batch: usize,
    ranking: Vec<usize>,
    cursor: usize,
    left: usize,
}

impl Surrogate {
    /// Validated constructor with the default batch size (8).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: usize) -> Self {
        assert_budget(budget);
        Self { budget, batch: 8, ranking: Vec::new(), cursor: 0, left: budget }
    }
}

impl IterativeStrategy for Surrogate {
    fn name(&self) -> String {
        format!("surrogate-{}", self.budget)
    }

    fn begin(&mut self, ctx: &IterationContext) {
        let mut ranked: Vec<(usize, f64)> = ctx
            .statics
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, model::predict_ms_static(e, ctx.spec))))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        self.ranking = ranked.into_iter().map(|(i, _)| i).collect();
        self.cursor = 0;
        self.left = self.budget;
    }

    fn propose(&mut self, _observed: &[Observation]) -> Vec<usize> {
        let take = self.batch.min(self.left).min(self.ranking.len() - self.cursor);
        let batch = self.ranking[self.cursor..self.cursor + take].to_vec();
        self.cursor += take;
        self.left -= take;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::space::PointBatch;
    use crate::tuner::{run_iterative, ExhaustiveSearch, SearchStrategy};
    use gpu_arch::MachineSpec;

    fn grid() -> Space {
        Space::builder()
            .axis("a", [0u32, 1, 2])
            .axis("b", [0u32, 1])
            .constraint("no (2,1)", |p| !(p.u32("a") == 2 && p.u32("b") == 1))
            .build()
    }

    #[test]
    fn topology_neighbors_respect_grid_and_constraints() {
        let space = grid();
        // 5 admitted points: (0,0) (0,1) (1,0) (1,1) (2,0).
        assert_eq!(space.len(), 5);
        let statics_len = space.len();
        // All valid for this test.
        let fake: Vec<Option<Evaluated>> = (0..statics_len).map(|_| None).collect();
        // Topology validity comes from statics; build with all-None and
        // check only the grid structure via dense_of/coords.
        let topo = Topology::build(&space, &fake);
        assert_eq!(topo.coords.len(), 5);
        // Dense 0 = (a=0,b=0): grid neighbors (0,1) and (1,0) exist but
        // are invalid (statics all None) — so none survive.
        assert!(topo.neighbors(0).is_empty());
        // Mark everything valid and re-check adjacency.
        let topo = Topology { is_valid: vec![true; 5], valid: (0..5).collect(), ..topo };
        // Dense order is lexicographic: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3 (2,0)=4.
        assert_eq!(topo.neighbors(0), vec![2, 1]);
        // (1,1) has neighbors (0,1), (1,0); (2,1) is constraint-excluded.
        assert_eq!(topo.neighbors(3), vec![1, 2]);
        // (2,0) has neighbor (1,0) only; (2,1) excluded.
        assert_eq!(topo.neighbors(4), vec![2]);
    }

    #[test]
    fn decode_encode_round_trip() {
        let radices = [3usize, 2, 4];
        for rank in 0..24 {
            assert_eq!(encode(&decode(rank, &radices), &radices), rank);
        }
    }

    #[test]
    #[should_panic(expected = "budget >= 1")]
    fn zero_budget_is_refused() {
        let _ = Surrogate::new(0);
    }

    #[test]
    fn zoo_finds_the_synthetic_optimum_with_a_full_budget() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = crate::tuner::tests::synthetic_structured();
        let inst = crate::tuner::tests::SyntheticInst;
        let source = PointBatch::new(space.points().collect(), &inst);
        let truth = ExhaustiveSearch
            .run_source(&EvalEngine::default(), &source, &spec)
            .best_time_ms()
            .expect("synthetic space has an optimum");
        for name in NAMES {
            let mut s = by_name(name, &space, space.len(), 0).expect("zoo name");
            let r = run_iterative(s.as_mut(), &EvalEngine::default(), &source, &spec);
            let got = r.best_time_ms().expect("found something");
            assert!(
                (got / truth - 1.0).abs() < 1e-9,
                "{name}: best {got} != exhaustive optimum {truth}"
            );
        }
    }
}
