//! Pareto-optimal subset selection (section 5.2).
//!
//! "We choose the small set of configurations that have no superior in
//! both the efficiency and utilization metric. This is the
//! Pareto-optimal subset … Visually, each point in this set has no other
//! point both above and to the right of it."
//!
//! Dominance is *weak*: `q` dominates `p` when `q ≥ p` in both
//! coordinates and `q > p` in at least one. Points with exactly equal
//! metrics (the clusters of Figure 6(b)) therefore survive together —
//! section 5.2 then notes a single representative per cluster may be
//! evaluated.

/// A metric point: `x` = efficiency, `y` = utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Efficiency coordinate (higher is better).
    pub x: f64,
    /// Utilization coordinate (higher is better).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Weak dominance: `self` is at least as good in both coordinates
    /// and strictly better in one.
    pub fn dominates(&self, other: &Point) -> bool {
        self.x >= other.x && self.y >= other.y && (self.x > other.x || self.y > other.y)
    }
}

/// Indices of the Pareto-optimal subset of `points`, in input order.
///
/// `O(n log n)`: sort by `x` descending (ties: `y` descending), sweep
/// keeping the running maximum `y`. A point is kept iff no point with
/// strictly larger `x` has `y ≥` its own **and** no point with equal `x`
/// has strictly larger `y`.
///
/// # Examples
///
/// ```
/// use optspace::pareto::{pareto_indices, Point};
///
/// let pts = vec![
///     Point::new(1.0, 0.1),
///     Point::new(0.5, 0.5),
///     Point::new(0.1, 1.0),
///     Point::new(0.4, 0.4), // dominated by (0.5, 0.5)
/// ];
/// assert_eq!(pareto_indices(&pts), vec![0, 1, 2]);
/// ```
pub fn pareto_indices(points: &[Point]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // total_cmp rather than partial_cmp: NaN coordinates (a degenerate
    // metric) get a consistent position instead of collapsing the whole
    // comparator to "equal", which would make the kept set depend on the
    // incoming order.
    order.sort_by(|&a, &b| {
        points[b].x.total_cmp(&points[a].x).then(points[b].y.total_cmp(&points[a].y))
    });

    let mut keep = Vec::new();
    let mut best_y = f64::NEG_INFINITY; // max y among strictly larger x
    let mut i = 0;
    while i < order.len() {
        // Group equal-x points. The first element belongs to its own
        // group unconditionally — comparing it against itself would
        // never terminate for NaN coordinates (NaN != NaN).
        let x = points[order[i]].x;
        let mut j = i + 1;
        while j < order.len() && points[order[j]].x == x {
            j += 1;
        }
        // Within the group, the max y is at position i (sorted desc).
        let group_max_y = points[order[i]].y;
        for &idx in &order[i..j] {
            let y = points[idx].y;
            // Dominated by a strictly-better-x point with y >= ours, or
            // by an equal-x point with strictly larger y.
            if y > best_y && y == group_max_y {
                keep.push(idx);
            } else if y > best_y && y < group_max_y {
                // equal x, smaller y: dominated within the group
            }
        }
        best_y = best_y.max(group_max_y);
        i = j;
    }
    keep.sort_unstable();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_pareto() {
        assert_eq!(pareto_indices(&[Point::new(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn staircase_retained() {
        let pts = vec![Point::new(3.0, 1.0), Point::new(2.0, 2.0), Point::new(1.0, 3.0)];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn dominated_interior_point_removed() {
        let pts = vec![
            Point::new(3.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.9, 1.9),
            Point::new(1.0, 3.0),
        ];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_of_pareto_point_all_kept() {
        // The Figure 6(b) clusters: identical metric values.
        let pts = vec![Point::new(2.0, 2.0), Point::new(2.0, 2.0), Point::new(1.0, 1.0)];
        assert_eq!(pareto_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn equal_x_smaller_y_is_dominated() {
        let pts = vec![Point::new(2.0, 2.0), Point::new(2.0, 1.0)];
        assert_eq!(pareto_indices(&pts), vec![0]);
    }

    #[test]
    fn equal_y_smaller_x_is_dominated() {
        let pts = vec![Point::new(2.0, 2.0), Point::new(1.0, 2.0)];
        assert_eq!(pareto_indices(&pts), vec![0]);
    }

    #[test]
    fn dominates_relation() {
        assert!(Point::new(2.0, 2.0).dominates(&Point::new(1.0, 2.0)));
        assert!(Point::new(2.0, 2.0).dominates(&Point::new(2.0, 1.0)));
        assert!(!Point::new(2.0, 2.0).dominates(&Point::new(2.0, 2.0)));
        assert!(!Point::new(2.0, 1.0).dominates(&Point::new(1.0, 2.0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec(
            (0u32..50, 0u32..50).prop_map(|(x, y)| Point::new(f64::from(x), f64::from(y))),
            0..60,
        )
    }

    proptest! {
        /// Nothing in the Pareto set is dominated by anything.
        #[test]
        fn pareto_set_is_undominated(pts in points_strategy()) {
            let keep = pareto_indices(&pts);
            for &k in &keep {
                for (j, q) in pts.iter().enumerate() {
                    if j != k {
                        prop_assert!(
                            !q.dominates(&pts[k]),
                            "kept point {k} {:?} dominated by {j} {q:?}",
                            pts[k]
                        );
                    }
                }
            }
        }

        /// Everything outside the set is dominated by something in it.
        #[test]
        fn excluded_points_are_dominated(pts in points_strategy()) {
            let keep = pareto_indices(&pts);
            for (j, p) in pts.iter().enumerate() {
                if keep.contains(&j) {
                    continue;
                }
                let dominated = keep.iter().any(|&k| pts[k].dominates(p));
                prop_assert!(dominated, "excluded point {j} {p:?} not dominated");
            }
        }

        /// The best point by any positive weighting of the two metrics is
        /// always in the set — the property the paper's search relies on.
        #[test]
        fn weighted_optimum_is_on_curve(
            pts in points_strategy(),
            wx in 1u32..10,
            wy in 1u32..10,
        ) {
            prop_assume!(!pts.is_empty());
            let score = |p: &Point| f64::from(wx) * p.x + f64::from(wy) * p.y;
            let best = (0..pts.len())
                .max_by(|&a, &b| score(&pts[a]).partial_cmp(&score(&pts[b])).unwrap())
                .unwrap();
            let keep = pareto_indices(&pts);
            let best_score = score(&pts[best]);
            prop_assert!(
                keep.iter().any(|&k| (score(&pts[k]) - best_score).abs() < 1e-9),
                "no kept point achieves the best weighted score"
            );
        }
    }
}
