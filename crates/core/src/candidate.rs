//! One optimization configuration and its static evaluation.

use gpu_arch::{LaunchError, MachineSpec};
use gpu_ir::{Kernel, Launch};

use crate::bandwidth::{self, BandwidthAssessment};
use crate::metrics::{profile_kernel, KernelProfile, Metrics, MetricsOptions};

/// A candidate configuration: a generated kernel plus its launch
/// geometry and a human-readable label describing the knob settings
/// (e.g. `"16x16/1x4/unroll=16/prefetch"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Knob-settings label for reports.
    pub label: String,
    /// The generated kernel (one invocation's worth of work).
    pub kernel: Kernel,
    /// Launch geometry for the paper-scale problem.
    pub launch: Launch,
    /// How many times the kernel is invoked to complete the application
    /// ("distribute work across multiple invocations of a kernel",
    /// section 3.1 — the MRI-FHD work-per-invocation knob). Metrics and
    /// simulated time scale by this factor.
    pub invocations: u32,
}

impl Candidate {
    /// Bundle a generated kernel with its launch (single invocation).
    pub fn new(label: impl Into<String>, kernel: Kernel, launch: Launch) -> Self {
        Self { label: label.into(), kernel, launch, invocations: 1 }
    }

    /// Builder-style setter for the invocation count.
    ///
    /// # Panics
    ///
    /// Panics if `invocations` is zero.
    pub fn with_invocations(mut self, invocations: u32) -> Self {
        assert!(invocations >= 1, "a kernel must be invoked at least once");
        self.invocations = invocations;
        self
    }

    /// Statically evaluate this candidate: run the `-ptx`/`-cubin`-style
    /// analyses, occupancy, metrics, and the bandwidth screen.
    ///
    /// # Errors
    ///
    /// Propagates [`LaunchError`] for invalid executables.
    pub fn evaluate(&self, spec: &MachineSpec) -> Result<Evaluated, LaunchError> {
        self.evaluate_with(spec, MetricsOptions::default())
    }

    /// [`Candidate::evaluate`] with explicit metric options (ablations).
    ///
    /// # Errors
    ///
    /// Propagates [`LaunchError`] for invalid executables.
    pub fn evaluate_with(
        &self,
        spec: &MachineSpec,
        opts: MetricsOptions,
    ) -> Result<Evaluated, LaunchError> {
        let mut kp = profile_kernel(&self.kernel, &self.launch, spec)?;
        // Whole-application figures: `invocations` identical launches.
        // Instr and Regions scale together, so Utilization's ratio is
        // untouched while Efficiency sees the full instruction bill —
        // which is why the MRI-FHD work-per-invocation clusters of
        // Figure 6(b) sit (almost) on a single point.
        kp.profile.instr *= u64::from(self.invocations);
        kp.profile.regions *= u64::from(self.invocations);
        let mut metrics = Metrics::from_profile_with(&kp.profile, opts);
        if opts.coalescing_aware {
            // Charge each uncoalesced access its half-warp serialization
            // (16 transactions instead of 1): +15 effective instruction
            // slots per access, in the *work* estimate only — serialized
            // transactions do not help hide anyone's latency, so
            // Utilization keeps the raw count.
            let penalty = u64::from(spec.warp_size / 2 - 1)
                * kp.mix.uncoalesced_accesses
                * u64::from(self.invocations);
            let effective = kp.profile.instr + penalty;
            metrics.efficiency = 1.0 / (effective as f64 * kp.profile.total_threads as f64);
        }
        let bandwidth = bandwidth::assess(&kp.mix, spec);
        Ok(Evaluated {
            label: self.label.clone(),
            kernel_profile: kp,
            metrics,
            bandwidth,
            total_blocks: self.launch.total_blocks(),
            invocations: self.invocations,
        })
    }
}

/// The static evaluation of one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// Candidate label.
    pub label: String,
    /// Analyses + occupancy.
    pub kernel_profile: KernelProfile,
    /// Efficiency / Utilization.
    pub metrics: Metrics,
    /// Bandwidth screen result.
    pub bandwidth: BandwidthAssessment,
    /// Launch-geometry figures carried over from the candidate, so
    /// consumers holding only the static evaluation (the surrogate
    /// search ranking a whole space) can predict times without
    /// re-instantiating kernels.
    pub total_blocks: u64,
    /// The candidate's invocation count (see [`Candidate::invocations`]).
    pub invocations: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::Dim;

    fn sample() -> Candidate {
        let mut b = KernelBuilder::new("s");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(16, |b| {
            let x = b.ld_global(p, 0);
            b.fmad_acc(x, 1.0f32, acc);
        });
        b.st_global(p, 0, acc);
        Candidate::new(
            "sample/unroll=1",
            b.finish(),
            Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
        )
    }

    #[test]
    fn evaluation_produces_consistent_metrics() {
        let spec = MachineSpec::geforce_8800_gtx();
        let e = sample().evaluate(&spec).unwrap();
        assert_eq!(e.label, "sample/unroll=1");
        let recomputed = Metrics::from_profile(&e.kernel_profile.profile);
        assert_eq!(e.metrics, recomputed);
        assert_eq!(e.kernel_profile.profile.total_threads, 256 * 128);
    }

    #[test]
    fn options_flow_through() {
        let spec = MachineSpec::geforce_8800_gtx();
        let half = sample().evaluate(&spec).unwrap();
        let full = sample()
            .evaluate_with(&spec, MetricsOptions { barrier_half_term: false, ..Default::default() })
            .unwrap();
        assert!(full.metrics.utilization > half.metrics.utilization);
        assert_eq!(full.metrics.efficiency, half.metrics.efficiency);
    }
}

#[cfg(test)]
mod coalescing_aware_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::Dim;

    #[test]
    fn coalescing_aware_metrics_penalise_bad_layouts() {
        let spec = MachineSpec::geforce_8800_gtx();
        let mk = |unco: bool| {
            let mut b = KernelBuilder::new("k");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(8, |b| {
                let x = if unco { b.ld_global_uncoalesced(p, 0) } else { b.ld_global(p, 0) };
                b.fmad_acc(x, 1.0f32, acc);
            });
            b.st_global(p, 0, acc);
            Candidate::new("k", b.finish(), Launch::new(Dim::new_1d(64), Dim::new_1d(128)))
        };
        let opts = MetricsOptions { coalescing_aware: true, ..Default::default() };

        // Plain metrics cannot tell the two layouts apart...
        let co_plain = mk(false).evaluate(&spec).unwrap();
        let unco_plain = mk(true).evaluate(&spec).unwrap();
        assert_eq!(co_plain.metrics.efficiency, unco_plain.metrics.efficiency);

        // ...the coalescing-aware variant charges the serialization.
        let co = mk(false).evaluate_with(&spec, opts).unwrap();
        let unco = mk(true).evaluate_with(&spec, opts).unwrap();
        assert!(unco.metrics.efficiency < co.metrics.efficiency);
        // Instr itself (and hence Utilization) is untouched.
        assert_eq!(unco.kernel_profile.profile.instr, co.kernel_profile.profile.instr);
        assert_eq!(unco.metrics.utilization, co.metrics.utilization);
    }
}
