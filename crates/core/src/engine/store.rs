//! Disk-backed, content-addressed result store.
//!
//! Timing simulations are the expensive half of every search, and their
//! results are pure functions of the content hash
//! ([`cache::exact_key`](super::cache::exact_key)) of (linearized
//! program, launch, resource usage, machine spec). This module persists
//! that mapping across processes so a killed or repeated run re-simulates
//! nothing it has already paid for.
//!
//! # On-disk format
//!
//! A store is a directory of append-only **segment files** named
//! `s{shard}-{index:04}.seg`, sharded by the low bits of the result key
//! so concurrent tuners on the same store dir mostly touch different
//! files. Each record is framed as
//!
//! ```text
//! magic (4 bytes) | payload_len: u32 LE | fnv1a64(payload): u64 LE | payload
//! ```
//!
//! where the payload is the compact hand-rolled-JSON encoding of
//! `{"key": <u64>, "report": {...}}` (no serde — the workspace is
//! offline). The magic starts with a NUL byte, which cannot occur inside
//! JSON text, so a forward scan can re-synchronize after damage.
//!
//! # Crash safety
//!
//! Writes are **write-behind**: [`ResultStore::put`] only updates the
//! in-memory index and a pending buffer; [`ResultStore::flush`] appends
//! the framed records and fsyncs a segment when it **rolls** (exceeds
//! the configured segment size). A torn final record — the expected
//! shape of a crash mid-append — is skipped by the loader, costing at
//! most the records of the unflushed tail, never the run.
//!
//! # Corruption tolerance
//!
//! [`ResultStore::open`] rebuilds the index by scanning every segment.
//! A record whose magic, length, checksum, or JSON payload does not
//! validate is *dropped*, counted in [`ResultStore::records_dropped`]
//! (surfaced as `store_records_dropped` in `EngineMetrics`), and the
//! scan resumes at the next magic marker. Loading never fails on
//! damaged content — only on an unreadable directory.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gpu_arch::{LimitingFactor, Occupancy};
use gpu_sim::timing::TimingReport;

use crate::obs::{json, Json};

/// Record marker. The leading NUL byte cannot appear in JSON text, so
/// scanning for this sequence after damage cannot match inside a
/// payload.
const MAGIC: [u8; 4] = [0x00, b'R', b'S', 0x01];

/// Bytes of framing before the payload: magic + length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8;

/// Upper bound on a sane payload; longer lengths are treated as damage.
const MAX_PAYLOAD: u32 = 1 << 20;

/// Segment files per store, selected by the low bits of the key.
const SHARD_COUNT: usize = 4;

/// Default segment size before a roll (and its fsync).
const DEFAULT_SEGMENT_BYTES: u64 = 256 * 1024;

/// FNV-1a 64-bit hash of `bytes` (the record checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialize a timing report to the JSON shape stored on disk (also
/// used verbatim by checkpoint files).
pub fn report_to_json(r: &TimingReport) -> Json {
    let occ = Json::obj([
        ("blocks_per_sm", Json::from(r.occupancy.blocks_per_sm)),
        ("warps_per_block", Json::from(r.occupancy.warps_per_block)),
        ("limited_by", Json::from(limiting_factor_name(r.occupancy.limited_by))),
        ("threads_per_sm", Json::from(r.occupancy.threads_per_sm)),
    ]);
    Json::obj([
        ("cycles_per_wave", Json::from(r.cycles_per_wave)),
        ("waves", Json::from(r.waves)),
        ("total_cycles", Json::from(r.total_cycles)),
        ("time_ms", Json::from(r.time_ms)),
        ("instructions_issued", Json::from(r.instructions_issued)),
        ("busy_cycles", Json::from(r.busy_cycles)),
        ("dram_bytes", Json::from(r.dram_bytes)),
        ("bandwidth_utilization", Json::from(r.bandwidth_utilization)),
        ("occupancy", occ),
        ("steps", Json::from(r.steps)),
        ("stall_mem_cycles", Json::from(r.stall_mem_cycles)),
        ("stall_sfu_cycles", Json::from(r.stall_sfu_cycles)),
        ("stall_arith_cycles", Json::from(r.stall_arith_cycles)),
        ("stall_other_cycles", Json::from(r.stall_other_cycles)),
    ])
}

/// Parse a timing report from its stored JSON shape. `None` when any
/// field is missing or mistyped (the caller treats that as damage).
pub fn report_from_json(j: &Json) -> Option<TimingReport> {
    let u = |key: &str| j.get(key).and_then(Json::as_u64);
    let f = |key: &str| j.get(key).and_then(Json::as_f64);
    let occ = j.get("occupancy")?;
    let occupancy = Occupancy {
        blocks_per_sm: u32::try_from(occ.get("blocks_per_sm")?.as_u64()?).ok()?,
        warps_per_block: u32::try_from(occ.get("warps_per_block")?.as_u64()?).ok()?,
        limited_by: limiting_factor_from_name(occ.get("limited_by")?.as_str()?)?,
        threads_per_sm: u32::try_from(occ.get("threads_per_sm")?.as_u64()?).ok()?,
    };
    Some(TimingReport {
        cycles_per_wave: u("cycles_per_wave")?,
        waves: f("waves")?,
        total_cycles: u("total_cycles")?,
        time_ms: f("time_ms")?,
        instructions_issued: u("instructions_issued")?,
        busy_cycles: u("busy_cycles")?,
        dram_bytes: u("dram_bytes")?,
        bandwidth_utilization: f("bandwidth_utilization")?,
        occupancy,
        steps: u("steps")?,
        stall_mem_cycles: u("stall_mem_cycles")?,
        stall_sfu_cycles: u("stall_sfu_cycles")?,
        stall_arith_cycles: u("stall_arith_cycles")?,
        stall_other_cycles: u("stall_other_cycles")?,
    })
}

fn limiting_factor_name(l: LimitingFactor) -> &'static str {
    match l {
        LimitingFactor::BlockSlots => "block-slots",
        LimitingFactor::Threads => "threads",
        LimitingFactor::Registers => "registers",
        LimitingFactor::SharedMemory => "shared-memory",
    }
}

fn limiting_factor_from_name(name: &str) -> Option<LimitingFactor> {
    match name {
        "block-slots" => Some(LimitingFactor::BlockSlots),
        "threads" => Some(LimitingFactor::Threads),
        "registers" => Some(LimitingFactor::Registers),
        "shared-memory" => Some(LimitingFactor::SharedMemory),
        _ => None,
    }
}

/// A report survives storage only if its floats are finite: JSON has no
/// NaN/∞ (they serialize as `null`), so a non-finite report could not
/// round-trip and is simply not persisted.
fn is_storable(r: &TimingReport) -> bool {
    r.waves.is_finite() && r.time_ms.is_finite() && r.bandwidth_utilization.is_finite()
}

/// Frame one `(key, report)` as an on-disk record.
fn encode_record(key: u64, report: &TimingReport) -> Vec<u8> {
    let payload = Json::obj([("key", Json::from(key)), ("report", report_to_json(report))])
        .to_string_compact()
        .into_bytes();
    let mut rec = Vec::with_capacity(HEADER_LEN + payload.len());
    rec.extend_from_slice(&MAGIC);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// Try to decode one record at the start of `buf`. `Ok((key, report,
/// consumed))` on success; any validation failure is `Err(())` and the
/// caller re-synchronizes.
#[allow(clippy::result_unit_err)]
fn decode_record(buf: &[u8]) -> Result<(u64, TimingReport, usize), ()> {
    if buf.len() < HEADER_LEN || buf[..4] != MAGIC {
        return Err(());
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().map_err(|_| ())?);
    if len > MAX_PAYLOAD {
        return Err(());
    }
    let len = len as usize;
    let end = HEADER_LEN.checked_add(len).ok_or(())?;
    if buf.len() < end {
        return Err(()); // torn / truncated tail
    }
    let checksum = u64::from_le_bytes(buf[8..16].try_into().map_err(|_| ())?);
    let payload = &buf[HEADER_LEN..end];
    if fnv1a64(payload) != checksum {
        return Err(());
    }
    let text = std::str::from_utf8(payload).map_err(|_| ())?;
    let doc = json::parse(text).map_err(|_| ())?;
    let key = doc.get("key").and_then(Json::as_u64).ok_or(())?;
    let report = doc.get("report").and_then(report_from_json).ok_or(())?;
    Ok((key, report, end))
}

/// Find the next offset `>= from` where the magic marker starts.
fn find_magic(buf: &[u8], from: usize) -> Option<usize> {
    (from..buf.len().saturating_sub(MAGIC.len() - 1)).find(|&i| buf[i..i + MAGIC.len()] == MAGIC)
}

/// Decode every record in one segment's bytes into `index`, skipping
/// damage. Returns `(records_loaded, records_dropped)`.
fn scan_segment(buf: &[u8], index: &mut HashMap<u64, TimingReport>) -> (usize, usize) {
    let (mut loaded, mut dropped) = (0, 0);
    let mut pos = 0;
    while pos < buf.len() {
        match decode_record(&buf[pos..]) {
            Ok((key, report, consumed)) => {
                index.insert(key, report);
                loaded += 1;
                pos += consumed;
            }
            Err(()) => {
                dropped += 1;
                pos = find_magic(buf, pos + 1).unwrap_or(buf.len());
            }
        }
    }
    (loaded, dropped)
}

/// Append position of one shard's current segment.
#[derive(Debug, Clone, Copy, Default)]
struct ShardState {
    /// Index of the segment currently being appended to.
    segment: u32,
    /// Bytes already in that segment.
    bytes: u64,
}

/// Aggregate health of a store directory, as reported by
/// [`ResultStore::open`] (and the `store verify` subcommand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreAudit {
    /// Segment files scanned.
    pub segments: usize,
    /// Records loaded into the index (last write per key wins).
    pub records: usize,
    /// Distinct keys in the index (≤ `records`).
    pub keys: usize,
    /// Damaged records skipped by the loader.
    pub dropped: usize,
    /// Total segment bytes scanned.
    pub bytes: u64,
}

/// The disk-backed result store. See the module docs for format and
/// durability semantics.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Roll (and fsync) a segment once it exceeds this many bytes.
    segment_bytes: u64,
    index: Mutex<HashMap<u64, TimingReport>>,
    pending: Mutex<Vec<(u64, TimingReport)>>,
    shards: Mutex<[ShardState; SHARD_COUNT]>,
    audit: StoreAudit,
    generation: u64,
}

impl ResultStore {
    /// Open (creating if needed) the store at `dir` and rebuild the
    /// index from every segment, skipping damaged records.
    ///
    /// # Errors
    ///
    /// Only directory-level I/O failures (cannot create or list `dir`,
    /// cannot read a listed segment). Damaged record *content* never
    /// fails an open — it is counted in [`Self::records_dropped`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Self::open`] with an explicit roll threshold (tests use tiny
    /// segments to exercise rolling).
    pub fn open_with_segment_bytes(dir: impl AsRef<Path>, segment_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<(usize, u32, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some((shard, idx)) = parse_segment_name(&name.to_string_lossy()) {
                segments.push((shard, idx, entry.path()));
            }
        }
        segments.sort();

        let mut index = HashMap::new();
        let mut audit = StoreAudit { segments: 0, records: 0, keys: 0, dropped: 0, bytes: 0 };
        let mut shards = [ShardState::default(); SHARD_COUNT];
        for &(shard, idx, ref path) in &segments {
            let buf = fs::read(path)?;
            let (loaded, dropped) = scan_segment(&buf, &mut index);
            audit.segments += 1;
            audit.records += loaded;
            audit.dropped += dropped;
            audit.bytes += buf.len() as u64;
            if idx >= shards[shard].segment {
                shards[shard] = ShardState { segment: idx, bytes: buf.len() as u64 };
            }
        }
        audit.keys = index.len();
        let generation = audit.segments as u64;
        Ok(Self {
            dir,
            segment_bytes,
            index: Mutex::new(index),
            pending: Mutex::new(Vec::new()),
            shards: Mutex::new(shards),
            audit,
            generation,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Look up a result by exact content key.
    pub fn get(&self, key: u64) -> Option<TimingReport> {
        self.index.lock().expect("store index poisoned").get(&key).cloned()
    }

    /// Record a result (write-behind; durable after [`Self::flush`]).
    /// Duplicate keys and non-finite reports are ignored.
    pub fn put(&self, key: u64, report: &TimingReport) {
        if !is_storable(report) {
            return;
        }
        let mut index = self.index.lock().expect("store index poisoned");
        if index.contains_key(&key) {
            return;
        }
        index.insert(key, report.clone());
        self.pending.lock().expect("store pending poisoned").push((key, report.clone()));
    }

    /// Append all pending records to their shards' segment files,
    /// fsyncing each segment that rolls past the size threshold.
    ///
    /// # Errors
    ///
    /// I/O failures opening or appending segment files. Pending records
    /// are drained before writing, so a failed flush loses at most the
    /// drained batch (the in-memory index still serves them).
    pub fn flush(&self) -> io::Result<()> {
        let pending: Vec<(u64, TimingReport)> =
            self.pending.lock().expect("store pending poisoned").drain(..).collect();
        if pending.is_empty() {
            return Ok(());
        }
        let mut shards = self.shards.lock().expect("store shards poisoned");
        for (key, report) in &pending {
            let shard = (*key as usize) % SHARD_COUNT;
            let rec = encode_record(*key, report);
            let path = self.dir.join(segment_name(shard, shards[shard].segment));
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            file.write_all(&rec)?;
            shards[shard].bytes += rec.len() as u64;
            if shards[shard].bytes >= self.segment_bytes {
                file.sync_all()?;
                shards[shard].segment += 1;
                shards[shard].bytes = 0;
            }
        }
        Ok(())
    }

    /// Fsync every shard's current segment (used before a checkpoint is
    /// published, so the checkpoint never references results the store
    /// might lose).
    ///
    /// # Errors
    ///
    /// I/O failures opening or syncing segment files.
    pub fn sync(&self) -> io::Result<()> {
        self.flush()?;
        let shards = *self.shards.lock().expect("store shards poisoned");
        for (shard, state) in shards.iter().enumerate() {
            let path = self.dir.join(segment_name(shard, state.segment));
            if path.exists() {
                OpenOptions::new().append(true).open(&path)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Number of distinct keys currently in the index.
    pub fn len(&self) -> usize {
        self.index.lock().expect("store index poisoned").len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Damaged records skipped when this store was opened.
    pub fn records_dropped(&self) -> usize {
        self.audit.dropped
    }

    /// Records loaded when this store was opened (before new puts).
    pub fn records_loaded(&self) -> usize {
        self.audit.records
    }

    /// Store generation: the number of segment files present at open.
    /// It grows monotonically as runs accrue data, so manifests can
    /// tell which vintage of the store served a run.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The audit snapshot taken at open.
    pub fn audit(&self) -> StoreAudit {
        self.audit
    }
}

/// Open `dir` and report its health — the `store verify` fsck.
///
/// # Errors
///
/// Directory-level I/O failures only; damaged records are counted, not
/// errors.
pub fn verify(dir: impl AsRef<Path>) -> io::Result<StoreAudit> {
    Ok(ResultStore::open(dir)?.audit())
}

fn segment_name(shard: usize, index: u32) -> String {
    format!("s{shard}-{index:04}.seg")
}

fn parse_segment_name(name: &str) -> Option<(usize, u32)> {
    let rest = name.strip_prefix('s')?.strip_suffix(".seg")?;
    let (shard, idx) = rest.split_once('-')?;
    let shard: usize = shard.parse().ok()?;
    if shard >= SHARD_COUNT {
        return None;
    }
    Some((shard, idx.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::{LimitingFactor, Occupancy};

    fn report(seed: u64) -> TimingReport {
        TimingReport {
            cycles_per_wave: 1000 + seed,
            waves: 1.5 + seed as f64 * 0.25,
            total_cycles: 2000 + seed * 3,
            time_ms: 0.125 + seed as f64 * 1e-3,
            instructions_issued: 300 + seed,
            busy_cycles: 700 + seed,
            dram_bytes: 4096 * (seed + 1),
            bandwidth_utilization: (seed % 10) as f64 / 10.0,
            occupancy: Occupancy {
                blocks_per_sm: 1 + (seed % 8) as u32,
                warps_per_block: 1 + (seed % 24) as u32,
                limited_by: match seed % 4 {
                    0 => LimitingFactor::BlockSlots,
                    1 => LimitingFactor::Threads,
                    2 => LimitingFactor::Registers,
                    _ => LimitingFactor::SharedMemory,
                },
                threads_per_sm: 32 * (1 + (seed % 24) as u32),
            },
            steps: 50 + seed,
            stall_mem_cycles: seed % 100,
            stall_sfu_cycles: seed % 7,
            stall_arith_cycles: seed % 13,
            stall_other_cycles: seed % 3,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("optspace-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_json_round_trips_exactly() {
        for seed in 0..40 {
            let r = report(seed);
            let j = report_to_json(&r);
            let back = report_from_json(&json::parse(&j.to_string_compact()).unwrap()).unwrap();
            assert_eq!(back, r, "seed {seed}");
        }
    }

    #[test]
    fn put_flush_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        for seed in 0u64..32 {
            store.put(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15), &report(seed));
        }
        store.flush().unwrap();
        drop(store);

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 32);
        assert_eq!(store.records_dropped(), 0);
        for seed in 0u64..32 {
            assert_eq!(store.get(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(report(seed)));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_puts_are_visible_in_memory_but_not_on_disk() {
        let dir = tmpdir("writebehind");
        let store = ResultStore::open(&dir).unwrap();
        store.put(7, &report(1));
        assert_eq!(store.get(7), Some(report(1)));
        drop(store); // never flushed

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get(7), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_segments_roll_into_multiple_files_and_generation_grows() {
        let dir = tmpdir("roll");
        let store = ResultStore::open_with_segment_bytes(&dir, 256).unwrap();
        assert_eq!(store.generation(), 0);
        for seed in 0..24 {
            store.put(seed, &report(seed));
        }
        store.flush().unwrap();
        drop(store);

        let store = ResultStore::open_with_segment_bytes(&dir, 256).unwrap();
        assert!(store.audit().segments > SHARD_COUNT, "expected rolled segments");
        assert_eq!(store.generation(), store.audit().segments as u64);
        assert_eq!(store.len(), 24);
        assert_eq!(store.records_dropped(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_survivors_load() {
        let dir = tmpdir("torn");
        let store = ResultStore::open(&dir).unwrap();
        // All keys in one shard so the truncation hits a known file.
        for seed in 0..8 {
            store.put(seed * SHARD_COUNT as u64, &report(seed));
        }
        store.flush().unwrap();
        drop(store);

        let seg = dir.join(segment_name(0, 0));
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap(); // tear the tail

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.records_dropped(), 1);
        assert_eq!(store.len(), 7);
        for seed in 0..7 {
            assert_eq!(store.get(seed * SHARD_COUNT as u64), Some(report(seed)), "seed {seed}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_drops_only_the_damaged_record() {
        let dir = tmpdir("flip");
        let store = ResultStore::open(&dir).unwrap();
        for seed in 0..6 {
            store.put(seed * SHARD_COUNT as u64, &report(seed));
        }
        store.flush().unwrap();
        drop(store);

        let seg = dir.join(segment_name(0, 0));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        // A single flipped byte damages exactly one record; the drop
        // count may over-count by one if the flip forges a magic marker
        // inside the damaged region, but never eats a neighbour.
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.records_dropped() >= 1);
        assert_eq!(store.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_finite_reports_are_not_persisted() {
        let dir = tmpdir("nonfinite");
        let store = ResultStore::open(&dir).unwrap();
        let mut r = report(0);
        r.time_ms = f64::NAN;
        store.put(1, &r);
        assert_eq!(store.len(), 0);
        store.flush().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_segments_records_and_drops() {
        let dir = tmpdir("verify");
        let store = ResultStore::open(&dir).unwrap();
        for seed in 0..10 {
            store.put(seed, &report(seed));
        }
        store.flush().unwrap();
        drop(store);

        let audit = verify(&dir).unwrap();
        assert_eq!(audit.records, 10);
        assert_eq!(audit.keys, 10);
        assert_eq!(audit.dropped, 0);
        assert!(audit.segments >= 1 && audit.bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
