//! Deterministic fault injection for exercising the retry/quarantine
//! machinery.
//!
//! A [`FaultPlan`] decides, purely from a candidate's content hash,
//! whether its evaluation fails and how: a **transient** fault clears
//! after a fixed number of attempts (so retries rescue it), a
//! **permanent** fault never clears (so the candidate is quarantined).
//! No wall clock and no global RNG is involved — the same plan over the
//! same space injects the same faults at any worker count, which is what
//! makes the degraded reports byte-identical across `--jobs` values.

/// A fault injected into one unique simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Attempts 1..=`fails_for` fail; later attempts succeed.
    /// `u32::MAX` means the fault is permanent.
    pub fails_for: u32,
}

impl InjectedFault {
    /// Whether this fault still fires on the given 1-based attempt.
    pub fn fires_on(&self, attempt: u32) -> bool {
        attempt <= self.fails_for
    }

    /// Whether the fault never clears.
    pub fn is_permanent(&self) -> bool {
        self.fails_for == u32::MAX
    }
}

/// A deterministic fault-injection plan, keyed by content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Mixed into every decision so different seeds fault different
    /// candidates.
    pub seed: u64,
    /// Probability (per mille) that a unique simulation faults at all.
    pub rate_per_mille: u32,
    /// Of the faulting simulations, the per-mille fraction whose fault
    /// is transient (clears within two failed attempts).
    pub transient_per_mille: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        // Roughly one in seven candidates faults, half of them
        // transiently: enough to exercise both paths on small spaces.
        Self { seed: 0xfa017, rate_per_mille: 150, transient_per_mille: 500 }
    }
}

impl FaultPlan {
    /// A plan with the given seed and the default rates.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The fault (if any) this plan injects into the simulation with
    /// the given content hash.
    pub fn fault_for(&self, content_hash: u64) -> Option<InjectedFault> {
        let h = mix(self.seed, content_hash);
        if (h % 1000) as u32 >= self.rate_per_mille {
            return None;
        }
        let h2 = mix(h, 0x9e37_79b9_7f4a_7c15);
        if ((h2 % 1000) as u32) < self.transient_per_mille {
            // Clears after one or two failed attempts — within reach of
            // the default retry policy (three attempts).
            Some(InjectedFault { fails_for: 1 + ((h2 >> 32) % 2) as u32 })
        } else {
            Some(InjectedFault { fails_for: u32::MAX })
        }
    }
}

/// SplitMix64-style avalanche of a seeded hash: decisions must be
/// uncorrelated across candidates and across the rate/transiency draws.
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::with_seed(42);
        for h in 0..1000u64 {
            assert_eq!(plan.fault_for(h), plan.fault_for(h));
        }
    }

    #[test]
    fn rate_zero_injects_nothing_and_rate_full_faults_everything() {
        let none = FaultPlan { seed: 1, rate_per_mille: 0, transient_per_mille: 500 };
        let all = FaultPlan { seed: 1, rate_per_mille: 1000, transient_per_mille: 500 };
        for h in 0..500u64 {
            assert_eq!(none.fault_for(h), None);
            assert!(all.fault_for(h).is_some());
        }
    }

    #[test]
    fn default_rates_inject_a_plausible_fraction_with_both_flavors() {
        let plan = FaultPlan::default();
        let faults: Vec<_> = (0..10_000u64).filter_map(|h| plan.fault_for(h)).collect();
        // 150 per mille nominal; allow generous slack for hash noise.
        assert!(faults.len() > 1000 && faults.len() < 2000, "got {}", faults.len());
        assert!(faults.iter().any(|f| f.is_permanent()));
        assert!(faults.iter().any(|f| !f.is_permanent()));
    }

    #[test]
    fn transient_faults_clear_within_the_default_retry_budget() {
        let plan = FaultPlan::default();
        for h in 0..10_000u64 {
            if let Some(f) = plan.fault_for(h) {
                if !f.is_permanent() {
                    assert!(f.fails_for <= 2);
                    assert!(f.fires_on(1));
                    assert!(!f.fires_on(3), "attempt 3 must succeed");
                }
            }
        }
    }

    #[test]
    fn different_seeds_fault_different_candidates() {
        let a = FaultPlan::with_seed(1);
        let b = FaultPlan::with_seed(2);
        let differs = (0..1000u64).any(|h| a.fault_for(h).is_some() != b.fault_for(h).is_some());
        assert!(differs);
    }
}
