//! The evaluation engine: parallel, memoizing, fault-tolerant candidate
//! evaluation shared by every search strategy.
//!
//! The paper's search loop has two phases with very different costs:
//! cheap static evaluation (metrics + occupancy) of every configuration,
//! and expensive timing simulation of the configurations a strategy
//! selects. [`EvalEngine`] owns both phases:
//!
//! * **Worker pool** — both phases fan out over a fixed-size
//!   `std::thread` pool ([`pool`]); results are reassembled by candidate
//!   index, so reports are identical to a sequential run no matter how
//!   many workers are configured. Per-candidate work is panic-isolated
//!   and lost workers are respawned.
//! * **Memo cache** — timing work is deduplicated by a content hash of
//!   (linearized program, launch, resource usage, machine spec)
//!   ([`cache`]). Configurations differing only in top-level trip
//!   counts — any number of axes — form a *family* simulated in one
//!   forked run (`gpu_sim::timing::simulate_family_decoded`), so each
//!   MRI-FHD cluster of seven costs roughly one simulation. Failed
//!   evaluations are never cached: a family containing a failing member
//!   degrades to individual runs so the failure cannot poison its
//!   siblings.
//! * **Decode cache** — each unique program is lowered once into the
//!   simulator's flat op arena (`gpu_sim::decode`) during the
//!   sequential dedup pass; the arena is trip-independent, so family
//!   members and branch-and-bound probe corners sharing one masked
//!   structure share one decode (keyed by class hash, shared across
//!   engine clones).
//! * **Budget** — optional caps on unique simulations and on accumulated
//!   simulated milliseconds ([`budget`]), applied deterministically and
//!   recorded in the search report's [`EngineStats`].
//! * **Failure semantics** — every way a candidate can fail is a typed
//!   [`EvalError`] ([`error`]); transient failures are retried for up to
//!   [`RetryPolicy::max_attempts`] deterministic rounds, permanent ones
//!   are quarantined ([`Quarantine`]) and the search continues over the
//!   survivors. A deterministic [`FaultPlan`] ([`fault`]) can inject
//!   failures for testing, and a fuel watchdog bounds runaway
//!   simulations.
//!
//! The evaluators themselves are trait objects ([`StaticEval`],
//! [`TimingEval`]) so tests and future cost models can substitute the
//! metric computation or the simulator without touching the
//! orchestration.

pub mod budget;
pub mod cache;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod pool;
pub mod store;

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpu_arch::{MachineSpec, ResourceUsage};
use gpu_ir::linear::linearize;
use gpu_ir::Launch;
use gpu_sim::decode::{DecodedArena, DecodedProgram};
use gpu_sim::timing::TimingReport;

use crate::candidate::{Candidate, Evaluated};
use crate::metrics::MetricsOptions;
use crate::obs::{ConvergenceRecorder, EventKind, EventSink, Json, LatencyLane, Phase};
use crate::space::CandidateSource;

pub use budget::EvalBudget;
pub use checkpoint::{
    install_signal_handler, interrupted, CheckpointMeta, Checkpointer, FrontierSnapshot,
    LoadedCheckpoint, ReplayEval, SearchState, CHECKPOINT_SCHEMA, DEFAULT_CHECKPOINT_EVERY,
};
pub use error::{EvalError, EvalErrorKind, Quarantine};
pub use fault::{FaultPlan, InjectedFault};
pub use pool::PoolError;
pub use store::{ResultStore, StoreAudit};

/// Host-side overhead charged per kernel invocation (driver submission,
/// ~10 µs on the paper's CUDA 1.0 stack). This is what separates the
/// otherwise metric-identical work-per-invocation variants of MRI-FHD.
pub const LAUNCH_OVERHEAD_MS: f64 = 0.01;

/// Static evaluation of one candidate.
///
/// `Err(EvalError::ResourceExceeded)` marks the paper's "invalid
/// executable" cases — expected outcomes, not faults. Any other error
/// quarantines the candidate.
pub trait StaticEval: Sync {
    /// Evaluate one candidate.
    fn evaluate(&self, candidate: &Candidate, spec: &MachineSpec) -> Result<Evaluated, EvalError>;
}

/// The standard static evaluator: metrics, occupancy, and the bandwidth
/// screen via [`Candidate::evaluate_with`], optionally preceded by IR
/// verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsEval {
    /// Metric variant (ablations flow through here).
    pub options: MetricsOptions,
    /// Run the IR verifier on each kernel first; findings become
    /// [`EvalError::VerifyFailed`]. Off by default — the generators
    /// produce verified kernels, so this guards mutated or external IR.
    pub verify: bool,
    /// Run the static shared-memory race detector
    /// (`gpu_ir::analysis::races`) on each launchable kernel; findings
    /// become [`EvalError::RaceDetected`] and quarantine the candidate.
    /// This closes the soundness hole left by the sequential functional
    /// interpreter, which reproduces racy kernels deterministically.
    pub check_races: bool,
}

impl StaticEval for MetricsEval {
    fn evaluate(&self, candidate: &Candidate, spec: &MachineSpec) -> Result<Evaluated, EvalError> {
        if self.verify {
            let findings = gpu_ir::verify::verify(&candidate.kernel);
            if !findings.is_empty() {
                return Err(EvalError::from_verify(&findings));
            }
        }
        // Resource validity first: an unlaunchable configuration stays
        // classified as the paper's "invalid executable" even when its
        // kernel also races.
        let evaluated = candidate.evaluate_with(spec, self.options)?;
        if self.check_races {
            let races = gpu_ir::analysis::analyze_races(&candidate.kernel, &candidate.launch);
            if !races.is_race_free() {
                return Err(EvalError::from_races(&races));
            }
        }
        Ok(evaluated)
    }
}

/// Timing evaluation of one decoded program (a single invocation's
/// worth of work — the engine applies invocation scaling afterwards).
/// The engine decodes each unique program once, in the sequential dedup
/// phase, so evaluators receive the arena-backed form directly; the
/// original linear program stays reachable as
/// [`DecodedProgram::source`](gpu_sim::decode::DecodedProgram) for
/// evaluators that need it (content keys, the legacy engine).
pub trait TimingEval: Sync {
    /// Simulate one program.
    fn simulate(
        &self,
        prog: &DecodedProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Result<TimingReport, EvalError>;

    /// Simulate a family of programs differing only in top-level trip
    /// counts, in one forked run. `None` means "unsupported, not
    /// actually a family, or the family run failed" — the engine falls
    /// back to individual [`TimingEval::simulate`] calls, which also
    /// attributes any failure to the member that caused it.
    fn simulate_family(
        &self,
        progs: &[&DecodedProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<Vec<TimingReport>> {
        let _ = (progs, launch, usage, spec);
        None
    }
}

/// The standard timing evaluator: the warp-level G80 simulator, with an
/// optional fuel watchdog bounding every event loop. Runs the decoded
/// arena engine by default; `legacy` switches to the pre-decode
/// reference engine (`gpu_sim::legacy`), which the differential test
/// suite holds bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatorEval {
    /// Scheduler-step limit per simulation; `None` is unbounded.
    pub fuel: Option<u64>,
    /// Use the pre-decode reference engine instead of the decoded one.
    pub legacy: bool,
}

impl SimulatorEval {
    /// Evaluator with the given fuel limit (decoded engine).
    pub fn with_fuel(fuel: Option<u64>) -> Self {
        Self { fuel, legacy: false }
    }

    /// Evaluator matching an engine configuration (fuel + engine kind).
    pub fn from_config(config: &EngineConfig) -> Self {
        Self { fuel: config.sim_fuel, legacy: config.legacy_sim }
    }
}

impl TimingEval for SimulatorEval {
    fn simulate(
        &self,
        prog: &DecodedProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Result<TimingReport, EvalError> {
        if self.legacy {
            gpu_sim::legacy::timing::simulate_fueled(&prog.source, launch, usage, spec, self.fuel)
                .map_err(Into::into)
        } else {
            gpu_sim::timing::simulate_decoded_fueled(prog, launch, usage, spec, self.fuel)
                .map_err(Into::into)
        }
    }

    fn simulate_family(
        &self,
        progs: &[&DecodedProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<Vec<TimingReport>> {
        if self.legacy {
            // The reference engine only forks single-axis families; a
            // wider family errors here and degrades to singles.
            let sources: Vec<&gpu_ir::linear::LinearProgram> =
                progs.iter().map(|p| &p.source).collect();
            gpu_sim::legacy::timing::simulate_family_fueled(
                &sources, launch, usage, spec, self.fuel,
            )
            .ok()
        } else {
            gpu_sim::timing::simulate_family_decoded_fueled(progs, launch, usage, spec, self.fuel)
                .ok()
        }
    }
}

/// How transient failures are retried: attempt counts only — no
/// wall-clock backoff, so retry behavior is deterministic and identical
/// at every worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per evaluation (first try included). `1` disables
    /// retries.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

/// Engine configuration: parallelism, evaluation budget, and failure
/// handling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for both evaluation phases. `1` (the default) runs
    /// strictly inline — the reference sequential path.
    pub jobs: usize,
    /// Budget on simulated work.
    pub budget: EvalBudget,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Fuel (scheduler-step) limit per timing simulation; `None` is
    /// unbounded.
    pub sim_fuel: Option<u64>,
    /// Deterministic fault injection; `None` (the default) injects
    /// nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Run the static shared-memory race detector during the static
    /// phase; racy candidates quarantine with
    /// [`EvalErrorKind::Race`] instead of
    /// flowing into selection. Off by default (the `--check-races` CLI
    /// flag turns it on).
    pub check_races: bool,
    /// Time with the pre-decode reference engine (`gpu_sim::legacy`)
    /// instead of the decoded arena engine. Off by default (the
    /// `--engine legacy` CLI flag turns it on); reports are
    /// bit-identical either way — the switch exists for differential
    /// validation.
    pub legacy_sim: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            jobs: 1,
            budget: EvalBudget::UNLIMITED,
            retry: RetryPolicy::default(),
            sim_fuel: None,
            fault_plan: None,
            check_races: false,
            legacy_sim: false,
        }
    }
}

/// Counters describing what the engine actually did during one search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Budget the engine ran under.
    pub budget: EvalBudget,
    /// Candidates statically evaluated (valid or not).
    pub static_evals: usize,
    /// Candidates that received a timing result.
    pub timed: usize,
    /// Timing simulations actually executed (a forked family run counts
    /// once; failed and retried runs count each execution).
    pub unique_sims: usize,
    /// Timed candidates served from the memo cache / family forks
    /// instead of a fresh simulation.
    pub cache_hits: usize,
    /// Whether a budget limit cut the evaluation short.
    pub budget_truncated: bool,
    /// Evaluations re-attempted after a transient failure.
    pub retries: usize,
    /// Candidates quarantined after failing permanently (or exhausting
    /// their retries).
    pub quarantined: usize,
    /// Failures injected by the fault plan (each firing counts).
    pub injected_faults: usize,
    /// Work units actually simulated as one forked family run.
    pub family_forks: usize,
    /// Unique simulations covered by those forked runs.
    pub family_members: usize,
    /// Scheduler steps consumed by successful unique simulations.
    pub fuel_consumed: u64,
    /// Simulated cycles accumulated by successful unique simulations.
    pub sim_cycles: u64,
    /// Issue-port stall cycles attributed to in-flight global memory,
    /// summed over successful unique simulations.
    pub stall_mem_cycles: u64,
    /// Issue-port stall cycles attributed to the SFU port.
    pub stall_sfu_cycles: u64,
    /// Issue-port stall cycles attributed to arithmetic operands.
    pub stall_arith_cycles: u64,
    /// Issue-port stall cycles from control flow and barriers.
    pub stall_other_cycles: u64,
    /// Subspaces a branch-and-bound search discarded because their
    /// admissible lower bound exceeded the incumbent.
    pub bound_pruned_subspaces: usize,
    /// Configurations eliminated by bound pruning without ever being
    /// instantiated (admitted completions of pruned subspaces, minus
    /// the few corner points probed while computing bounds).
    pub bound_pruned_points: usize,
    /// Unique simulations served from the persistent result store
    /// instead of being run (never counted as `cache_hits`).
    pub store_hits: usize,
    /// Damaged records the store's corruption-tolerant loader skipped
    /// when the attached store was opened.
    pub store_records_dropped: usize,
}

/// The shared evaluation engine. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct EvalEngine {
    /// Parallelism, budget, and failure-handling settings.
    pub config: EngineConfig,
    /// Optional event sink; when attached, both phases emit search-scope
    /// trace events and runtime wall-time accounting.
    sink: Option<Arc<EventSink>>,
    /// Optional persistent result store, consulted before the memo
    /// cache dispatches fresh simulations and updated write-behind with
    /// this call's successes.
    store: Option<Arc<store::ResultStore>>,
    /// Optional checkpoint accumulator: completed results are recorded
    /// after each dispatch chunk and snapshots published every N units.
    checkpoint: Option<Arc<checkpoint::Checkpointer>>,
    /// Optional resume map: when set, the timing evaluator is wrapped in
    /// a [`checkpoint::ReplayEval`] serving these results in place of
    /// fresh simulations, so a resumed search replays byte-identically.
    replay: Option<Arc<HashMap<u64, TimingReport>>>,
    /// Always-on convergence recorder, fed from the single-threaded
    /// result-reassembly loop (so the curve is deterministic at any
    /// `jobs`). Shared by clones: a batched search accumulates one
    /// curve across its per-batch engine copies.
    convergence: Arc<ConvergenceRecorder>,
    /// Decoded-arena cache keyed by class hash: the arena is
    /// trip-independent, so every family member (and every
    /// branch-and-bound probe corner sharing the masked structure)
    /// reuses one decode. Shared by clones for the same reason the
    /// convergence recorder is; populated only from the sequential
    /// dedup loop, so its contents are deterministic at any `jobs`.
    decoded: Arc<Mutex<HashMap<u64, Arc<DecodedArena>>>>,
}

/// One deduplicated simulation input (the memo cache's value side).
struct UniqueSim {
    prog: DecodedProgram,
    launch: Launch,
    usage: ResourceUsage,
    exact: u64,
    class: cache::ClassKey,
}

/// A unit of simulation work dispatched to the pool.
enum WorkUnit {
    /// One unique program.
    Single(usize),
    /// Class-mates differing only in one top-level trip count, simulated
    /// in one forked run.
    Family(Vec<usize>),
}

impl WorkUnit {
    fn members(&self) -> &[usize] {
        match self {
            Self::Single(u) => std::slice::from_ref(u),
            Self::Family(v) => v,
        }
    }
}

/// A pool-level loss becomes a transient [`EvalError`]: the work may
/// simply have been unlucky (its worker died), so it deserves a retry.
fn pool_to_eval(e: PoolError) -> EvalError {
    match e {
        PoolError::Panicked(msg) => EvalError::WorkerLost { detail: msg },
        PoolError::WorkerLost => EvalError::worker_lost("worker died before reporting"),
    }
}

impl EvalEngine {
    /// Engine with explicit configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config, ..Default::default() }
    }

    /// Engine with `jobs` workers and default everything else.
    pub fn with_jobs(jobs: usize) -> Self {
        Self::new(EngineConfig { jobs: jobs.max(1), ..Default::default() })
    }

    /// Attach an event sink: both phases will emit trace events and
    /// runtime accounting into it.
    pub fn with_sink(mut self, sink: Arc<EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The attached event sink, if any.
    pub fn sink(&self) -> Option<&Arc<EventSink>> {
        self.sink.as_ref()
    }

    /// Attach a persistent result store: known results are served from
    /// disk (counted as `store_hits`) and fresh successes are persisted
    /// write-behind at the end of each timing phase.
    pub fn with_store(mut self, store: Arc<store::ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Arc<store::ResultStore>> {
        self.store.as_ref()
    }

    /// Attach a checkpointer: dispatch is chunked so completed results
    /// are recorded (and snapshots published) every N work units, and
    /// the engine stops scheduling new work once
    /// [`checkpoint::Checkpointer::should_stop`] turns true.
    pub fn with_checkpoint(mut self, ck: Arc<checkpoint::Checkpointer>) -> Self {
        self.checkpoint = Some(ck);
        self
    }

    /// The attached checkpointer, if any.
    pub fn checkpoint(&self) -> Option<&Arc<checkpoint::Checkpointer>> {
        self.checkpoint.as_ref()
    }

    /// Attach a resume map (a loaded checkpoint's results): every timing
    /// evaluation is first looked up here by exact content key, so the
    /// resumed search replays the original byte-identically.
    pub fn with_replay(mut self, results: Arc<HashMap<u64, TimingReport>>) -> Self {
        self.replay = Some(results);
        self
    }

    /// The engine's convergence recorder. Search strategies bracket a
    /// run with [`ConvergenceRecorder::reset`] and
    /// [`ConvergenceRecorder::finish`], then snapshot the curve into
    /// their report's metrics.
    pub fn convergence(&self) -> &ConvergenceRecorder {
        &self.convergence
    }

    /// Whether the engine has been told to stop scheduling new work
    /// (process interrupted or the checkpoint stop threshold hit).
    pub fn stop_requested(&self) -> bool {
        self.checkpoint.as_ref().is_some_and(|c| c.should_stop())
    }

    /// Emit a deterministic search-scope event (no-op without a sink).
    /// Public so the search strategies driving this engine can mark
    /// search-level spans in the same trace.
    pub fn emit(&self, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Json)>) {
        if let Some(sink) = &self.sink {
            sink.search(kind, name, fields);
        }
    }

    fn observer(&self) -> Option<&EventSink> {
        self.sink.as_deref()
    }

    /// Fresh stats carrying this engine's configuration (and the
    /// attached store's load-time drop counter, so every report of a
    /// store-backed run surfaces the corruption it tolerated).
    pub fn stats_seed(&self) -> EngineStats {
        EngineStats {
            jobs: self.config.jobs,
            budget: self.config.budget,
            store_records_dropped: self.store.as_ref().map_or(0, |s| s.records_dropped()),
            ..Default::default()
        }
    }

    /// Statically evaluate every candidate on the worker pool. Output
    /// order matches the source's enumeration regardless of `jobs`.
    ///
    /// The `source` may be an eager slice (`&candidates`) or a lazy
    /// view that instantiates points on demand — workers call
    /// [`CandidateSource::get`], so for a lazy source kernel generation
    /// and the pass pipelines run inside the pool and the full space is
    /// never materialized up front.
    ///
    /// `None` entries are the paper's "invalid executable" cases
    /// (resource-exceeded) *and* candidates quarantined by any other
    /// failure; the latter are recorded in `quarantine`.
    pub fn evaluate_statics(
        &self,
        eval: &dyn StaticEval,
        source: &dyn CandidateSource,
        spec: &MachineSpec,
        stats: &mut EngineStats,
        quarantine: &mut Vec<Quarantine>,
    ) -> Vec<Option<Evaluated>> {
        let phase_started = Instant::now();
        self.emit(EventKind::Begin, "phase.static", vec![("candidates", Json::from(source.len()))]);
        stats.static_evals += source.len();
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut results: Vec<Result<Evaluated, EvalError>> = pool::run_indexed_observed(
            self.config.jobs,
            source.len(),
            |i| eval.evaluate(&source.get(i), spec),
            self.observer(),
            "static",
        )
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| Err(pool_to_eval(p))))
        .collect();
        let mut attempts: Vec<u32> = vec![1; source.len()];
        for attempt in 2..=max_attempts {
            let retry: Vec<usize> = results
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Err(e) if e.is_transient()))
                .map(|(i, _)| i)
                .collect();
            if retry.is_empty() {
                break;
            }
            stats.retries += retry.len();
            self.emit(
                EventKind::Point,
                "retry.round",
                vec![
                    ("phase", Json::from("static")),
                    ("attempt", Json::from(attempt)),
                    ("count", Json::from(retry.len())),
                ],
            );
            let redo = pool::run_indexed_observed(
                self.config.jobs,
                retry.len(),
                |k| eval.evaluate(&source.get(retry[k]), spec),
                self.observer(),
                "static",
            );
            for (k, r) in redo.into_iter().enumerate() {
                attempts[retry[k]] = attempt;
                results[retry[k]] = r.unwrap_or_else(|p| Err(pool_to_eval(p)));
            }
        }
        let out: Vec<Option<Evaluated>> = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(e) => Some(e),
                // Expected invalidity, not a fault: stays out of
                // quarantine so the paper's valid/invalid split is
                // unchanged.
                Err(EvalError::ResourceExceeded { .. }) => None,
                Err(e) => {
                    stats.quarantined += 1;
                    let label = source.label(i);
                    if e.kind() == EvalErrorKind::Race {
                        // Race findings get their own verify-stage event
                        // so trace consumers can tell soundness
                        // violations from resource/fault quarantines.
                        self.emit(
                            EventKind::Point,
                            "verify.race",
                            vec![
                                ("candidate", Json::from(i)),
                                ("label", Json::from(label.as_str())),
                                ("detail", Json::from(e.to_string())),
                            ],
                        );
                    }
                    self.emit(
                        EventKind::Point,
                        "quarantine",
                        vec![
                            ("phase", Json::from("static")),
                            ("candidate", Json::from(i)),
                            ("label", Json::from(label.as_str())),
                            ("kind", Json::from(e.kind().to_string())),
                            ("attempts", Json::from(attempts[i])),
                        ],
                    );
                    quarantine.push(Quarantine {
                        candidate: i,
                        label,
                        error: e,
                        attempts: attempts[i],
                    });
                    None
                }
            })
            .collect();
        let valid = out.iter().flatten().count();
        self.emit(
            EventKind::End,
            "phase.static",
            vec![("valid", Json::from(valid)), ("invalid", Json::from(out.len() - valid))],
        );
        if let Some(sink) = &self.sink {
            sink.add_phase_wall_us(Phase::Static, phase_started.elapsed().as_micros() as u64);
        }
        out
    }

    /// Timing-simulate the selected candidates: deduplicate through the
    /// memo cache, group work-per-invocation families, run the remaining
    /// unique work on the pool, and reassemble per-candidate reports
    /// (invocation scaling included) in candidate-index order.
    ///
    /// Selected candidates must be valid (have a `Some` static
    /// evaluation); invalid ones are skipped. Candidates whose
    /// simulation fails permanently (or exhausts its retries) are
    /// appended to `quarantine` and stay `None` in the output.
    // The two-phase search protocol genuinely threads this much state:
    // evaluator, space, static results, selection, machine, and the two
    // mutable accounting sinks.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_selected(
        &self,
        eval: &dyn TimingEval,
        source: &dyn CandidateSource,
        statics: &[Option<Evaluated>],
        selected: &[usize],
        spec: &MachineSpec,
        stats: &mut EngineStats,
        quarantine: &mut Vec<Quarantine>,
    ) -> Vec<Option<TimingReport>> {
        let phase_started = Instant::now();
        self.emit(EventKind::Begin, "phase.timing", vec![("selected", Json::from(selected.len()))]);
        // `stats` may arrive pre-populated (batched searches reuse one
        // accumulator across many calls), so the cache-hit derivation
        // at the end of the phase must work on this call's deltas.
        let (timed_at_entry, unique_at_entry, store_at_entry) =
            (stats.timed, stats.unique_sims, stats.store_hits);
        let mut simulated: Vec<Option<TimingReport>> = vec![None; source.len()];
        let plan = self.config.fault_plan;

        // Resume: wrap the evaluator so checkpointed results are served
        // in place of fresh simulations. Everything downstream — unit
        // grouping, retry rounds, accounting, events — is oblivious to
        // where a result came from, which is what makes a resumed run
        // byte-identical to an uninterrupted one.
        let replay_holder;
        let eval: &dyn TimingEval = match &self.replay {
            Some(map) => {
                replay_holder = checkpoint::ReplayEval::new(eval, Arc::clone(map));
                &replay_holder
            }
            None => eval,
        };

        // Phase 1a: instantiate and linearize the selected candidates on
        // the worker pool. For an eager slice source this merely borrows;
        // for a lazy point source this is where kernel generation and the
        // pass pipelines actually run — inside the pool, never
        // materialized up front. Pool dispatch emits only Runtime-scope
        // events, so the canonical (Search-scope) trace is unchanged.
        let eligible: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|&i| statics.get(i).is_some_and(Option::is_some))
            .collect();
        let prepared = pool::run_indexed_observed(
            self.config.jobs,
            eligible.len(),
            |k| {
                let c = source.get(eligible[k]);
                (linearize(&c.kernel), c.launch, c.invocations)
            },
            self.observer(),
            "timing",
        );

        // Phase 1b: key and deduplicate. `uniques` keeps discovery order,
        // which makes every later ordering decision deterministic.
        let mut unique_of: HashMap<u64, usize> = HashMap::new();
        let mut uniques: Vec<UniqueSim> = Vec::new();
        // (candidate, unique, invocations)
        let mut assignments: Vec<(usize, usize, u32)> = Vec::new();
        for (&i, prep) in eligible.iter().zip(prepared) {
            let Some(e) = statics.get(i).and_then(|s| s.as_ref()) else { continue };
            let (prog, launch, invocations) = match prep {
                Ok(p) => p,
                // The prepare worker died (a panicking generator, say):
                // the candidate never reaches dedup, so quarantine it
                // here as worker-lost.
                Err(perr) => {
                    let err = pool_to_eval(perr);
                    stats.quarantined += 1;
                    let label = source.label(i);
                    self.emit(
                        EventKind::Point,
                        "quarantine",
                        vec![
                            ("phase", Json::from("timing")),
                            ("candidate", Json::from(i)),
                            ("label", Json::from(label.as_str())),
                            ("kind", Json::from(err.kind().to_string())),
                            ("attempts", Json::from(1u32)),
                        ],
                    );
                    quarantine.push(Quarantine { candidate: i, label, error: err, attempts: 1 });
                    continue;
                }
            };
            let usage = e.kernel_profile.usage;
            let lookup_started = Instant::now();
            let exact = cache::exact_key(&prog, &launch, &usage, spec);
            let hit = unique_of.get(&exact).copied();
            if let Some(sink) = &self.sink {
                sink.record_latency(
                    LatencyLane::CacheLookup,
                    lookup_started.elapsed().as_micros() as u64,
                );
            }
            let u = hit.unwrap_or(uniques.len());
            self.emit(
                EventKind::Point,
                if hit.is_some() { "cache.hit" } else { "cache.miss" },
                vec![("candidate", Json::from(i)), ("unique", Json::from(u))],
            );
            if hit.is_none() {
                let class = cache::class_key(&prog, &launch, &usage, spec);
                // Decode once per masked structure: the arena stores no
                // trip counts, so every family member (and every probe
                // corner sharing the class) reuses it verbatim — only
                // the per-program trip vector is rebuilt.
                let decode_started = Instant::now();
                let mut shared = self.decoded.lock().expect("decode cache poisoned");
                let (decoded, fresh) = match shared.get(&class.hash) {
                    Some(arena) => (DecodedProgram::with_arena(prog, Arc::clone(arena)), false),
                    None => {
                        let d = DecodedProgram::new(prog);
                        shared.insert(class.hash, Arc::clone(&d.arena));
                        (d, true)
                    }
                };
                drop(shared);
                if let Some(sink) = &self.sink {
                    sink.record_latency(
                        LatencyLane::Decode,
                        decode_started.elapsed().as_micros() as u64,
                    );
                }
                if fresh {
                    self.emit(
                        EventKind::Point,
                        "decode.done",
                        vec![
                            ("unique", Json::from(u)),
                            ("ops", Json::from(decoded.op_count())),
                            ("arena_bytes", Json::from(decoded.arena.arena_bytes())),
                        ],
                    );
                }
                uniques.push(UniqueSim { prog: decoded, launch, usage, exact, class });
                unique_of.insert(exact, u);
            }
            assignments.push((i, u, invocations));
        }

        // Phase 1c: consult the persistent result store before anything
        // is scheduled. A store-resolved unique never becomes a work
        // unit — on a fully warm store the pool dispatches nothing.
        // Replayed keys are exempt: a resume must account them exactly
        // as the original run did (fresh simulations), or the resumed
        // report would drift from the uninterrupted one.
        let mut outcomes_of: Vec<Option<Result<TimingReport, EvalError>>> =
            (0..uniques.len()).map(|_| None).collect();
        let mut from_store: Vec<bool> = vec![false; uniques.len()];
        if let Some(store) = &self.store {
            for (u, uq) in uniques.iter().enumerate() {
                if self.replay.as_ref().is_some_and(|r| r.contains_key(&uq.exact)) {
                    continue;
                }
                let read_started = Instant::now();
                let cached = store.get(uq.exact);
                if let Some(sink) = &self.sink {
                    sink.record_latency(
                        LatencyLane::StoreIo,
                        read_started.elapsed().as_micros() as u64,
                    );
                }
                if let Some(rep) = cached {
                    stats.store_hits += 1;
                    self.emit(EventKind::Point, "store.hit", vec![("unique", Json::from(u))]);
                    outcomes_of[u] = Some(Ok(rep));
                    from_store[u] = true;
                }
            }
        }

        // Phase 2: group uniques by class into work units. Members may
        // differ in any number of top-level trip counts — the forked run
        // varies every differing axis. A class containing a
        // fault-injected member degrades to singles, so one failure
        // cannot poison the rest of its family through the shared forked
        // run.
        let mut group_of: HashMap<u64, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (u, uq) in uniques.iter().enumerate() {
            if from_store[u] {
                continue;
            }
            let hash = uq.class.hash;
            match group_of.get(&hash) {
                Some(&g) => groups[g].push(u),
                None => {
                    group_of.insert(hash, groups.len());
                    groups.push(vec![u]);
                }
            }
        }
        let mut units: Vec<WorkUnit> = Vec::new();
        for members in groups {
            if members.len() == 1 {
                units.push(WorkUnit::Single(members[0]));
                continue;
            }
            let faulted = plan
                .is_some_and(|p| members.iter().any(|&m| p.fault_for(uniques[m].exact).is_some()));
            let forkable = !faulted
                && members[1..].iter().all(|&m| {
                    uniques[members[0]].class.family_compatible(&uniques[m].class)
                        && uniques[m].class.top_trips.iter().all(|&t| t >= 1)
                })
                && uniques[members[0]].class.top_trips.iter().all(|&t| t >= 1);
            if forkable {
                units.push(WorkUnit::Family(members));
            } else {
                units.extend(members.into_iter().map(WorkUnit::Single));
            }
        }

        // Phase 3: the `max_sims` half of the budget — drop whole units
        // past the cap, in discovery order.
        if let Some(cap) = self.config.budget.max_sims {
            if units.len() > cap {
                self.emit(
                    EventKind::Point,
                    "budget.truncate",
                    vec![("units", Json::from(units.len())), ("cap", Json::from(cap))],
                );
                units.truncate(cap);
                stats.budget_truncated = true;
            }
        }

        // Phase 4: run the units on the pool in deterministic retry
        // rounds. Round 1 dispatches every unit; each later round
        // re-dispatches (as singles) only the uniques whose failure was
        // transient, until the retry policy is exhausted. Failed results
        // are never stored as reusable cache entries — a retried unique
        // is always re-simulated from scratch.
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempts_of: Vec<u32> = vec![0; uniques.len()];
        let mut round_units = units;
        let mut attempt: u32 = 1;
        // Dispatch in chunks when a checkpointer is attached. The unit
        // list is fixed before dispatch and units are independent, so
        // outcomes are identical at any chunk size — chunking only
        // creates the between-chunk points where completed results are
        // recorded, snapshots published, and interruption observed.
        let chunk = self.checkpoint.as_ref().map_or(usize::MAX, |ck| ck.every().max(1));
        'rounds: while !round_units.is_empty() {
            if attempt >= 2 {
                self.emit(
                    EventKind::Point,
                    "retry.round",
                    vec![
                        ("phase", Json::from("timing")),
                        ("attempt", Json::from(attempt)),
                        ("count", Json::from(round_units.len())),
                    ],
                );
            }
            let mut retry: Vec<usize> = Vec::new();
            let mut start = 0;
            while start < round_units.len() {
                let end = round_units.len().min(start.saturating_add(chunk));
                let observer = self.observer();
                let outcomes = pool::run_indexed_observed(
                    self.config.jobs,
                    end - start,
                    |k| {
                        let sim_started = Instant::now();
                        let out = run_unit(
                            &round_units[start + k],
                            &uniques,
                            eval,
                            spec,
                            plan.as_ref(),
                            attempt,
                        );
                        if let Some(sink) = observer {
                            sink.record_latency(
                                LatencyLane::Sim,
                                sim_started.elapsed().as_micros() as u64,
                            );
                        }
                        out
                    },
                    observer,
                    "timing",
                );
                for (k, pooled) in outcomes.into_iter().enumerate() {
                    let k = start + k;
                    match pooled {
                        Ok((reports, sims_run, injected)) => {
                            stats.unique_sims += sims_run;
                            stats.injected_faults += injected;
                            // A family unit that came back from a single
                            // forked run actually collapsed its members —
                            // count the collapse (a degraded family runs its
                            // members individually and is not a fork).
                            if let WorkUnit::Family(members) = &round_units[k] {
                                if sims_run == 1 {
                                    stats.family_forks += 1;
                                    stats.family_members += members.len();
                                    self.emit(
                                        EventKind::Point,
                                        "family.fork",
                                        vec![("members", Json::from(members.len()))],
                                    );
                                }
                            }
                            for (u, r) in reports {
                                attempts_of[u] = attempt;
                                if matches!(&r, Err(e) if e.is_transient())
                                    && attempt < max_attempts
                                {
                                    retry.push(u);
                                }
                                outcomes_of[u] = Some(r);
                            }
                        }
                        // The whole unit's worker vanished: every member is
                        // transiently lost.
                        Err(perr) => {
                            let err = pool_to_eval(perr);
                            for &u in round_units[k].members() {
                                attempts_of[u] = attempt;
                                if attempt < max_attempts {
                                    retry.push(u);
                                }
                                outcomes_of[u] = Some(Err(err.clone()));
                            }
                        }
                    }
                }
                if let Some(ck) = &self.checkpoint {
                    for unit in &round_units[start..end] {
                        for &u in unit.members() {
                            if let Some(Ok(rep)) = &outcomes_of[u] {
                                ck.record(uniques[u].exact, rep);
                            }
                        }
                    }
                    if let Err(e) = ck.units_finished(end - start) {
                        eprintln!("checkpoint {}: periodic write failed: {e}", ck.path().display());
                    }
                    if ck.should_stop() {
                        // Stop scheduling; undispatched units stay None
                        // (treated like budget-truncated work). The CLI
                        // publishes the final snapshot and exits.
                        break 'rounds;
                    }
                }
                start = end;
            }
            retry.sort_unstable();
            retry.dedup();
            stats.retries += retry.len();
            round_units = retry.into_iter().map(WorkUnit::Single).collect();
            attempt += 1;
        }

        // Persist this call's fresh successes write-behind. Failures are
        // never stored, mirroring the memo cache's rule.
        if let Some(store) = &self.store {
            let write_started = Instant::now();
            for (u, uq) in uniques.iter().enumerate() {
                if !from_store[u] {
                    if let Some(Ok(rep)) = &outcomes_of[u] {
                        store.put(uq.exact, rep);
                    }
                }
            }
            if let Err(e) = store.flush() {
                eprintln!("result store {}: flush failed: {e}", store.dir().display());
            }
            if let Some(sink) = &self.sink {
                sink.record_latency(
                    LatencyLane::StoreIo,
                    write_started.elapsed().as_micros() as u64,
                );
            }
        }

        // Simulator-side accounting is per *unique* run, pre-scaling, so
        // it is independent of how many candidates share each entry.
        // Store-served results are excluded: this run burned no fuel or
        // cycles on them.
        for (u, out) in outcomes_of.iter().enumerate() {
            let Some(Ok(rep)) = out else { continue };
            if from_store[u] {
                continue;
            }
            stats.fuel_consumed += rep.steps;
            stats.sim_cycles += rep.total_cycles;
            stats.stall_mem_cycles += rep.stall_mem_cycles;
            stats.stall_sfu_cycles += rep.stall_sfu_cycles;
            stats.stall_arith_cycles += rep.stall_arith_cycles;
            stats.stall_other_cycles += rep.stall_other_cycles;
        }

        // Phase 5: reassemble per candidate in index order, applying
        // invocation scaling and the simulated-time deadline. Failures
        // quarantine every candidate mapped to the failed unique.
        assignments.sort_by_key(|&(i, _, _)| i);
        let mut meter = budget::DeadlineMeter::new(&self.config.budget);
        // Uniques whose first accepted candidate already advanced the
        // convergence recorder's fresh-simulation count.
        let mut fresh_counted: HashSet<usize> = HashSet::new();
        for (i, u, invocations) in assignments {
            match &outcomes_of[u] {
                // Budget-truncated before dispatch: not evaluated, not
                // quarantined.
                None => {}
                Some(Ok(rep)) => {
                    let scaled = scale_by_invocations(rep.clone(), invocations);
                    if meter.accept(scaled.time_ms) {
                        stats.timed += 1;
                        let fresh = !from_store[u] && fresh_counted.insert(u);
                        self.convergence.observe(
                            stats.timed as u64,
                            fresh,
                            scaled.time_ms,
                            stats.bound_pruned_points as u64,
                        );
                        self.emit(
                            EventKind::Point,
                            "sim.done",
                            vec![
                                ("candidate", Json::from(i)),
                                ("unique", Json::from(u)),
                                ("time_ms", Json::from(scaled.time_ms)),
                            ],
                        );
                        simulated[i] = Some(scaled);
                    } else {
                        self.emit(
                            EventKind::Point,
                            "budget.deadline",
                            vec![("candidate", Json::from(i))],
                        );
                        stats.budget_truncated = true;
                    }
                }
                Some(Err(e)) => {
                    stats.quarantined += 1;
                    let label = source.label(i);
                    self.emit(
                        EventKind::Point,
                        "quarantine",
                        vec![
                            ("phase", Json::from("timing")),
                            ("candidate", Json::from(i)),
                            ("label", Json::from(label.as_str())),
                            ("kind", Json::from(e.kind().to_string())),
                            ("attempts", Json::from(attempts_of[u])),
                        ],
                    );
                    quarantine.push(Quarantine {
                        candidate: i,
                        label,
                        error: e.clone(),
                        attempts: attempts_of[u],
                    });
                }
            }
        }
        // Every timed candidate was served by exactly one of: a fresh
        // simulation, a store hit, or memo-cache sharing — the remainder
        // after subtracting the first two is the cache-hit count.
        stats.cache_hits += (stats.timed - timed_at_entry)
            .saturating_sub(stats.unique_sims - unique_at_entry)
            .saturating_sub(stats.store_hits - store_at_entry);
        self.emit(
            EventKind::End,
            "phase.timing",
            vec![
                ("timed", Json::from(stats.timed)),
                ("unique_sims", Json::from(stats.unique_sims)),
            ],
        );
        if let Some(sink) = &self.sink {
            sink.add_phase_wall_us(Phase::Timing, phase_started.elapsed().as_micros() as u64);
        }
        simulated
    }
}

/// The outcome of one candidate an iterative strategy proposed, fed
/// back before its next batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Candidate index (dense enumeration ordinal of the source).
    pub candidate: usize,
    /// Scaled simulated time; `None` means the candidate failed
    /// permanently (it was quarantined) — the driver will never
    /// dispatch it again, so the strategy must write it off too.
    pub time_ms: Option<f64>,
}

/// The engine-facing half of the iterative-search protocol: something
/// that turns the previous round's observations into the next batch of
/// candidate indices. `optspace::tuner::IterativeStrategy` adapts onto
/// this; the engine only needs the proposal loop.
pub trait Proposer {
    /// Next batch of candidate indices to evaluate. `observed` holds
    /// the decided outcomes of the previous batch (empty on the first
    /// call). Returning an empty batch ends the search.
    fn propose(&mut self, observed: &[Observation]) -> Vec<usize>;
}

impl EvalEngine {
    /// Round-based driver for iterative strategies: alternate proposer
    /// batches with the parallel timing phase until the proposer
    /// returns an empty batch, the budget trips, or a stop is
    /// requested.
    ///
    /// Each round runs through [`EvalEngine::simulate_selected`] on a
    /// per-round engine clone holding exactly the budget the search has
    /// left (the pattern batched branch-and-bound uses), so the memo
    /// cache accounting, the result store, fault injection, and the
    /// shared [`ConvergenceRecorder`] all thread through unchanged and
    /// the assembled results are byte-identical at any `jobs`.
    ///
    /// The driver enforces the protocol's safety rules regardless of
    /// proposer behavior: a batch is deduplicated in proposal order,
    /// and a candidate that already has a verdict — timed, statically
    /// invalid, or quarantined — is never dispatched again (a
    /// quarantined candidate is observed exactly once, as a failure).
    /// Checkpointing is not supported here: iterative strategy state is
    /// not snapshotted, and callers are expected to reject the
    /// combination up front.
    #[allow(clippy::too_many_arguments)]
    pub fn drive_iterative(
        &self,
        eval: &dyn TimingEval,
        source: &dyn CandidateSource,
        statics: &[Option<Evaluated>],
        proposer: &mut dyn Proposer,
        spec: &MachineSpec,
        stats: &mut EngineStats,
        quarantine: &mut Vec<Quarantine>,
    ) -> Vec<Option<TimingReport>> {
        let mut simulated: Vec<Option<TimingReport>> = vec![None; source.len()];
        // Invalid candidates already have their verdict (the statics
        // rejected them); proposing one is a no-op, not a re-dispatch.
        let mut decided: Vec<bool> = statics.iter().map(Option::is_none).collect();
        let mut observed: Vec<Observation> = Vec::new();
        let mut spent_ms = 0.0f64;
        let mut round = 0usize;
        loop {
            let raw = proposer.propose(&observed);
            if raw.is_empty() {
                break;
            }
            let mut batch: Vec<usize> = Vec::new();
            for i in raw {
                if i < source.len() && !decided[i] && !batch.contains(&i) {
                    batch.push(i);
                }
            }
            self.emit(
                EventKind::Point,
                "search.round",
                vec![("round", Json::from(round)), ("batch", Json::from(batch.len()))],
            );
            if batch.is_empty() {
                // Everything proposed this round already had a verdict:
                // a confused proposer would spin forever, so end the
                // search instead.
                break;
            }
            // Budgets are enforced per engine call; hand each round only
            // what the whole search has left.
            let mut round_engine = self.clone();
            if let Some(cap) = self.config.budget.max_sims {
                round_engine.config.budget.max_sims = Some(cap.saturating_sub(stats.unique_sims));
            }
            if let Some(deadline) = self.config.budget.deadline_ms {
                round_engine.config.budget.deadline_ms = Some(deadline - spent_ms);
            }
            let mut round_quar: Vec<Quarantine> = Vec::new();
            let sims = round_engine.simulate_selected(
                eval,
                source,
                statics,
                &batch,
                spec,
                stats,
                &mut round_quar,
            );
            observed.clear();
            for &i in &batch {
                match &sims[i] {
                    Some(t) => {
                        spent_ms += t.time_ms;
                        decided[i] = true;
                        observed.push(Observation { candidate: i, time_ms: Some(t.time_ms) });
                        simulated[i] = sims[i].clone();
                    }
                    None => {
                        // No result: either quarantined (a permanent
                        // verdict, observed as a failure) or
                        // budget-truncated (no verdict — but the loop
                        // is about to stop anyway).
                        if round_quar.iter().any(|q| q.candidate == i) {
                            decided[i] = true;
                            observed.push(Observation { candidate: i, time_ms: None });
                        }
                    }
                }
            }
            quarantine.extend(round_quar);
            round += 1;
            if stats.budget_truncated || self.stop_requested() {
                break;
            }
        }
        simulated
    }
}

/// One work unit's outcome: per-unique results, simulations executed,
/// and faults injected.
type UnitOutcome = (Vec<(usize, Result<TimingReport, EvalError>)>, usize, usize);

/// Execute one work unit.
fn run_unit(
    unit: &WorkUnit,
    uniques: &[UniqueSim],
    eval: &dyn TimingEval,
    spec: &MachineSpec,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> UnitOutcome {
    match unit {
        WorkUnit::Single(u) => {
            let uq = &uniques[*u];
            if let Some(fault) = plan.and_then(|p| p.fault_for(uq.exact)) {
                if fault.fires_on(attempt) {
                    let err = EvalError::Injected { transient: !fault.is_permanent() };
                    return (vec![(*u, Err(err))], 0, 1);
                }
            }
            (vec![(*u, eval.simulate(&uq.prog, &uq.launch, &uq.usage, spec))], 1, 0)
        }
        WorkUnit::Family(members) => {
            let first = &uniques[members[0]];
            let progs: Vec<&DecodedProgram> = members.iter().map(|&m| &uniques[m].prog).collect();
            match eval.simulate_family(&progs, &first.launch, &first.usage, spec) {
                Some(reports) => {
                    (members.iter().copied().zip(reports.into_iter().map(Ok)).collect(), 1, 0)
                }
                // Not actually forkable, the evaluator does not support
                // families, or the shared run failed: simulate each
                // member on its own, attributing failures individually.
                None => (
                    members
                        .iter()
                        .map(|&m| {
                            let uq = &uniques[m];
                            (m, eval.simulate(&uq.prog, &uq.launch, &uq.usage, spec))
                        })
                        .collect(),
                    members.len(),
                    0,
                ),
            }
        }
    }
}

/// A multi-invocation configuration pays the kernel time and the launch
/// overhead once per invocation. Cached reports are per-invocation;
/// scaling happens after cache lookup so invocation variants share one
/// entry.
fn scale_by_invocations(mut report: TimingReport, invocations: u32) -> TimingReport {
    let inv = f64::from(invocations);
    report.time_ms = report.time_ms * inv + LAUNCH_OVERHEAD_MS * inv;
    report.total_cycles = (report.total_cycles as f64 * inv).round() as u64;
    report.waves *= inv;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    fn loop_kernel(trips: u32, work: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 0);
            for _ in 0..work {
                b.fmad_acc(x, 1.0f32, acc);
            }
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    fn candidate(trips: u32, work: u32, invocations: u32) -> Candidate {
        Candidate::new(
            format!("t{trips}/w{work}/i{invocations}"),
            loop_kernel(trips, work),
            Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
        )
        .with_invocations(invocations)
    }

    fn run_exhaustive(
        engine: &EvalEngine,
        cands: &[Candidate],
    ) -> (Vec<Option<TimingReport>>, EngineStats, Vec<Quarantine>) {
        let spec = g80();
        let mut stats = engine.stats_seed();
        let mut quarantine = Vec::new();
        let statics = engine.evaluate_statics(
            &MetricsEval::default(),
            &cands,
            &spec,
            &mut stats,
            &mut quarantine,
        );
        let selected: Vec<usize> =
            statics.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect();
        let sims = engine.simulate_selected(
            &SimulatorEval::default(),
            &cands,
            &statics,
            &selected,
            &spec,
            &mut stats,
            &mut quarantine,
        );
        (sims, stats, quarantine)
    }

    #[test]
    fn invocation_variants_hit_the_cache_and_match_standalone_results() {
        // 4 invocation splits of the same (work) kernel + 1 oddball:
        // the splits share a class, so 2 unique simulations cover 5
        // candidates.
        let total_trips = 48u32;
        let cands: Vec<Candidate> = [1u32, 2, 4, 8]
            .iter()
            .map(|&inv| candidate(total_trips / inv, 2, inv))
            .chain([candidate(48, 5, 1)])
            .collect();
        let (sims, stats, quarantine) = run_exhaustive(&EvalEngine::default(), &cands);
        assert_eq!(stats.timed, 5);
        assert_eq!(stats.unique_sims, 2);
        assert_eq!(stats.cache_hits, 3);
        assert!(quarantine.is_empty());
        // Every report must equal the standalone sequential result.
        let spec = g80();
        for (c, got) in cands.iter().zip(&sims) {
            let e = c.evaluate(&spec).unwrap();
            let prog = gpu_ir::linear::linearize(&c.kernel);
            let want = scale_by_invocations(
                gpu_sim::timing::simulate(&prog, &c.launch, &e.kernel_profile.usage, &spec)
                    .unwrap(),
                c.invocations,
            );
            assert_eq!(got.as_ref().unwrap(), &want, "{}", c.label);
        }
    }

    #[test]
    fn exact_duplicates_are_simulated_once() {
        let cands = vec![candidate(16, 2, 1), candidate(16, 2, 1), candidate(16, 2, 4)];
        let (sims, stats, _) = run_exhaustive(&EvalEngine::default(), &cands);
        assert_eq!(stats.unique_sims, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(sims[0], sims[1]);
        // The inv=4 variant shares the cache entry but scales differently.
        assert!(sims[2].as_ref().unwrap().time_ms > sims[0].as_ref().unwrap().time_ms);
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let cands: Vec<Candidate> =
            (1..=6).map(|t| candidate(8 * t, t, 1)).chain([candidate(24, 3, 2)]).collect();
        let (base, base_stats, _) = run_exhaustive(&EvalEngine::default(), &cands);
        for jobs in [2, 4, 8] {
            let (got, stats, _) = run_exhaustive(&EvalEngine::with_jobs(jobs), &cands);
            assert_eq!(got, base, "jobs = {jobs}");
            assert_eq!(stats.unique_sims, base_stats.unique_sims);
            assert_eq!(stats.cache_hits, base_stats.cache_hits);
        }
    }

    #[test]
    fn max_sims_budget_truncates_deterministically() {
        let cands: Vec<Candidate> = (1..=5).map(|t| candidate(8 * t, t, 1)).collect();
        let engine = EvalEngine::new(EngineConfig {
            jobs: 1,
            budget: EvalBudget::with_max_sims(2),
            ..Default::default()
        });
        let (sims, stats, _) = run_exhaustive(&engine, &cands);
        assert!(stats.budget_truncated);
        assert_eq!(stats.unique_sims, 2);
        // The first two units (discovery order) ran; the rest did not.
        assert!(sims[0].is_some() && sims[1].is_some());
        assert!(sims[2].is_none() && sims[3].is_none() && sims[4].is_none());
        // Parallel run truncates identically.
        let par = EvalEngine::new(EngineConfig {
            jobs: 4,
            budget: EvalBudget::with_max_sims(2),
            ..Default::default()
        });
        let (par_sims, _, _) = run_exhaustive(&par, &cands);
        assert_eq!(par_sims, sims);
    }

    #[test]
    fn deadline_budget_keeps_the_crossing_candidate() {
        let cands: Vec<Candidate> = (1..=5).map(|t| candidate(8 * t, t, 1)).collect();
        let (all, _, _) = run_exhaustive(&EvalEngine::default(), &cands);
        let t0 = all[0].as_ref().unwrap().time_ms;
        let t1 = all[1].as_ref().unwrap().time_ms;
        // Deadline inside candidate 1: candidates 0 and 1 kept (1
        // crosses), 2.. dropped.
        let engine = EvalEngine::new(EngineConfig {
            jobs: 1,
            budget: EvalBudget::with_deadline_ms(t0 + t1 * 0.5),
            ..Default::default()
        });
        let (sims, stats, _) = run_exhaustive(&engine, &cands);
        assert!(stats.budget_truncated);
        assert_eq!(stats.timed, 2);
        assert!(sims[0].is_some() && sims[1].is_some());
        assert!(sims[2..].iter().all(Option::is_none));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    fn loop_kernel(trips: u32, work: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 0);
            for _ in 0..work {
                b.fmad_acc(x, 1.0f32, acc);
            }
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    fn candidate(trips: u32, work: u32, invocations: u32) -> Candidate {
        Candidate::new(
            format!("t{trips}/w{work}/i{invocations}"),
            loop_kernel(trips, work),
            Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
        )
        .with_invocations(invocations)
    }

    fn run_with_engine(
        engine: &EvalEngine,
        cands: &[Candidate],
    ) -> (Vec<Option<TimingReport>>, EngineStats, Vec<Quarantine>) {
        let spec = g80();
        let mut stats = engine.stats_seed();
        let mut quarantine = Vec::new();
        let statics = engine.evaluate_statics(
            &MetricsEval::default(),
            &cands,
            &spec,
            &mut stats,
            &mut quarantine,
        );
        let selected: Vec<usize> =
            statics.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect();
        let sims = engine.simulate_selected(
            &SimulatorEval::with_fuel(engine.config.sim_fuel),
            &cands,
            &statics,
            &selected,
            &spec,
            &mut stats,
            &mut quarantine,
        );
        (sims, stats, quarantine)
    }

    /// The exact content hash the engine will compute for a candidate.
    fn exact_of(c: &Candidate, spec: &MachineSpec) -> u64 {
        let e = c.evaluate(spec).unwrap();
        let prog = gpu_ir::linear::linearize(&c.kernel);
        cache::exact_key(&prog, &c.launch, &e.kernel_profile.usage, spec)
    }

    #[test]
    fn permanent_faults_quarantine_and_transient_faults_recover() {
        let spec = g80();
        let cands: Vec<Candidate> = (1..=8).map(|t| candidate(6 * t, t, 1)).collect();
        let hashes: Vec<u64> = cands.iter().map(|c| exact_of(c, &spec)).collect();

        // Find a seed injecting at least one permanent and one transient
        // fault into this space — deterministic, so the assertions below
        // are stable.
        let plan = (0..10_000u64)
            .map(FaultPlan::with_seed)
            .find(|p| {
                let faults: Vec<_> = hashes.iter().filter_map(|&h| p.fault_for(h)).collect();
                faults.iter().any(|f| f.is_permanent())
                    && faults.iter().any(|f| !f.is_permanent())
                    && faults.len() < hashes.len()
            })
            .expect("some seed exercises both fault flavors");

        let engine = EvalEngine::new(EngineConfig { fault_plan: Some(plan), ..Default::default() });
        let (sims, stats, quarantine) = run_with_engine(&engine, &cands);
        let (clean_sims, ..) = run_with_engine(&EvalEngine::default(), &cands);

        for (i, c) in cands.iter().enumerate() {
            match plan.fault_for(hashes[i]) {
                Some(f) if f.is_permanent() => {
                    assert!(sims[i].is_none(), "{} should be quarantined", c.label);
                    let q = quarantine
                        .iter()
                        .find(|q| q.candidate == i)
                        .expect("permanent fault is quarantined");
                    assert_eq!(q.error, EvalError::Injected { transient: false });
                    assert_eq!(q.attempts, 1, "permanent faults are not retried");
                }
                Some(_) => {
                    // Transient: retried to success, result identical to
                    // the fault-free run.
                    assert_eq!(sims[i], clean_sims[i], "{} should recover", c.label);
                    assert!(quarantine.iter().all(|q| q.candidate != i));
                }
                None => {
                    assert_eq!(sims[i], clean_sims[i], "{} untouched by the plan", c.label);
                }
            }
        }
        assert_eq!(stats.quarantined, quarantine.len());
        assert!(stats.injected_faults > 0);
        assert!(stats.retries > 0, "transient faults must be retried");
    }

    #[test]
    fn fault_injection_is_deterministic_across_worker_counts() {
        let cands: Vec<Candidate> = (1..=8).map(|t| candidate(6 * t, t, 1)).collect();
        let plan = FaultPlan { seed: 11, rate_per_mille: 400, transient_per_mille: 500 };
        let base = run_with_engine(
            &EvalEngine::new(EngineConfig { fault_plan: Some(plan), ..Default::default() }),
            &cands,
        );
        for jobs in [2usize, 8] {
            let par = run_with_engine(
                &EvalEngine::new(EngineConfig {
                    jobs,
                    fault_plan: Some(plan),
                    ..Default::default()
                }),
                &cands,
            );
            assert_eq!(par.0, base.0, "jobs = {jobs}");
            assert_eq!(par.2, base.2, "jobs = {jobs}");
            assert_eq!(par.1.unique_sims, base.1.unique_sims);
            assert_eq!(par.1.retries, base.1.retries);
            assert_eq!(par.1.injected_faults, base.1.injected_faults);
        }
    }

    #[test]
    fn a_faulted_family_member_does_not_poison_its_siblings() {
        // Four invocation splits of one kernel: a single family that the
        // engine would normally simulate in one forked run. Inject a
        // fault into exactly one member and the family must degrade to
        // singles — the siblings still produce their fault-free reports.
        let spec = g80();
        let total_trips = 48u32;
        let cands: Vec<Candidate> =
            [1u32, 2, 4, 8].iter().map(|&inv| candidate(total_trips / inv, 2, inv)).collect();
        let hashes: Vec<u64> = cands.iter().map(|c| exact_of(c, &spec)).collect();

        let plan = (0..100_000u64)
            .map(FaultPlan::with_seed)
            .find(|p| {
                let faulted: Vec<_> =
                    hashes.iter().filter(|&&h| p.fault_for(h).is_some()).collect();
                faulted.len() == 1 && p.fault_for(*faulted[0]).unwrap().is_permanent()
            })
            .expect("some seed faults exactly one member permanently");
        let victim = hashes
            .iter()
            .position(|&h| plan.fault_for(h).is_some())
            .expect("victim exists by construction");

        let (clean_sims, clean_stats, _) = run_with_engine(&EvalEngine::default(), &cands);
        assert_eq!(clean_stats.unique_sims, 1, "fault-free family forks in one run");

        let engine = EvalEngine::new(EngineConfig { fault_plan: Some(plan), ..Default::default() });
        let (sims, stats, quarantine) = run_with_engine(&engine, &cands);
        for (i, c) in cands.iter().enumerate() {
            if i == victim {
                assert!(sims[i].is_none());
                assert!(quarantine.iter().any(|q| q.candidate == i));
            } else {
                assert_eq!(sims[i], clean_sims[i], "sibling {} poisoned", c.label);
            }
        }
        // The degraded family runs its surviving members individually.
        assert_eq!(stats.unique_sims, cands.len() - 1);
        assert_eq!(quarantine.len(), 1);
    }

    #[test]
    fn a_panicking_evaluator_is_quarantined_not_fatal() {
        /// Panics on one specific program length, succeeds otherwise.
        struct PanickyEval {
            panic_on_trips: u32,
        }
        impl TimingEval for PanickyEval {
            fn simulate(
                &self,
                prog: &DecodedProgram,
                launch: &Launch,
                usage: &ResourceUsage,
                spec: &MachineSpec,
            ) -> Result<TimingReport, EvalError> {
                let trips = prog
                    .source
                    .code
                    .iter()
                    .find_map(|op| match op {
                        gpu_ir::linear::LinOp::LoopStart { trips, .. } => Some(*trips),
                        _ => None,
                    })
                    .unwrap_or(0);
                if trips == self.panic_on_trips {
                    panic!("deliberate test panic");
                }
                gpu_sim::timing::simulate_decoded(prog, launch, usage, spec).map_err(Into::into)
            }
        }

        let spec = g80();
        let cands: Vec<Candidate> = (1..=4).map(|t| candidate(10 * t, t, 1)).collect();
        for jobs in [1usize, 3] {
            let engine = EvalEngine::with_jobs(jobs);
            let mut stats = engine.stats_seed();
            let mut quarantine = Vec::new();
            let statics = engine.evaluate_statics(
                &MetricsEval::default(),
                &cands,
                &spec,
                &mut stats,
                &mut quarantine,
            );
            let selected: Vec<usize> = (0..cands.len()).collect();
            let sims = engine.simulate_selected(
                &PanickyEval { panic_on_trips: 20 },
                &cands,
                &statics,
                &selected,
                &spec,
                &mut stats,
                &mut quarantine,
            );
            // Candidate 1 (trips = 20) panics deterministically: retried
            // as transient, then quarantined as worker-lost.
            assert!(sims[1].is_none(), "jobs = {jobs}");
            let q = quarantine.iter().find(|q| q.candidate == 1).expect("panic quarantined");
            assert_eq!(q.error.kind(), EvalErrorKind::WorkerLost);
            assert_eq!(q.attempts, engine.config.retry.max_attempts);
            // Everyone else survives.
            for i in [0usize, 2, 3] {
                assert!(sims[i].is_some(), "jobs = {jobs}, candidate {i}");
            }
        }
    }

    #[test]
    fn fuel_exhaustion_quarantines_the_runaway_candidate() {
        let cands: Vec<Candidate> =
            vec![candidate(2, 1, 1), candidate(20_000, 2, 1), candidate(4, 3, 1)];
        let engine = EvalEngine::new(EngineConfig { sim_fuel: Some(20_000), ..Default::default() });
        let (sims, stats, quarantine) = run_with_engine(&engine, &cands);
        assert!(sims[0].is_some() && sims[2].is_some());
        assert!(sims[1].is_none());
        let q = quarantine.iter().find(|q| q.candidate == 1).expect("runaway quarantined");
        assert_eq!(q.error, EvalError::FuelExhausted { fuel: 20_000 });
        assert_eq!(q.attempts, 1, "fuel exhaustion is permanent, not retried");
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn verifying_static_eval_quarantines_malformed_kernels() {
        // A kernel that reads a register it never wrote.
        let mut b = KernelBuilder::new("bad");
        let p = b.param(0);
        let ghost = b.fresh();
        let acc = b.mov(0.0f32);
        b.fmad_acc(ghost, 1.0f32, acc);
        b.st_global(p, 0, acc);
        let bad = Candidate::new(
            "use-before-def",
            b.finish(),
            Launch::new(Dim::new_1d(16), Dim::new_1d(64)),
        );
        let good = candidate(4, 1, 1);
        let cands = vec![good, bad];

        let engine = EvalEngine::default();
        let mut stats = engine.stats_seed();
        let mut quarantine = Vec::new();
        let statics = engine.evaluate_statics(
            &MetricsEval { verify: true, ..Default::default() },
            &cands,
            &g80(),
            &mut stats,
            &mut quarantine,
        );
        assert!(statics[0].is_some());
        assert!(statics[1].is_none());
        assert_eq!(quarantine.len(), 1);
        assert_eq!(quarantine[0].candidate, 1);
        assert_eq!(quarantine[0].error.kind(), EvalErrorKind::Verify);
    }
}
