//! The evaluation engine: parallel, memoizing candidate evaluation
//! shared by every search strategy.
//!
//! The paper's search loop has two phases with very different costs:
//! cheap static evaluation (metrics + occupancy) of every configuration,
//! and expensive timing simulation of the configurations a strategy
//! selects. [`EvalEngine`] owns both phases:
//!
//! * **Worker pool** — both phases fan out over a fixed-size
//!   `std::thread` pool ([`pool`]); results are reassembled by candidate
//!   index, so reports are identical to a sequential run no matter how
//!   many workers are configured.
//! * **Memo cache** — timing work is deduplicated by a content hash of
//!   (linearized program, launch, resource usage, machine spec)
//!   ([`cache`]). Configurations differing only in their
//!   work-per-invocation split — same hash up to one top-level trip
//!   count — form a *family* simulated in one forked run
//!   (`gpu_sim::timing::simulate_family`), so each MRI-FHD cluster of
//!   seven costs roughly one simulation.
//! * **Budget** — optional caps on unique simulations and on accumulated
//!   simulated milliseconds ([`budget`]), applied deterministically and
//!   recorded in the search report's [`EngineStats`].
//!
//! The evaluators themselves are trait objects ([`StaticEval`],
//! [`TimingEval`]) so tests and future cost models can substitute the
//! metric computation or the simulator without touching the
//! orchestration.

pub mod budget;
pub mod cache;
pub mod pool;

use std::collections::HashMap;

use gpu_arch::{MachineSpec, ResourceUsage};
use gpu_ir::linear::{linearize, LinearProgram};
use gpu_ir::Launch;
use gpu_sim::timing::TimingReport;

use crate::candidate::{Candidate, Evaluated};
use crate::metrics::MetricsOptions;

pub use budget::EvalBudget;

/// Host-side overhead charged per kernel invocation (driver submission,
/// ~10 µs on the paper's CUDA 1.0 stack). This is what separates the
/// otherwise metric-identical work-per-invocation variants of MRI-FHD.
pub const LAUNCH_OVERHEAD_MS: f64 = 0.01;

/// Static evaluation of one candidate; `None` marks the paper's
/// "invalid executable" cases.
pub trait StaticEval: Sync {
    /// Evaluate one candidate.
    fn evaluate(&self, candidate: &Candidate, spec: &MachineSpec) -> Option<Evaluated>;
}

/// The standard static evaluator: metrics, occupancy, and the bandwidth
/// screen via [`Candidate::evaluate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsEval {
    /// Metric variant (ablations flow through here).
    pub options: MetricsOptions,
}

impl StaticEval for MetricsEval {
    fn evaluate(&self, candidate: &Candidate, spec: &MachineSpec) -> Option<Evaluated> {
        candidate.evaluate_with(spec, self.options).ok()
    }
}

/// Timing evaluation of one linearized program (a single invocation's
/// worth of work — the engine applies invocation scaling afterwards).
pub trait TimingEval: Sync {
    /// Simulate one program; `None` when the configuration cannot run.
    fn simulate(
        &self,
        prog: &LinearProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<TimingReport>;

    /// Simulate a family of programs differing only in one top-level
    /// trip count, in one forked run. `None` means "unsupported or not
    /// actually a family" — the engine falls back to individual
    /// [`TimingEval::simulate`] calls.
    fn simulate_family(
        &self,
        progs: &[&LinearProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<Vec<TimingReport>> {
        let _ = (progs, launch, usage, spec);
        None
    }
}

/// The standard timing evaluator: the warp-level G80 simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatorEval;

impl TimingEval for SimulatorEval {
    fn simulate(
        &self,
        prog: &LinearProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<TimingReport> {
        gpu_sim::timing::simulate(prog, launch, usage, spec).ok()
    }

    fn simulate_family(
        &self,
        progs: &[&LinearProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<Vec<TimingReport>> {
        gpu_sim::timing::simulate_family(progs, launch, usage, spec).ok()
    }
}

/// Engine configuration: parallelism plus evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for both evaluation phases. `1` (the default) runs
    /// strictly inline — the reference sequential path.
    pub jobs: usize,
    /// Budget on simulated work.
    pub budget: EvalBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { jobs: 1, budget: EvalBudget::UNLIMITED }
    }
}

/// Counters describing what the engine actually did during one search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Budget the engine ran under.
    pub budget: EvalBudget,
    /// Candidates statically evaluated (valid or not).
    pub static_evals: usize,
    /// Candidates that received a timing result.
    pub timed: usize,
    /// Timing simulations actually executed (a forked family run counts
    /// once).
    pub unique_sims: usize,
    /// Timed candidates served from the memo cache / family forks
    /// instead of a fresh simulation.
    pub cache_hits: usize,
    /// Whether a budget limit cut the evaluation short.
    pub budget_truncated: bool,
}

/// The shared evaluation engine. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalEngine {
    /// Parallelism and budget settings.
    pub config: EngineConfig,
}

/// One deduplicated simulation input (the memo cache's value side).
struct UniqueSim {
    prog: LinearProgram,
    launch: Launch,
    usage: ResourceUsage,
    class: cache::ClassKey,
}

/// A unit of simulation work dispatched to the pool.
enum WorkUnit {
    /// One unique program.
    Single(usize),
    /// Class-mates differing only in one top-level trip count, simulated
    /// in one forked run.
    Family(Vec<usize>),
}

impl EvalEngine {
    /// Engine with explicit configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// Engine with `jobs` workers and no budget.
    pub fn with_jobs(jobs: usize) -> Self {
        Self::new(EngineConfig { jobs: jobs.max(1), ..Default::default() })
    }

    /// Fresh stats carrying this engine's configuration.
    pub fn stats_seed(&self) -> EngineStats {
        EngineStats { jobs: self.config.jobs, budget: self.config.budget, ..Default::default() }
    }

    /// Statically evaluate every candidate on the worker pool. Output
    /// order matches `candidates` regardless of `jobs`.
    pub fn evaluate_statics(
        &self,
        eval: &dyn StaticEval,
        candidates: &[Candidate],
        spec: &MachineSpec,
        stats: &mut EngineStats,
    ) -> Vec<Option<Evaluated>> {
        stats.static_evals += candidates.len();
        pool::run_indexed(self.config.jobs, candidates.len(), |i| {
            eval.evaluate(&candidates[i], spec)
        })
    }

    /// Timing-simulate the selected candidates: deduplicate through the
    /// memo cache, group work-per-invocation families, run the remaining
    /// unique work on the pool, and reassemble per-candidate reports
    /// (invocation scaling included) in candidate-index order.
    ///
    /// Selected candidates must be valid (have a `Some` static
    /// evaluation); invalid ones are skipped.
    pub fn simulate_selected(
        &self,
        eval: &dyn TimingEval,
        candidates: &[Candidate],
        statics: &[Option<Evaluated>],
        selected: &[usize],
        spec: &MachineSpec,
        stats: &mut EngineStats,
    ) -> Vec<Option<TimingReport>> {
        let mut simulated: Vec<Option<TimingReport>> = vec![None; candidates.len()];

        // Phase 1: key and deduplicate. `uniques` keeps discovery order,
        // which makes every later ordering decision deterministic.
        let mut unique_of: HashMap<u64, usize> = HashMap::new();
        let mut uniques: Vec<UniqueSim> = Vec::new();
        let mut assignments: Vec<(usize, usize)> = Vec::new(); // (candidate, unique)
        for &i in selected {
            let Some(e) = statics.get(i).and_then(|s| s.as_ref()) else { continue };
            let c = &candidates[i];
            let prog = linearize(&c.kernel);
            let usage = e.kernel_profile.usage;
            let exact = cache::exact_key(&prog, &c.launch, &usage, spec);
            let u = *unique_of.entry(exact).or_insert_with(|| {
                let class = cache::class_key(&prog, &c.launch, &usage, spec);
                uniques.push(UniqueSim { prog, launch: c.launch, usage, class });
                uniques.len() - 1
            });
            assignments.push((i, u));
        }

        // Phase 2: group uniques by class into work units. A class whose
        // members differ in more than one top-level trip count cannot be
        // forked and degrades to singles.
        let mut group_of: HashMap<u64, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (u, uq) in uniques.iter().enumerate() {
            let hash = uq.class.hash;
            match group_of.get(&hash) {
                Some(&g) => groups[g].push(u),
                None => {
                    group_of.insert(hash, groups.len());
                    groups.push(vec![u]);
                }
            }
        }
        let mut units: Vec<WorkUnit> = Vec::new();
        for members in groups {
            if members.len() == 1 {
                units.push(WorkUnit::Single(members[0]));
                continue;
            }
            let forkable = members[1..].iter().all(|&m| {
                uniques[members[0]].class.family_compatible(&uniques[m].class)
                    && uniques[m].class.top_trips.iter().all(|&t| t >= 1)
            }) && uniques[members[0]].class.top_trips.iter().all(|&t| t >= 1)
                && varying_positions(&uniques, &members) <= 1;
            if forkable {
                units.push(WorkUnit::Family(members));
            } else {
                units.extend(members.into_iter().map(WorkUnit::Single));
            }
        }

        // Phase 3: the `max_sims` half of the budget — drop whole units
        // past the cap, in discovery order.
        if let Some(cap) = self.config.budget.max_sims {
            if units.len() > cap {
                units.truncate(cap);
                stats.budget_truncated = true;
            }
        }

        // Phase 4: run the units on the pool. Each returns its
        // per-unique reports plus the number of simulations it actually
        // executed (a family that falls back runs one per member).
        let outcomes = pool::run_indexed(self.config.jobs, units.len(), |k| {
            run_unit(&units[k], &uniques, eval, spec)
        });
        let mut unique_reports: Vec<Option<TimingReport>> = vec![None; uniques.len()];
        for (reports, sims_run) in outcomes {
            stats.unique_sims += sims_run;
            for (u, r) in reports {
                unique_reports[u] = r;
            }
        }

        // Phase 5: reassemble per candidate in index order, applying
        // invocation scaling and the simulated-time deadline.
        assignments.sort_by_key(|&(i, _)| i);
        let mut meter = budget::DeadlineMeter::new(&self.config.budget);
        for (i, u) in assignments {
            let Some(rep) = &unique_reports[u] else { continue };
            let scaled = scale_by_invocations(rep.clone(), candidates[i].invocations);
            if meter.accept(scaled.time_ms) {
                stats.timed += 1;
                simulated[i] = Some(scaled);
            } else {
                stats.budget_truncated = true;
            }
        }
        stats.cache_hits += stats.timed.saturating_sub(stats.unique_sims);
        simulated
    }
}

/// Number of top-level loop positions whose trip count varies across the
/// class members.
fn varying_positions(uniques: &[UniqueSim], members: &[usize]) -> usize {
    let first = &uniques[members[0]].class.top_trips;
    (0..first.len())
        .filter(|&p| {
            members[1..].iter().any(|&m| uniques[m].class.top_trips.get(p) != first.get(p))
        })
        .count()
}

/// Execute one work unit; returns `(per-unique reports, simulations
/// executed)`.
fn run_unit(
    unit: &WorkUnit,
    uniques: &[UniqueSim],
    eval: &dyn TimingEval,
    spec: &MachineSpec,
) -> (Vec<(usize, Option<TimingReport>)>, usize) {
    match unit {
        WorkUnit::Single(u) => {
            let uq = &uniques[*u];
            (vec![(*u, eval.simulate(&uq.prog, &uq.launch, &uq.usage, spec))], 1)
        }
        WorkUnit::Family(members) => {
            let first = &uniques[members[0]];
            let progs: Vec<&LinearProgram> = members.iter().map(|&m| &uniques[m].prog).collect();
            match eval.simulate_family(&progs, &first.launch, &first.usage, spec) {
                Some(reports) => {
                    (members.iter().copied().zip(reports.into_iter().map(Some)).collect(), 1)
                }
                // Not actually forkable (or the evaluator does not
                // support families): simulate each member on its own.
                None => (
                    members
                        .iter()
                        .map(|&m| {
                            let uq = &uniques[m];
                            (m, eval.simulate(&uq.prog, &uq.launch, &uq.usage, spec))
                        })
                        .collect(),
                    members.len(),
                ),
            }
        }
    }
}

/// A multi-invocation configuration pays the kernel time and the launch
/// overhead once per invocation. Cached reports are per-invocation;
/// scaling happens after cache lookup so invocation variants share one
/// entry.
fn scale_by_invocations(mut report: TimingReport, invocations: u32) -> TimingReport {
    let inv = f64::from(invocations);
    report.time_ms = report.time_ms * inv + LAUNCH_OVERHEAD_MS * inv;
    report.total_cycles = (report.total_cycles as f64 * inv).round() as u64;
    report.waves *= inv;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel};

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    fn loop_kernel(trips: u32, work: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 0);
            for _ in 0..work {
                b.fmad_acc(x, 1.0f32, acc);
            }
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    fn candidate(trips: u32, work: u32, invocations: u32) -> Candidate {
        Candidate::new(
            format!("t{trips}/w{work}/i{invocations}"),
            loop_kernel(trips, work),
            Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
        )
        .with_invocations(invocations)
    }

    fn run_exhaustive(
        engine: &EvalEngine,
        cands: &[Candidate],
    ) -> (Vec<Option<TimingReport>>, EngineStats) {
        let spec = g80();
        let mut stats = engine.stats_seed();
        let statics = engine.evaluate_statics(&MetricsEval::default(), cands, &spec, &mut stats);
        let selected: Vec<usize> =
            statics.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect();
        let sims =
            engine.simulate_selected(&SimulatorEval, cands, &statics, &selected, &spec, &mut stats);
        (sims, stats)
    }

    #[test]
    fn invocation_variants_hit_the_cache_and_match_standalone_results() {
        // 4 invocation splits of the same (work) kernel + 1 oddball:
        // the splits share a class, so 2 unique simulations cover 5
        // candidates.
        let total_trips = 48u32;
        let cands: Vec<Candidate> = [1u32, 2, 4, 8]
            .iter()
            .map(|&inv| candidate(total_trips / inv, 2, inv))
            .chain([candidate(48, 5, 1)])
            .collect();
        let (sims, stats) = run_exhaustive(&EvalEngine::default(), &cands);
        assert_eq!(stats.timed, 5);
        assert_eq!(stats.unique_sims, 2);
        assert_eq!(stats.cache_hits, 3);
        // Every report must equal the standalone sequential result.
        let spec = g80();
        for (c, got) in cands.iter().zip(&sims) {
            let e = c.evaluate(&spec).unwrap();
            let prog = gpu_ir::linear::linearize(&c.kernel);
            let want = scale_by_invocations(
                gpu_sim::timing::simulate(&prog, &c.launch, &e.kernel_profile.usage, &spec)
                    .unwrap(),
                c.invocations,
            );
            assert_eq!(got.as_ref().unwrap(), &want, "{}", c.label);
        }
    }

    #[test]
    fn exact_duplicates_are_simulated_once() {
        let cands = vec![candidate(16, 2, 1), candidate(16, 2, 1), candidate(16, 2, 4)];
        let (sims, stats) = run_exhaustive(&EvalEngine::default(), &cands);
        assert_eq!(stats.unique_sims, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(sims[0], sims[1]);
        // The inv=4 variant shares the cache entry but scales differently.
        assert!(sims[2].as_ref().unwrap().time_ms > sims[0].as_ref().unwrap().time_ms);
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let cands: Vec<Candidate> =
            (1..=6).map(|t| candidate(8 * t, t, 1)).chain([candidate(24, 3, 2)]).collect();
        let (base, base_stats) = run_exhaustive(&EvalEngine::default(), &cands);
        for jobs in [2, 4, 8] {
            let (got, stats) = run_exhaustive(&EvalEngine::with_jobs(jobs), &cands);
            assert_eq!(got, base, "jobs = {jobs}");
            assert_eq!(stats.unique_sims, base_stats.unique_sims);
            assert_eq!(stats.cache_hits, base_stats.cache_hits);
        }
    }

    #[test]
    fn max_sims_budget_truncates_deterministically() {
        let cands: Vec<Candidate> = (1..=5).map(|t| candidate(8 * t, t, 1)).collect();
        let engine =
            EvalEngine::new(EngineConfig { jobs: 1, budget: EvalBudget::with_max_sims(2) });
        let (sims, stats) = run_exhaustive(&engine, &cands);
        assert!(stats.budget_truncated);
        assert_eq!(stats.unique_sims, 2);
        // The first two units (discovery order) ran; the rest did not.
        assert!(sims[0].is_some() && sims[1].is_some());
        assert!(sims[2].is_none() && sims[3].is_none() && sims[4].is_none());
        // Parallel run truncates identically.
        let par = EvalEngine::new(EngineConfig { jobs: 4, budget: EvalBudget::with_max_sims(2) });
        let (par_sims, _) = run_exhaustive(&par, &cands);
        assert_eq!(par_sims, sims);
    }

    #[test]
    fn deadline_budget_keeps_the_crossing_candidate() {
        let cands: Vec<Candidate> = (1..=5).map(|t| candidate(8 * t, t, 1)).collect();
        let (all, _) = run_exhaustive(&EvalEngine::default(), &cands);
        let t0 = all[0].as_ref().unwrap().time_ms;
        let t1 = all[1].as_ref().unwrap().time_ms;
        // Deadline inside candidate 1: candidates 0 and 1 kept (1
        // crosses), 2.. dropped.
        let engine = EvalEngine::new(EngineConfig {
            jobs: 1,
            budget: EvalBudget::with_deadline_ms(t0 + t1 * 0.5),
        });
        let (sims, stats) = run_exhaustive(&engine, &cands);
        assert!(stats.budget_truncated);
        assert_eq!(stats.timed, 2);
        assert!(sims[0].is_some() && sims[1].is_some());
        assert!(sims[2..].iter().all(Option::is_none));
    }
}
