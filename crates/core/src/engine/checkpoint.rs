//! Crash-safe search checkpointing and deterministic resume.
//!
//! A checkpoint is a snapshot of everything a search has *paid for*:
//! the successful timing results keyed by their exact content hash,
//! plus — for branch-and-bound — the frontier's canonical subspace
//! bindings, the incumbent, and the completed full-grid ranks. Because
//! candidate enumeration, memo-cache discovery order, and the bnb
//! frontier order are all deterministic, that map is sufficient to
//! resume: a resumed run **replays the search from the start**, with
//! [`ReplayEval`] serving checkpointed results instantly in place of
//! fresh simulations. Every counter, event, and report therefore comes
//! out byte-identical to an uninterrupted run at any `--jobs` — the
//! replay changes *where results come from*, never *what the engine
//! does with them*.
//!
//! # Write protocol
//!
//! Checkpoints are published atomically: the snapshot is written to
//! `<path>.tmp`, fsynced, then renamed over `<path>`. A crash mid-write
//! leaves the previous checkpoint intact; a crash between checkpoints
//! loses at most the last `--checkpoint-every` work units. The engine
//! records results into the [`Checkpointer`] *after* each dispatch
//! chunk completes, so a checkpoint never references a result that was
//! still in flight.
//!
//! # Interruption
//!
//! SIGINT/SIGTERM set a process-global flag (see
//! [`install_signal_handler`] — a hand-rolled `signal(2)` binding; the
//! workspace is offline and vendors no libc crate). The engine polls it
//! between dispatch chunks and between bnb frontier batches, stops
//! scheduling new work, and the CLI writes a final checkpoint and exits
//! with status 130. SIGKILL needs no cooperation: the last published
//! checkpoint is already consistent. [`Checkpointer::with_stop_after`]
//! is the deterministic stand-in for SIGKILL in tests.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use gpu_arch::{MachineSpec, ResourceUsage};
use gpu_ir::Launch;
use gpu_sim::decode::DecodedProgram;
use gpu_sim::timing::TimingReport;

use super::cache;
use super::error::EvalError;
use super::store::{report_from_json, report_to_json};
use super::TimingEval;
use crate::obs::{json, Json};
use crate::space::Space;

/// Version stamp of the checkpoint file layout.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// Default work units between periodic checkpoint writes.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 64;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// The process-global interrupt flag set by [`install_signal_handler`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Reset the interrupt flag (tests only; a real run exits instead).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM to the interrupt flag. Setting an atomic is
/// async-signal-safe; everything else (checkpoint write, store flush)
/// happens on the main thread once the engine observes the flag.
#[cfg(unix)]
pub fn install_signal_handler() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    #[allow(clippy::fn_to_numeric_cast, clippy::fn_to_numeric_cast_with_truncation)]
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// No-op off unix: interruption then relies on `--stop-after` style
/// cooperative stops.
#[cfg(not(unix))]
pub fn install_signal_handler() {}

/// Identity of the run a checkpoint belongs to. Resume refuses a
/// checkpoint whose meta does not match the current invocation — the
/// replay would silently diverge otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Application name (`sad`, `matmul`, ...).
    pub app: String,
    /// Strategy name (`exhaustive`, `pruned`, `bnb`, ...).
    pub strategy: String,
    /// Grid variant (`--grid fine`), if any.
    pub grid: Option<String>,
    /// Space signature: each axis as `name` plus its printed values.
    pub space: Vec<(String, Vec<String>)>,
}

impl CheckpointMeta {
    /// Meta for a run over `space`.
    pub fn new(app: &str, strategy: &str, grid: Option<&str>, space: &Space) -> Self {
        Self {
            app: app.to_string(),
            strategy: strategy.to_string(),
            grid: grid.map(str::to_string),
            space: space
                .axes()
                .iter()
                .map(|a| {
                    (a.name().to_string(), a.values().iter().map(ToString::to_string).collect())
                })
                .collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::from(self.app.as_str())),
            ("strategy", Json::from(self.strategy.as_str())),
            ("grid", self.grid.as_deref().map(Json::from).unwrap_or(Json::Null)),
            (
                "space",
                Json::Arr(
                    self.space
                        .iter()
                        .map(|(name, values)| {
                            Json::obj([
                                ("axis", Json::from(name.as_str())),
                                (
                                    "values",
                                    Json::Arr(
                                        values.iter().map(|v| Json::from(v.as_str())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        let grid = match j.get("grid") {
            None | Some(Json::Null) => None,
            Some(g) => Some(g.as_str()?.to_string()),
        };
        let mut space = Vec::new();
        for axis in j.get("space")?.as_arr()? {
            let name = axis.get("axis")?.as_str()?.to_string();
            let values = axis
                .get("values")?
                .as_arr()?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?;
            space.push((name, values));
        }
        Some(Self {
            app: j.get("app")?.as_str()?.to_string(),
            strategy: j.get("strategy")?.as_str()?.to_string(),
            grid,
            space,
        })
    }
}

/// One frontier node snapshot: its admissible bound and the canonical
/// per-axis bindings (`None` = axis still unbound).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSnapshot {
    /// Lower bound carried by the node, in milliseconds.
    pub bound_ms: f64,
    /// Value-index binding per axis.
    pub bindings: Vec<Option<usize>>,
}

/// Where the search stood when the checkpoint was taken. Replay does
/// not *need* this — the results map alone reproduces the run — but it
/// makes checkpoints self-describing and lets `store verify`-style
/// tooling (and humans) see how far a run got.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchState {
    /// Full-grid rank of the current incumbent, if any.
    pub incumbent_rank: Option<usize>,
    /// Incumbent's scaled time in milliseconds.
    pub incumbent_ms: Option<f64>,
    /// Outstanding bnb frontier, in heap-drain (canonical) order.
    pub frontier: Vec<FrontierSnapshot>,
    /// Full-grid ranks whose candidates have completed evaluation.
    pub completed_ranks: Vec<usize>,
}

impl SearchState {
    fn to_json(&self) -> Json {
        Json::obj([
            ("incumbent_rank", self.incumbent_rank.map(Json::from).unwrap_or(Json::Null)),
            ("incumbent_ms", self.incumbent_ms.map(Json::from).unwrap_or(Json::Null)),
            (
                "frontier",
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("bound_ms", Json::from(f.bound_ms)),
                                (
                                    "bindings",
                                    Json::Arr(
                                        f.bindings
                                            .iter()
                                            .map(|b| b.map(Json::from).unwrap_or(Json::Null))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "completed_ranks",
                Json::Arr(self.completed_ranks.iter().copied().map(Json::from).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        let opt_usize = |key: &str| match j.get(key) {
            None | Some(Json::Null) => Some(None),
            Some(v) => v.as_u64().map(|u| Some(u as usize)),
        };
        let opt_f64 = |key: &str| match j.get(key) {
            None | Some(Json::Null) => Some(None),
            Some(v) => v.as_f64().map(Some),
        };
        let mut frontier = Vec::new();
        for node in j.get("frontier")?.as_arr()? {
            let bindings = node
                .get("bindings")?
                .as_arr()?
                .iter()
                .map(|b| match b {
                    Json::Null => Some(None),
                    v => v.as_u64().map(|u| Some(u as usize)),
                })
                .collect::<Option<Vec<_>>>()?;
            frontier.push(FrontierSnapshot { bound_ms: node.get("bound_ms")?.as_f64()?, bindings });
        }
        let completed_ranks = j
            .get("completed_ranks")?
            .as_arr()?
            .iter()
            .map(|r| r.as_u64().map(|u| u as usize))
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            incumbent_rank: opt_usize("incumbent_rank")?,
            incumbent_ms: opt_f64("incumbent_ms")?,
            frontier,
            completed_ranks,
        })
    }
}

/// A checkpoint file parsed back into memory.
#[derive(Debug, Clone, Default)]
pub struct LoadedCheckpoint {
    /// Run identity the checkpoint was taken under.
    pub meta: CheckpointMeta,
    /// Work units completed when it was written.
    pub units_done: usize,
    /// Search progress snapshot.
    pub state: SearchState,
    /// Successful timing results by exact content key.
    pub results: HashMap<u64, TimingReport>,
}

/// Parse a checkpoint file.
///
/// # Errors
///
/// A human-readable message naming the path for unreadable files,
/// unparseable JSON, or a schema/shape mismatch. Unlike the result
/// store, a checkpoint is a single consistent snapshot — damage here is
/// an error, not something to silently skip (the previous run's results
/// may still be recoverable from its `--store-dir`).
pub fn load(path: impl AsRef<Path>) -> Result<LoadedCheckpoint, String> {
    let path = path.as_ref();
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let bad = |what: &str| format!("{}: malformed checkpoint ({what})", path.display());
    let schema = doc.get("schema").and_then(Json::as_u64).ok_or_else(|| bad("schema"))?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(format!(
            "{}: checkpoint schema {schema} (this build reads {CHECKPOINT_SCHEMA})",
            path.display()
        ));
    }
    let meta = doc.get("meta").and_then(CheckpointMeta::from_json).ok_or_else(|| bad("meta"))?;
    let units_done =
        doc.get("units_done").and_then(Json::as_u64).ok_or_else(|| bad("units_done"))? as usize;
    let state = doc.get("state").and_then(SearchState::from_json).ok_or_else(|| bad("state"))?;
    let mut results = HashMap::new();
    for entry in doc.get("results").and_then(Json::as_arr).ok_or_else(|| bad("results"))? {
        let key = entry.get("key").and_then(Json::as_u64).ok_or_else(|| bad("result key"))?;
        let report =
            entry.get("report").and_then(report_from_json).ok_or_else(|| bad("result report"))?;
        results.insert(key, report);
    }
    Ok(LoadedCheckpoint { meta, units_done, state, results })
}

/// Interior state of a [`Checkpointer`].
#[derive(Debug, Default)]
struct Progress {
    results: HashMap<u64, TimingReport>,
    state: SearchState,
    units_done: usize,
    units_since_write: usize,
    stopped: bool,
}

/// Accumulates completed results during a search and publishes atomic
/// checkpoint snapshots every N work units, on interruption, and on
/// demand. Shared with the engine via `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    every: usize,
    meta: CheckpointMeta,
    stop_after: Option<usize>,
    progress: Mutex<Progress>,
}

impl Checkpointer {
    /// Checkpointer writing snapshots to `path` every `every` completed
    /// work units (clamped to ≥ 1).
    pub fn new(path: impl Into<PathBuf>, every: usize, meta: CheckpointMeta) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
            meta,
            stop_after: None,
            progress: Mutex::new(Progress::default()),
        }
    }

    /// Deterministic SIGKILL stand-in: [`Self::should_stop`] turns true
    /// once `n` work units have completed.
    pub fn with_stop_after(mut self, n: usize) -> Self {
        self.stop_after = Some(n);
        self
    }

    /// Seed previously checkpointed results (resume path) so snapshots
    /// taken by the resumed run stay cumulative.
    pub fn seed(&self, results: &HashMap<u64, TimingReport>) {
        let mut p = self.progress.lock().expect("checkpoint progress poisoned");
        for (k, v) in results {
            p.results.entry(*k).or_insert_with(|| v.clone());
        }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The periodic write threshold (also the engine's dispatch chunk
    /// size, so interruption latency is bounded by it).
    pub fn every(&self) -> usize {
        self.every
    }

    /// The run identity stamped into every snapshot.
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Record one successful result (engine calls this after the unit's
    /// dispatch chunk completes — never for in-flight work).
    pub fn record(&self, key: u64, report: &TimingReport) {
        let mut p = self.progress.lock().expect("checkpoint progress poisoned");
        p.results.entry(key).or_insert_with(|| report.clone());
    }

    /// Replace the search-progress snapshot (bnb updates this after
    /// each frontier batch).
    pub fn set_search_state(&self, state: SearchState) {
        self.progress.lock().expect("checkpoint progress poisoned").state = state;
    }

    /// Count `n` completed work units, publishing a snapshot when the
    /// periodic threshold is crossed.
    ///
    /// # Errors
    ///
    /// I/O failures writing the snapshot (the engine reports and keeps
    /// running — a failed periodic checkpoint must not kill the search).
    pub fn units_finished(&self, n: usize) -> io::Result<()> {
        let due = {
            let mut p = self.progress.lock().expect("checkpoint progress poisoned");
            p.units_done += n;
            p.units_since_write += n;
            if let Some(cap) = self.stop_after {
                if p.units_done >= cap {
                    p.stopped = true;
                }
            }
            p.units_since_write >= self.every
        };
        if due {
            self.write_now()?;
        }
        Ok(())
    }

    /// Whether the engine should stop scheduling new work: the process
    /// was interrupted, or the deterministic stop threshold was hit.
    pub fn should_stop(&self) -> bool {
        interrupted() || self.progress.lock().expect("checkpoint progress poisoned").stopped
    }

    /// Work units completed so far.
    pub fn units_done(&self) -> usize {
        self.progress.lock().expect("checkpoint progress poisoned").units_done
    }

    /// Publish a snapshot now: serialize, write `<path>.tmp`, fsync,
    /// rename over `<path>`.
    ///
    /// # Errors
    ///
    /// I/O failures creating, writing, syncing, or renaming the file.
    pub fn write_now(&self) -> io::Result<()> {
        let doc = {
            let mut p = self.progress.lock().expect("checkpoint progress poisoned");
            p.units_since_write = 0;
            let mut keys: Vec<u64> = p.results.keys().copied().collect();
            keys.sort_unstable();
            let results: Vec<Json> = keys
                .iter()
                .map(|k| {
                    Json::obj([("key", Json::from(*k)), ("report", report_to_json(&p.results[k]))])
                })
                .collect();
            Json::obj([
                ("schema", Json::from(CHECKPOINT_SCHEMA)),
                ("meta", self.meta.to_json()),
                ("units_done", Json::from(p.units_done)),
                ("state", p.state.to_json()),
                ("results", Json::Arr(results)),
            ])
        };
        let tmp = self.path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(doc.to_string_compact().as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &self.path)
    }
}

/// A [`TimingEval`] that serves checkpointed results by exact content
/// key and delegates everything else to the wrapped evaluator. The
/// engine still runs its full dispatch/retry/accounting machinery — a
/// served result is indistinguishable from a fresh simulation, which is
/// exactly what makes resumed reports byte-identical.
pub struct ReplayEval<'a> {
    inner: &'a dyn TimingEval,
    results: Arc<HashMap<u64, TimingReport>>,
}

impl<'a> ReplayEval<'a> {
    /// Wrap `inner`, serving from `results` first.
    pub fn new(inner: &'a dyn TimingEval, results: Arc<HashMap<u64, TimingReport>>) -> Self {
        Self { inner, results }
    }
}

impl TimingEval for ReplayEval<'_> {
    fn simulate(
        &self,
        prog: &DecodedProgram,
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Result<TimingReport, EvalError> {
        match self.results.get(&cache::exact_key(&prog.source, launch, usage, spec)) {
            Some(rep) => Ok(rep.clone()),
            None => self.inner.simulate(prog, launch, usage, spec),
        }
    }

    fn simulate_family(
        &self,
        progs: &[&DecodedProgram],
        launch: &Launch,
        usage: &ResourceUsage,
        spec: &MachineSpec,
    ) -> Option<Vec<TimingReport>> {
        // Units are checkpointed atomically, so a family is either fully
        // present (serve it as one "forked run", matching the original
        // accounting) or fully absent. A partial hit — possible only
        // with a checkpoint from some other search shape — falls through
        // to a real family run, which returns the same reports anyway.
        let served: Option<Vec<TimingReport>> = progs
            .iter()
            .map(|p| self.results.get(&cache::exact_key(&p.source, launch, usage, spec)).cloned())
            .collect();
        match served {
            Some(reports) => Some(reports),
            None => self.inner.simulate_family(progs, launch, usage, spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seed: u64) -> TimingReport {
        use gpu_arch::{LimitingFactor, Occupancy};
        TimingReport {
            cycles_per_wave: 100 + seed,
            waves: 2.0,
            total_cycles: 200 + seed,
            time_ms: 0.5 + seed as f64,
            instructions_issued: 10,
            busy_cycles: 50,
            dram_bytes: 1024,
            bandwidth_utilization: 0.25,
            occupancy: Occupancy {
                blocks_per_sm: 2,
                warps_per_block: 4,
                limited_by: LimitingFactor::Registers,
                threads_per_sm: 256,
            },
            steps: 9 + seed,
            stall_mem_cycles: 1,
            stall_sfu_cycles: 2,
            stall_arith_cycles: 3,
            stall_other_cycles: 4,
        }
    }

    fn meta() -> CheckpointMeta {
        CheckpointMeta {
            app: "sad".into(),
            strategy: "exhaustive".into(),
            grid: None,
            space: vec![("tile".into(), vec!["4".into(), "8".into()])],
        }
    }

    #[test]
    fn checkpoint_write_load_round_trips() {
        let path =
            std::env::temp_dir().join(format!("optspace-ck-roundtrip-{}.json", std::process::id()));
        let ck = Checkpointer::new(&path, 8, meta());
        ck.record(42, &report(1));
        ck.record(7, &report(2));
        ck.set_search_state(SearchState {
            incumbent_rank: Some(3),
            incumbent_ms: Some(1.5),
            frontier: vec![FrontierSnapshot { bound_ms: 0.75, bindings: vec![Some(1), None] }],
            completed_ranks: vec![0, 3, 9],
        });
        ck.units_finished(2).unwrap();
        ck.write_now().unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.meta, meta());
        assert_eq!(loaded.units_done, 2);
        assert_eq!(loaded.results.len(), 2);
        assert_eq!(loaded.results[&42], report(1));
        assert_eq!(loaded.results[&7], report(2));
        assert_eq!(loaded.state.incumbent_rank, Some(3));
        assert_eq!(loaded.state.frontier.len(), 1);
        assert_eq!(loaded.state.frontier[0].bindings, vec![Some(1), None]);
        assert_eq!(loaded.state.completed_ranks, vec![0, 3, 9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn periodic_write_fires_on_the_unit_threshold() {
        let path =
            std::env::temp_dir().join(format!("optspace-ck-periodic-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ck = Checkpointer::new(&path, 4, meta());
        ck.record(1, &report(1));
        ck.units_finished(3).unwrap();
        assert!(!path.exists(), "below threshold: no snapshot yet");
        ck.units_finished(1).unwrap();
        assert!(path.exists(), "threshold crossed: snapshot published");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stop_after_trips_should_stop_deterministically() {
        let path =
            std::env::temp_dir().join(format!("optspace-ck-stop-{}.json", std::process::id()));
        let ck = Checkpointer::new(&path, 1000, meta()).with_stop_after(5);
        assert!(!ck.should_stop());
        ck.units_finished(4).unwrap();
        assert!(!ck.should_stop());
        ck.units_finished(1).unwrap();
        assert!(ck.should_stop());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_damage_with_the_path_in_the_message() {
        let path =
            std::env::temp_dir().join(format!("optspace-ck-damaged-{}.json", std::process::id()));
        std::fs::write(&path, "{ not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains(&path.display().to_string()), "message names the path: {err}");
        let missing = load(path.with_extension("missing")).unwrap_err();
        assert!(missing.contains("cannot read"), "{missing}");
        std::fs::remove_file(&path).unwrap();
    }
}
