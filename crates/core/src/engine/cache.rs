//! Content-addressed keys for the timing-simulation memo cache.
//!
//! A simulation's result is a pure function of the linearized program,
//! the launch geometry, the per-thread resource usage, and the machine
//! spec — and of nothing else. (The invocation count deliberately stays
//! *out* of the key: it scales a cached per-invocation report
//! arithmetically, so work-per-invocation variants share one entry.)
//!
//! Two keys per input:
//!
//! * [`exact_key`] — hash of everything above. Equal keys ⇒ identical
//!   simulation, the report is reused outright.
//! * [`class_key`] — the same hash with every **top-level** loop's trip
//!   count masked out, plus the masked trip counts as data. Inputs that
//!   agree on the class hash but differ in top-level trip counts form a
//!   *family* that `gpu_sim::timing::simulate_family` evaluates in a
//!   single forked run (the MRI-FHD invocation clusters of Figure 6(b));
//!   any number of top-level axes may vary across the members.
//!
//! Float immediates are hashed through their `Debug` form, which in Rust
//! is round-trip exact, so distinct constants never collide and equal
//! constants always agree.

use std::hash::{DefaultHasher, Hash, Hasher};

use gpu_arch::{MachineSpec, ResourceUsage};
use gpu_ir::linear::{LinOp, LinearProgram};
use gpu_ir::Launch;

/// Class identity of a simulation input: the structural hash with
/// top-level trip counts masked, and those trip counts as a vector (in
/// code order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassKey {
    /// Hash of the trip-count-masked structure.
    pub hash: u64,
    /// The masked top-level trip counts, in code order.
    pub top_trips: Vec<u32>,
}

impl ClassKey {
    /// Whether `self` and `other` agree on the trip-masked structure —
    /// the shape `simulate_family` can fork. Members may differ in any
    /// number of top-level trip counts: the forked run varies every
    /// differing axis. (Same hash and same trips means exact duplicates,
    /// which also qualifies.)
    pub fn family_compatible(&self, other: &Self) -> bool {
        self.hash == other.hash && self.top_trips.len() == other.top_trips.len()
    }
}

fn structural_hash(
    prog: &LinearProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
    mask_top_trips: bool,
) -> (u64, Vec<u32>) {
    let mut h = DefaultHasher::new();
    prog.num_vregs.hash(&mut h);
    prog.smem_words.hash(&mut h);
    prog.num_params.hash(&mut h);
    let mut top_trips = Vec::new();
    let mut depth = 0usize;
    for op in &prog.code {
        match op {
            LinOp::LoopStart { counter, trips, end } => {
                if depth == 0 {
                    top_trips.push(*trips);
                }
                if depth == 0 && mask_top_trips {
                    "LoopStart/trips-masked".hash(&mut h);
                    format!("{counter:?}").hash(&mut h);
                    end.hash(&mut h);
                } else {
                    format!("{op:?}").hash(&mut h);
                }
                depth += 1;
            }
            LinOp::LoopEnd { .. } => {
                depth -= 1;
                format!("{op:?}").hash(&mut h);
            }
            _ => format!("{op:?}").hash(&mut h),
        }
    }
    format!("{launch:?}").hash(&mut h);
    format!("{usage:?}").hash(&mut h);
    format!("{spec:?}").hash(&mut h);
    (h.finish(), top_trips)
}

/// Full content hash: equal keys mean the timing simulation would replay
/// identically.
pub fn exact_key(
    prog: &LinearProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> u64 {
    structural_hash(prog, launch, usage, spec, false).0
}

/// Family identity: the content hash with top-level trip counts masked.
pub fn class_key(
    prog: &LinearProgram,
    launch: &Launch,
    usage: &ResourceUsage,
    spec: &MachineSpec,
) -> ClassKey {
    let (hash, top_trips) = structural_hash(prog, launch, usage, spec, true);
    ClassKey { hash, top_trips }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel};

    fn kernel(trips: u32, inner_trips: u32, imm: f32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(trips, |b| {
            let x = b.ld_global(p, 0);
            b.repeat(inner_trips, |b| {
                b.fmad_acc(x, imm, acc);
            });
        });
        b.st_global(p, 0, acc);
        b.finish()
    }

    fn ctx() -> (Launch, ResourceUsage, MachineSpec) {
        (
            Launch::new(Dim::new_1d(64), Dim::new_1d(128)),
            ResourceUsage::new(128, 10, 0),
            MachineSpec::geforce_8800_gtx(),
        )
    }

    #[test]
    fn identical_inputs_agree_on_both_keys() {
        let (launch, usage, spec) = ctx();
        let a = linearize(&kernel(8, 3, 1.5));
        let b = linearize(&kernel(8, 3, 1.5));
        assert_eq!(exact_key(&a, &launch, &usage, &spec), exact_key(&b, &launch, &usage, &spec));
        assert_eq!(class_key(&a, &launch, &usage, &spec), class_key(&b, &launch, &usage, &spec));
    }

    #[test]
    fn top_level_trip_variants_share_a_class_but_not_an_exact_key() {
        let (launch, usage, spec) = ctx();
        let a = linearize(&kernel(8, 3, 1.5));
        let b = linearize(&kernel(4, 3, 1.5));
        assert_ne!(exact_key(&a, &launch, &usage, &spec), exact_key(&b, &launch, &usage, &spec));
        let ca = class_key(&a, &launch, &usage, &spec);
        let cb = class_key(&b, &launch, &usage, &spec);
        assert_eq!(ca.hash, cb.hash);
        assert!(ca.family_compatible(&cb));
        assert_eq!(ca.top_trips, vec![8]);
        assert_eq!(cb.top_trips, vec![4]);
    }

    #[test]
    fn multiple_differing_top_level_trips_stay_family_compatible() {
        let ca = ClassKey { hash: 7, top_trips: vec![8, 3] };
        let cb = ClassKey { hash: 7, top_trips: vec![4, 9] };
        assert!(ca.family_compatible(&cb), "every top-level axis may vary");
        assert!(!ca.family_compatible(&ClassKey { hash: 8, top_trips: vec![8, 3] }));
        assert!(!ca.family_compatible(&ClassKey { hash: 7, top_trips: vec![8] }));
    }

    #[test]
    fn inner_trip_counts_and_immediates_split_classes() {
        let (launch, usage, spec) = ctx();
        let a = class_key(&linearize(&kernel(8, 3, 1.5)), &launch, &usage, &spec);
        let inner = class_key(&linearize(&kernel(8, 5, 1.5)), &launch, &usage, &spec);
        let imm = class_key(&linearize(&kernel(8, 3, 1.5000001)), &launch, &usage, &spec);
        assert_ne!(a.hash, inner.hash, "inner trips are not masked");
        assert_ne!(a.hash, imm.hash, "float immediates are hashed exactly");
    }

    #[test]
    fn launch_usage_and_spec_are_part_of_the_key() {
        let (launch, usage, spec) = ctx();
        let prog = linearize(&kernel(8, 3, 1.5));
        let base = exact_key(&prog, &launch, &usage, &spec);
        let other_launch = Launch::new(Dim::new_1d(128), Dim::new_1d(128));
        let other_usage = ResourceUsage::new(128, 11, 0);
        let other_spec = MachineSpec::gtx_280_like();
        assert_ne!(base, exact_key(&prog, &other_launch, &usage, &spec));
        assert_ne!(base, exact_key(&prog, &launch, &other_usage, &spec));
        assert_ne!(base, exact_key(&prog, &launch, &usage, &other_spec));
    }
}
