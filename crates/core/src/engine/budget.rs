//! Evaluation budgets: limits on simulated work per search.
//!
//! Two independent caps, both deterministic regardless of worker count:
//!
//! * **`max_sims`** — a ceiling on *unique* timing simulations (memo
//!   cache hits are free). Applied before dispatch, in the deterministic
//!   order units were discovered, so the same prefix of work runs no
//!   matter how many workers exist.
//! * **`deadline_ms`** — a ceiling on accumulated *simulated*
//!   milliseconds, the paper's developer-time currency (Table 4's
//!   "evaluation time"). Applied at reassembly in candidate-index order:
//!   candidates are accepted until the running total crosses the
//!   deadline; the crossing candidate is kept (the developer learns its
//!   time by running it), everything after is dropped.

/// Limits on how much simulated evaluation a search may spend.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalBudget {
    /// Maximum number of unique timing simulations (`None` = unlimited).
    pub max_sims: Option<usize>,
    /// Maximum accumulated simulated time in milliseconds
    /// (`None` = unlimited).
    pub deadline_ms: Option<f64>,
}

impl EvalBudget {
    /// No limits: evaluate everything the strategy selects.
    pub const UNLIMITED: Self = Self { max_sims: None, deadline_ms: None };

    /// Whether this budget constrains anything.
    pub fn is_unlimited(&self) -> bool {
        self.max_sims.is_none() && self.deadline_ms.is_none()
    }

    /// Budget capped at `n` unique simulations.
    pub fn with_max_sims(n: usize) -> Self {
        Self { max_sims: Some(n), ..Self::UNLIMITED }
    }

    /// Budget capped at `ms` simulated milliseconds.
    pub fn with_deadline_ms(ms: f64) -> Self {
        Self { deadline_ms: Some(ms), ..Self::UNLIMITED }
    }
}

/// Accumulator enforcing the `deadline_ms` half of a budget during
/// reassembly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeadlineMeter {
    deadline_ms: Option<f64>,
    spent_ms: f64,
    exhausted: bool,
}

impl DeadlineMeter {
    pub(crate) fn new(budget: &EvalBudget) -> Self {
        Self { deadline_ms: budget.deadline_ms, spent_ms: 0.0, exhausted: false }
    }

    /// Account `time_ms`; returns whether the candidate is accepted. The
    /// candidate that crosses the deadline is accepted, all later ones
    /// are refused.
    pub(crate) fn accept(&mut self, time_ms: f64) -> bool {
        if self.exhausted {
            return false;
        }
        self.spent_ms += time_ms;
        if self.deadline_ms.is_some_and(|d| self.spent_ms >= d) {
            self.exhausted = true;
        }
        true
    }

    /// Whether the deadline has been crossed.
    #[cfg(test)]
    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_accepts_everything() {
        let mut m = DeadlineMeter::new(&EvalBudget::UNLIMITED);
        for _ in 0..1000 {
            assert!(m.accept(1e6));
        }
        assert!(!m.exhausted());
        assert!(EvalBudget::UNLIMITED.is_unlimited());
    }

    #[test]
    fn crossing_candidate_is_kept_then_everything_stops() {
        let mut m = DeadlineMeter::new(&EvalBudget::with_deadline_ms(10.0));
        assert!(m.accept(4.0)); // 4
        assert!(m.accept(4.0)); // 8
        assert!(m.accept(4.0)); // 12: crosses, still accepted
        assert!(m.exhausted());
        assert!(!m.accept(0.001));
        assert!(!m.accept(0.001));
    }

    #[test]
    fn constructors_set_one_limit_each() {
        assert_eq!(EvalBudget::with_max_sims(7).max_sims, Some(7));
        assert!(EvalBudget::with_max_sims(7).deadline_ms.is_none());
        assert_eq!(EvalBudget::with_deadline_ms(2.5).deadline_ms, Some(2.5));
        assert!(!EvalBudget::with_deadline_ms(2.5).is_unlimited());
    }
}
