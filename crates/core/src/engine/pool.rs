//! A minimal fixed-size worker pool over `std::thread` and channels.
//!
//! The engine's workloads are embarrassingly parallel maps over an index
//! range, so the pool is exactly that: `jobs` scoped threads pull
//! indices from a shared atomic counter, run the closure, and send
//! `(index, result)` back over an `mpsc` channel. Results are
//! reassembled **by index**, so the output order — and therefore every
//! report built from it — is independent of worker scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Evaluate `f(0..n)` on `jobs` worker threads and return the results in
/// index order. `jobs <= 1` runs inline on the calling thread with no
/// thread or channel overhead — the strictly sequential reference path.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every index yields exactly one result")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            let got = run_indexed(jobs, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_index_is_evaluated_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        run_indexed(3, 57, |i| calls[i].fetch_add(1, Ordering::Relaxed));
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
