//! A fault-tolerant fixed-size worker pool over `std::thread` and
//! channels.
//!
//! The engine's workloads are embarrassingly parallel maps over an index
//! range, so the pool is exactly that: `jobs` scoped threads pull
//! indices from a shared atomic counter, run the closure, and send
//! `(index, result)` back over an `mpsc` channel. Results are
//! reassembled **by index**, so the output order — and therefore every
//! report built from it — is independent of worker scheduling.
//!
//! Unlike a plain map, the pool never lets one bad index take the
//! process down: each call is wrapped in `catch_unwind`, a worker that
//! dies is respawned while work remains, and any index that fails to
//! report comes back as a [`PoolError`] in its slot instead of a panic
//! at reassembly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::obs::{EventKind, EventSink, Json};

/// Why an index has no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The closure panicked on this index; the payload message.
    Panicked(String),
    /// The worker holding this index died without reporting a result.
    WorkerLost,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            Self::WorkerLost => write!(f, "worker lost before reporting a result"),
        }
    }
}

/// Render a `catch_unwind` payload as the panic message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum Msg<T> {
    Item(usize, Result<T, PoolError>),
    /// A worker is gone. `clean` distinguishes "ran out of work" from
    /// "died mid-item" (only the latter warrants a respawn).
    Exit {
        clean: bool,
    },
}

/// Run `f(i)` under `catch_unwind`, reporting its wall time to the sink
/// as a runtime `pool.item` event and busy-time accounting.
fn run_item<T, F>(f: &F, i: usize, obs: Option<(&EventSink, &'static str)>) -> Result<T, PoolError>
where
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    let item =
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| PoolError::Panicked(panic_message(p)));
    if let Some((sink, phase)) = obs {
        let wall_us = started.elapsed().as_micros() as u64;
        sink.add_busy_us(wall_us);
        sink.runtime(
            EventKind::Point,
            "pool.item",
            vec![
                ("phase", Json::from(phase)),
                ("index", Json::from(i)),
                ("wall_us", Json::from(wall_us)),
            ],
        );
    }
    item
}

/// Evaluate `f(0..n)` on `jobs` worker threads and return the results in
/// index order. `jobs <= 1` runs inline on the calling thread with no
/// thread or channel overhead — the strictly sequential reference path.
///
/// A panicking index yields `Err(PoolError::Panicked)` in its slot; all
/// other indices are unaffected.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<Result<T, PoolError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_impl(jobs, n, f, |_| false, None)
}

/// [`run_indexed`] with runtime observability: per-item wall times,
/// worker busy time, and spawn/respawn events flow into `sink` as
/// runtime-scope records tagged with `phase`. Results are identical to
/// [`run_indexed`] — observation never changes scheduling.
pub fn run_indexed_observed<T, F>(
    jobs: usize,
    n: usize,
    f: F,
    sink: Option<&EventSink>,
    phase: &'static str,
) -> Vec<Result<T, PoolError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_impl(jobs, n, f, |_| false, sink.map(|s| (s, phase)))
}

/// [`run_indexed`] with an induced-worker-loss predicate, for testing
/// the respawn path deterministically: when `lose(i)` is true the worker
/// that claimed index `i` dies on the spot — index `i` reports
/// `Err(PoolError::WorkerLost)` and a replacement worker is spawned to
/// continue the remaining indices.
pub fn run_indexed_with_faults<T, F, L>(
    jobs: usize,
    n: usize,
    f: F,
    lose: L,
) -> Vec<Result<T, PoolError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> bool + Sync,
{
    run_impl(jobs, n, f, lose, None)
}

fn run_impl<T, F, L>(
    jobs: usize,
    n: usize,
    f: F,
    lose: L,
    obs: Option<(&EventSink, &'static str)>,
) -> Vec<Result<T, PoolError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> bool + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n)
            .map(|i| {
                if lose(i) {
                    return Err(PoolError::WorkerLost);
                }
                run_item(&f, i, obs)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let worker_ids = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Msg<T>>();
    std::thread::scope(|scope| {
        let spawn_worker = |respawn: bool| {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let lose = &lose;
            let worker = worker_ids.fetch_add(1, Ordering::Relaxed);
            if let Some((sink, phase)) = obs {
                if respawn {
                    sink.note_respawn();
                } else {
                    sink.note_spawn();
                }
                sink.runtime(
                    EventKind::Point,
                    if respawn { "pool.respawn" } else { "pool.spawn" },
                    vec![("phase", Json::from(phase)), ("worker", Json::from(worker))],
                );
            }
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    let _ = tx.send(Msg::Exit { clean: true });
                    break;
                }
                if lose(i) {
                    // Die holding index i: no Item message, unclean exit.
                    let _ = tx.send(Msg::Exit { clean: false });
                    break;
                }
                let item = run_item(f, i, obs);
                if tx.send(Msg::Item(i, item)).is_err() {
                    break;
                }
            });
        };
        let mut live = jobs.min(n);
        for _ in 0..live {
            spawn_worker(false);
        }
        let mut out: Vec<Option<Result<T, PoolError>>> = (0..n).map(|_| None).collect();
        while live > 0 {
            match rx.recv() {
                Ok(Msg::Item(i, item)) => out[i] = Some(item),
                Ok(Msg::Exit { clean }) => {
                    // Respawn a worker lost mid-item while indices remain
                    // unclaimed, so one crash can't serialize the rest of
                    // the map.
                    if !clean && next.load(Ordering::Relaxed) < n {
                        spawn_worker(true);
                    } else {
                        live -= 1;
                    }
                }
                Err(_) => break,
            }
        }
        out.into_iter().map(|v| v.unwrap_or(Err(PoolError::WorkerLost))).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oks<T>(v: Vec<Result<T, PoolError>>) -> Vec<T> {
        v.into_iter().map(|r| r.expect("no faults induced")).collect()
    }

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            let got = oks(run_indexed(jobs, 100, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(oks(run_indexed(4, 0, |i| i)), Vec::<usize>::new());
        assert_eq!(oks(run_indexed(4, 1, |i| i + 10)), vec![10]);
    }

    #[test]
    fn every_index_is_evaluated_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        run_indexed(3, 57, |i| calls[i].fetch_add(1, Ordering::Relaxed));
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn a_panicking_index_is_isolated() {
        for jobs in [1, 2, 4] {
            let got = run_indexed(jobs, 10, |i| {
                if i == 3 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            for (i, r) in got.iter().enumerate() {
                if i == 3 {
                    assert_eq!(r, &Err(PoolError::Panicked("boom at 3".into())), "jobs={jobs}");
                } else {
                    assert_eq!(r, &Ok(i * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn lost_workers_are_respawned_and_the_map_completes() {
        // Kill the claiming worker on three different indices — with two
        // workers this forces respawns, and every other index must still
        // report.
        for jobs in [1, 2, 3] {
            let got = run_indexed_with_faults(jobs, 40, |i| i + 1, |i| i % 13 == 5);
            for (i, r) in got.iter().enumerate() {
                if i % 13 == 5 {
                    assert_eq!(r, &Err(PoolError::WorkerLost), "jobs={jobs} i={i}");
                } else {
                    assert_eq!(r, &Ok(i + 1), "jobs={jobs} i={i}");
                }
            }
        }
    }

    #[test]
    fn losing_every_worker_still_terminates() {
        let got = run_indexed_with_faults(4, 8, |i| i, |_| true);
        assert!(got.iter().all(|r| r == &Err(PoolError::WorkerLost)));
    }

    #[test]
    fn observation_reports_items_and_spawns_without_changing_results() {
        for jobs in [1usize, 4] {
            let sink = EventSink::new();
            let got = oks(run_indexed_observed(jobs, 20, |i| i * 3, Some(&sink), "timing"));
            assert_eq!(got, (0..20).map(|i| i * 3).collect::<Vec<_>>(), "jobs = {jobs}");
            let trace = sink.drain();
            assert_eq!(trace.named("pool.item").len(), 20, "jobs = {jobs}");
            let counters = sink.runtime_counters();
            if jobs > 1 {
                assert_eq!(trace.named("pool.spawn").len(), jobs);
                assert_eq!(counters.workers_spawned, jobs as u64);
            } else {
                // The inline path spawns nothing.
                assert!(trace.named("pool.spawn").is_empty());
            }
            // Every item event is runtime-scope: the canonical trace
            // stays empty.
            assert!(trace.canonical_lines().is_empty(), "jobs = {jobs}");
        }
    }
}
