//! The unified evaluation-error taxonomy.
//!
//! Every way a candidate can fail to produce a result — a pass that
//! refuses a configuration, an ill-formed kernel, a launch that exceeds
//! SM resources, a simulator fault, a runaway simulation hitting its
//! fuel limit, a crashed worker, or a deliberately injected test fault —
//! is one [`EvalError`]. Errors are classified **transient** (worth
//! retrying: the same input may succeed on a fresh attempt) or
//! **permanent** (deterministic: retrying replays the failure), which is
//! what drives the engine's retry/quarantine split.

use std::error::Error;
use std::fmt;

use gpu_arch::LaunchError;
use gpu_ir::verify::VerifyError;
use gpu_passes::PassError;
use gpu_sim::timing::{FamilyError, TimingError};
use gpu_sim::SimError;

/// Discriminant of an [`EvalError`], for report rows and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalErrorKind {
    /// A transformation pass could not produce the configuration.
    Pass,
    /// The generated kernel failed IR verification.
    Verify,
    /// The launch exceeds SM resources (the paper's "invalid
    /// executable").
    Resource,
    /// The simulator raised a fault while executing the kernel.
    Sim,
    /// A shared-memory race was detected (statically or by the dynamic
    /// race oracle): the kernel's answer is interleaving-dependent on a
    /// real GPU even though the sequential interpreter reproduces it.
    Race,
    /// The simulation exceeded its fuel (step) limit.
    Fuel,
    /// The worker evaluating the candidate panicked or disappeared.
    WorkerLost,
    /// A fault injected by the test/fault plan.
    Injected,
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Pass => "pass-failed",
            Self::Verify => "verify-failed",
            Self::Resource => "resource-exceeded",
            Self::Sim => "sim-fault",
            Self::Race => "race-detected",
            Self::Fuel => "fuel-exhausted",
            Self::WorkerLost => "worker-lost",
            Self::Injected => "injected",
        })
    }
}

/// One candidate's evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A transformation pass rejected the configuration.
    PassFailed {
        /// Rendered [`PassError`].
        message: String,
    },
    /// The kernel failed static IR verification.
    VerifyFailed {
        /// Number of findings.
        findings: usize,
        /// Rendered first finding.
        first: String,
    },
    /// The launch configuration exceeds SM resources.
    ResourceExceeded {
        /// Rendered [`LaunchError`].
        message: String,
    },
    /// The simulator raised a fault.
    SimFault {
        /// Rendered [`SimError`] (or simulator-internal fault).
        message: String,
    },
    /// The static race detector or the dynamic race oracle found a
    /// shared-memory race.
    RaceDetected {
        /// Number of findings (1 for the dynamic oracle, which stops at
        /// the first conflict).
        findings: usize,
        /// Rendered first finding.
        first: String,
    },
    /// The simulation burned through its fuel budget without retiring.
    FuelExhausted {
        /// The fuel limit that was exceeded.
        fuel: u64,
    },
    /// The worker evaluating the candidate panicked or never reported a
    /// result.
    WorkerLost {
        /// Panic payload or loss description.
        detail: String,
    },
    /// A deterministic fault injected by the engine's fault plan.
    Injected {
        /// Whether the injected fault clears on a later attempt.
        transient: bool,
    },
}

impl EvalError {
    /// The error's kind, for counters and report rows.
    pub fn kind(&self) -> EvalErrorKind {
        match self {
            Self::PassFailed { .. } => EvalErrorKind::Pass,
            Self::VerifyFailed { .. } => EvalErrorKind::Verify,
            Self::ResourceExceeded { .. } => EvalErrorKind::Resource,
            Self::SimFault { .. } => EvalErrorKind::Sim,
            Self::RaceDetected { .. } => EvalErrorKind::Race,
            Self::FuelExhausted { .. } => EvalErrorKind::Fuel,
            Self::WorkerLost { .. } => EvalErrorKind::WorkerLost,
            Self::Injected { .. } => EvalErrorKind::Injected,
        }
    }

    /// Whether a fresh attempt at the same input may succeed. Lost
    /// workers are retried (the crash may be environmental); everything
    /// deterministic is permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::WorkerLost { .. } => true,
            Self::Injected { transient } => *transient,
            _ => false,
        }
    }

    /// Error for a worker that panicked or vanished.
    pub fn worker_lost(detail: impl Into<String>) -> Self {
        Self::WorkerLost { detail: detail.into() }
    }

    /// Error for a kernel that failed verification, from the verifier's
    /// findings. `findings` must be non-empty.
    pub fn from_verify(findings: &[VerifyError]) -> Self {
        Self::VerifyFailed {
            findings: findings.len(),
            first: findings.first().map(|e| format!("{e:?}")).unwrap_or_default(),
        }
    }

    /// Collapse a static race report into an evaluation error. The
    /// report must not be race-free.
    pub fn from_races(report: &gpu_ir::analysis::RaceReport) -> Self {
        Self::RaceDetected {
            findings: report.findings.len(),
            first: report.findings.first().map(|f| f.to_string()).unwrap_or_default(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PassFailed { message } => write!(f, "pass failed: {message}"),
            Self::VerifyFailed { findings, first } => {
                write!(f, "IR verification failed ({findings} findings; first: {first})")
            }
            Self::ResourceExceeded { message } => write!(f, "resources exceeded: {message}"),
            Self::SimFault { message } => write!(f, "simulation fault: {message}"),
            Self::RaceDetected { findings, first } => {
                write!(f, "shared-memory race detected ({findings} findings; first: {first})")
            }
            Self::FuelExhausted { fuel } => {
                write!(f, "simulation exceeded its fuel limit of {fuel} steps")
            }
            Self::WorkerLost { detail } => write!(f, "evaluation worker lost: {detail}"),
            Self::Injected { transient } => {
                write!(f, "injected {} fault", if *transient { "transient" } else { "permanent" })
            }
        }
    }
}

impl Error for EvalError {}

impl From<PassError> for EvalError {
    fn from(e: PassError) -> Self {
        Self::PassFailed { message: e.to_string() }
    }
}

impl From<LaunchError> for EvalError {
    fn from(e: LaunchError) -> Self {
        Self::ResourceExceeded { message: e.to_string() }
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::StepBudgetExhausted => {
                Self::FuelExhausted { fuel: gpu_sim::interp::DEFAULT_STEP_BUDGET }
            }
            race @ SimError::SharedRace { .. } => {
                Self::RaceDetected { findings: 1, first: race.to_string() }
            }
            other => Self::SimFault { message: other.to_string() },
        }
    }
}

impl From<TimingError> for EvalError {
    fn from(e: TimingError) -> Self {
        match e {
            TimingError::Launch(l) => l.into(),
            TimingError::FuelExhausted { fuel } => Self::FuelExhausted { fuel },
            TimingError::BarrierDeadlock => {
                Self::SimFault { message: "barrier deadlock: not all warps arrived".into() }
            }
        }
    }
}

impl From<FamilyError> for EvalError {
    fn from(e: FamilyError) -> Self {
        match e {
            FamilyError::Launch(l) => l.into(),
            FamilyError::FuelExhausted { fuel } => Self::FuelExhausted { fuel },
            FamilyError::BarrierDeadlock => {
                Self::SimFault { message: "barrier deadlock: not all warps arrived".into() }
            }
            FamilyError::NotAFamily => Self::SimFault { message: e.to_string() },
        }
    }
}

/// A candidate removed from the search after failing permanently (or
/// exhausting its retries): the degraded-mode report row.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// Candidate index in the search space.
    pub candidate: usize,
    /// Candidate label, for report rows.
    pub label: String,
    /// The final error that quarantined it.
    pub error: EvalError,
    /// How many evaluation attempts were made before giving up.
    pub attempts: u32,
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}: {} ({} attempt{})",
            self.candidate,
            self.label,
            self.error.kind(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transiency_split_matches_the_taxonomy() {
        assert!(EvalError::worker_lost("panic").is_transient());
        assert!(EvalError::Injected { transient: true }.is_transient());
        assert!(!EvalError::Injected { transient: false }.is_transient());
        assert!(!EvalError::FuelExhausted { fuel: 10 }.is_transient());
        assert!(!EvalError::SimFault { message: "x".into() }.is_transient());
        assert!(!EvalError::ResourceExceeded { message: "x".into() }.is_transient());
        assert!(!EvalError::PassFailed { message: "x".into() }.is_transient());
        assert!(!EvalError::VerifyFailed { findings: 1, first: "x".into() }.is_transient());
    }

    #[test]
    fn conversions_pick_the_right_kind() {
        let e: EvalError = PassError::ZeroFactor.into();
        assert_eq!(e.kind(), EvalErrorKind::Pass);
        let e: EvalError = SimError::BarrierDivergence.into();
        assert_eq!(e.kind(), EvalErrorKind::Sim);
        let e: EvalError = SimError::StepBudgetExhausted.into();
        assert_eq!(e.kind(), EvalErrorKind::Fuel);
        let e: EvalError = TimingError::FuelExhausted { fuel: 7 }.into();
        assert_eq!(e, EvalError::FuelExhausted { fuel: 7 });
        let e: EvalError = FamilyError::NotAFamily.into();
        assert_eq!(e.kind(), EvalErrorKind::Sim);
    }

    #[test]
    fn display_is_informative() {
        let q = Quarantine {
            candidate: 3,
            label: "16x16/u4".into(),
            error: EvalError::FuelExhausted { fuel: 1000 },
            attempts: 2,
        };
        let s = q.to_string();
        assert!(s.contains("#3") && s.contains("16x16/u4") && s.contains("fuel-exhausted"));
        assert!(s.contains("2 attempts"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EvalError>();
        check::<Quarantine>();
    }
}
