//! A more detailed static cost model (section 4: "We are developing a
//! more detailed cost model to achieve more precise results").
//!
//! The paper's metrics deliberately stop at a partial order — Efficiency
//! and Utilization "are not detailed enough to combine into a single
//! robust cost function". This module builds the next step the authors
//! describe: a closed-form, latency- and bandwidth-aware cycle
//! predictor over the same static inputs. One SM-wave is bounded below
//! by three rooflines:
//!
//! * **issue**: every warp instruction occupies the single issue port
//!   for 4 cycles — `warps × Instr × 4`;
//! * **latency**: one warp cannot finish faster than its own critical
//!   path — `Instr × 4 + blocking_units × L`;
//! * **bandwidth**: the wave's DRAM traffic over the SM's share of the
//!   86.4 GB/s.
//!
//! The predicted wave time is the maximum of the three, scaled by the
//! grid's wave count. [`rank_correlation`] (Spearman) quantifies how
//! well any scalar predictor orders a space against simulated time —
//! the `costmodel` experiment compares this model with each paper
//! metric used alone.

use std::cell::RefCell;
use std::collections::HashMap;

use gpu_arch::MachineSpec;

use crate::candidate::{Candidate, Evaluated};
use crate::space::{Instantiator, PartialPoint, Point, Space, Value};

/// Predicted execution time in milliseconds for one candidate, from its
/// static evaluation only (no simulation). The launch figures travel
/// inside [`Evaluated`], so the candidate itself is not needed —
/// [`predict_ms`] keeps the historical two-argument signature.
pub fn predict_ms_static(e: &Evaluated, spec: &MachineSpec) -> f64 {
    let p = &e.kernel_profile.profile;
    let occ = &e.kernel_profile.occupancy;
    let issue = f64::from(spec.issue_cycles_per_warp);

    // Per-invocation figures (the Evaluated profile is whole-app).
    let inv = f64::from(e.invocations);
    let instr = p.instr as f64 / inv;
    let units = (p.regions.saturating_sub(1)) as f64 / inv;

    let warps = f64::from(occ.warps_per_sm());
    let threads_per_sm = f64::from(occ.threads_per_sm);

    // Roofline 1: issue throughput.
    let issue_bound = warps * instr * issue;

    // Roofline 2: one warp's critical path, with blocking stalls. The
    // stall length depends on what delimits the regions: off-chip loads
    // (200–300 cycles) for memory kernels, the SFU pipeline for pure
    // compute kernels like CP (where the section 4 rule made SFU ops the
    // blocking instructions).
    let latency = if e.kernel_profile.mix.offchip_loads == 0 {
        f64::from(spec.sfu_latency)
    } else {
        f64::from(spec.global_latency_typ())
    };
    let latency_bound = instr * issue + units * latency;

    // Roofline 3: DRAM bandwidth for the wave's resident threads.
    let traffic = e.kernel_profile.mix.dram_traffic_bytes(spec);
    let bw_share = spec.bandwidth_bytes_per_cycle() / f64::from(spec.num_sms);
    let bandwidth_bound = threads_per_sm * traffic / bw_share;

    let wave = issue_bound.max(latency_bound).max(bandwidth_bound);
    let capacity = f64::from(spec.num_sms) * f64::from(occ.blocks_per_sm);
    let waves = (e.total_blocks as f64 / capacity).max(1.0);
    let cycles = wave * waves * inv;
    cycles / spec.clock_hz * 1e3 + crate::tuner::LAUNCH_OVERHEAD_MS * inv
}

/// [`predict_ms_static`] under its historical signature; `e` must be
/// `c`'s own evaluation.
pub fn predict_ms(_c: &Candidate, e: &Evaluated, spec: &MachineSpec) -> f64 {
    predict_ms_static(e, spec)
}

/// An *admissible* floor (in milliseconds) on the engine-reported
/// simulated time of one candidate, from its IR and launch geometry
/// alone — no occupancy calculation, no simulation.
///
/// The simulated wave can never beat the issue port: every resident
/// warp issues each of its `dynamic_counts` instructions for
/// `issue_cycles_per_warp` cycles on a single port per SM, and the
/// wave count scales that busy time back up to the whole grid, so
///
/// ```text
/// time >= instrs * (total_threads / warp_size) * issue / num_sms
/// ```
///
/// cycles per invocation. One cycle of slack per invocation absorbs
/// the simulator's round-to-integer wave scaling, and the engine's
/// per-invocation launch overhead is added back (it is charged to
/// every configuration identically). Because the derivation only
/// drops terms the simulator *adds* (latency stalls, bandwidth queue
/// delays, barrier joins, replay slots, partial warps), the floor is
/// a true lower bound on every valid configuration's reported time.
pub fn issue_floor_ms(c: &Candidate, spec: &MachineSpec) -> f64 {
    let counts = gpu_ir::analysis::dynamic_counts(&c.kernel);
    let inv = f64::from(c.invocations);
    let warps = c.launch.total_threads() as f64 / f64::from(spec.warp_size);
    let per_inv_cycles = counts.instrs as f64 * warps * f64::from(spec.issue_cycles_per_warp)
        / f64::from(spec.num_sms);
    ((per_inv_cycles - 1.0).max(0.0) * inv) / spec.clock_hz * 1e3
        + crate::tuner::LAUNCH_OVERHEAD_MS * inv
}

/// An admissible cost bound over partially specified points.
///
/// `bound_ms(partial)` must not exceed the engine-reported simulated
/// time of any constraint-admitted completion of `partial` (it is
/// `f64::INFINITY` when the subspace is empty). The contract a
/// branch-and-bound search relies on, checked by the monotonicity
/// proptest in `tests/branch_and_bound.rs`:
///
/// * **monotone** — binding an axis never decreases the bound;
/// * **admissible at the leaf** — on a fully-bound point the bound is
///   at most the true model cost of that point.
///
/// [`BranchAndBound`](crate::tuner::BranchAndBound) additionally
/// enforces monotonicity structurally (a child's frontier key is the
/// max of its own bound and its parent's), so a bound that is merely
/// admissible still yields a correct best-first order.
pub trait LowerBound {
    /// Lower bound (ms) over all admitted completions of `partial`.
    fn bound_ms(&self, partial: &PartialPoint) -> f64;
}

/// The reference [`LowerBound`]: the exact minimum of a per-point cost
/// over all admitted completions.
///
/// Admissible and monotone *by construction* — shrinking a subspace
/// can only raise its minimum — which makes it the oracle the
/// monotonicity proptest checks cheaper bounds against. It enumerates
/// every completion, so it is only for small spaces and tests; the
/// production bound is [`ProbeBound`].
pub struct MinFloorBound<F> {
    cost: F,
}

impl<F: Fn(&Point) -> f64> MinFloorBound<F> {
    /// Wrap a per-point cost function.
    pub fn new(cost: F) -> Self {
        Self { cost }
    }
}

impl<F: Fn(&Point) -> f64> LowerBound for MinFloorBound<F> {
    fn bound_ms(&self, partial: &PartialPoint) -> f64 {
        partial.completions().map(|p| (self.cost)(&p)).fold(f64::INFINITY, f64::min)
    }
}

/// The production [`LowerBound`]: instantiate one optimistic *corner*
/// per axis-0 slice of the subspace and take its [`issue_floor_ms`].
///
/// The first declared axis is the strongest coupler (matmul's tile
/// changes every other axis's effect, and can even degenerate an
/// unroll domain), so all calibration is *conditioned* on it: for each
/// axis-0 value the bound sweeps every other axis one-dimensionally
/// with axis 0 pinned and records the value index minimizing the floor
/// — that value's *cheap table* (computed lazily, once per value). A
/// subspace that has bound axis 0 is bounded by the floor of the
/// corner keeping every bound axis at its bound value and every
/// unbound axis at its conditioned cheap value, after
/// [`Instantiator::legalize`] snaps the tuple to something the
/// generator accepts. While axis 0 is *unbound* the subspace is the
/// disjoint union of its axis-0 slices, so its bound is the **min** of
/// the slice corners — a single cross-slice corner is not sound, since
/// no one axis-0 value yields a floor below every slice. Corners are
/// memoized by full-grid rank, so a search instantiates a handful of
/// probe points per subspace instead of any of its interior.
///
/// Within a slice the corner is a lower bound on the slice's floor
/// when the floor decomposes per axis (each axis's cheap setting stays
/// cheapest whatever the other axes do) — true for the
/// instruction-count and thread-count products the paper's knobs
/// control once the dominant coupler is pinned. That decomposition is
/// an empirical property of the application spaces, not a theorem; the
/// exactness tests in `tests/branch_and_bound.rs` pin it on all four
/// paper spaces, and the fully-bound case is unconditionally
/// admissible because the corner *is* the point.
pub struct ProbeBound<'a> {
    space: &'a Space,
    inst: &'a dyn Instantiator,
    spec: &'a MachineSpec,
    /// Cheap tables calibrated with axis 0 pinned, keyed by its value
    /// index and filled on first use. Entry `i` of a table is the
    /// value index minimizing the floor in the 1-D sweep of axis `i`
    /// off that pinned base.
    conditioned: RefCell<HashMap<usize, Vec<usize>>>,
    /// Floor per instantiated corner, keyed by full-grid rank.
    memo: RefCell<HashMap<usize, f64>>,
}

impl<'a> ProbeBound<'a> {
    /// Build the bound. Calibration is lazy — the first bound request
    /// touching an axis-0 value runs that value's sweeps
    /// (`sum(domain sizes)` probe instantiations, all memoized).
    pub fn new(space: &'a Space, inst: &'a dyn Instantiator, spec: &'a MachineSpec) -> Self {
        ProbeBound {
            space,
            inst,
            spec,
            conditioned: RefCell::new(HashMap::new()),
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// Sweep each axis past 0 one-dimensionally off the base
    /// assignment with axis 0 pinned to `pin`, and record the value
    /// index minimizing the floor (first on ties).
    fn calibrate(&self, pin: usize) -> Vec<usize> {
        let n = self.space.axes().len();
        let root = self.space.partial();
        let mut cheap = vec![0usize; n];
        cheap[0] = pin;
        for (i, axis) in self.space.axes().iter().enumerate().skip(1) {
            let mut best = f64::INFINITY;
            for j in 0..axis.values().len() {
                let mut fill = vec![0usize; n];
                fill[0] = pin;
                fill[i] = j;
                let floor = self.probe(root.corner_values(&fill));
                if floor < best {
                    best = floor;
                    cheap[i] = j;
                }
            }
        }
        cheap
    }

    /// The cheap table conditioned on axis-0 value index `idx0`,
    /// calibrated on first use.
    fn cheap_for(&self, idx0: usize) -> Vec<usize> {
        if let Some(table) = self.conditioned.borrow().get(&idx0) {
            return table.clone();
        }
        let table = self.calibrate(idx0);
        self.conditioned.borrow_mut().insert(idx0, table.clone());
        table
    }

    /// Floor of the slice corner: every bound axis at its bound value,
    /// every unbound axis at its cheap value conditioned on `idx0`
    /// (axis 0's value in this slice).
    fn slice_corner(&self, partial: &PartialPoint, idx0: usize) -> f64 {
        let mut fill = self.cheap_for(idx0);
        fill[0] = idx0;
        self.probe(partial.corner_values(&fill))
    }

    /// Floor of one explicit assignment, legalized and memoized.
    fn probe(&self, mut values: Vec<Value>) -> f64 {
        self.inst.legalize(self.space, &mut values);
        let point = self.space.probe_point(values);
        let rank = point.ordinal();
        if let Some(&floor) = self.memo.borrow().get(&rank) {
            return floor;
        }
        let floor = issue_floor_ms(&self.inst.instantiate(&point), self.spec);
        self.memo.borrow_mut().insert(rank, floor);
        floor
    }

    /// Whether the grid tuple at `rank` was instantiated as a probe.
    /// Pruned-point accounting subtracts these: a probed corner was
    /// *not* eliminated without instantiation.
    pub fn was_instantiated(&self, rank: usize) -> bool {
        self.memo.borrow().contains_key(&rank)
    }

    /// Grid ranks instantiated as probes so far, in unspecified order.
    pub fn instantiated_ranks(&self) -> Vec<usize> {
        self.memo.borrow().keys().copied().collect()
    }

    /// Number of distinct corners instantiated so far.
    pub fn probes(&self) -> usize {
        self.memo.borrow().len()
    }
}

impl LowerBound for ProbeBound<'_> {
    fn bound_ms(&self, partial: &PartialPoint) -> f64 {
        if let Some(idx0) = partial.binding(0) {
            return self.slice_corner(partial, idx0);
        }
        // Axis 0 unbound: the subspace is the union of its axis-0
        // slices, and a bound on a union is the min of the slice
        // bounds. Probing one cross-slice corner instead would *not*
        // be admissible — no single axis-0 value floors every slice.
        (0..self.space.axes()[0].values().len())
            .map(|idx0| self.slice_corner(partial, idx0))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Spearman rank correlation between two paired samples.
///
/// Returns a value in `[-1, 1]`; `NaN`-free as long as either sample has
/// at least two distinct values. Ties receive averaged ranks.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must pair up");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ranks = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        // total_cmp keeps the sort well-defined even if a cost model
        // hands us NaN (sorted to the end, tied with itself).
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut out = vec![0.0; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    };
    let (ra, rb) = (ranks(a), ranks(b));
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for k in 0..n {
        let (x, y) = (ra[k] - mean, rb[k] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Launch};

    #[test]
    fn rank_correlation_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((rank_correlation(&a, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((rank_correlation(&a, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        // Constant sample: defined as 0.
        assert_eq!(rank_correlation(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn rank_correlation_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = rank_correlation(&[1.0], &[1.0, 2.0]);
    }

    fn candidate(iters: u32, tpb: u32) -> Candidate {
        let mut b = KernelBuilder::new("m");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(iters, |b| {
            let x = b.ld_global(p, 0);
            b.fmad_acc(x, 1.0f32, acc);
        });
        b.st_global(p, 0, acc);
        Candidate::new(
            format!("i{iters}/t{tpb}"),
            b.finish(),
            Launch::new(Dim::new_1d(4096 / tpb), Dim::new_1d(tpb)),
        )
    }

    #[test]
    fn prediction_orders_work_correctly() {
        let spec = MachineSpec::geforce_8800_gtx();
        let small = candidate(10, 128);
        let big = candidate(100, 128);
        let es = small.evaluate(&spec).unwrap();
        let eb = big.evaluate(&spec).unwrap();
        assert!(predict_ms(&big, &eb, &spec) > predict_ms(&small, &es, &spec));
    }

    #[test]
    fn issue_floor_never_exceeds_simulated_time() {
        let spec = MachineSpec::geforce_8800_gtx();
        for &it in &[1u32, 10, 20, 40, 80] {
            for &t in &[32u32, 64, 128, 256] {
                let c = candidate(it, t);
                let e = c.evaluate(&spec).unwrap();
                let prog = gpu_ir::linear::linearize(&c.kernel);
                let sim =
                    gpu_sim::timing::simulate(&prog, &c.launch, &e.kernel_profile.usage, &spec)
                        .unwrap();
                // The engine reports sim time plus the launch overhead;
                // the floor includes the same overhead term.
                let reported = sim.time_ms + crate::tuner::LAUNCH_OVERHEAD_MS;
                let floor = issue_floor_ms(&c, &spec);
                assert!(floor <= reported, "floor {floor} > reported {reported} for i{it}/t{t}");
                assert!(floor > 0.0);
            }
        }
    }

    #[test]
    fn min_floor_bound_is_monotone_and_tight_on_leaves() {
        let s = Space::builder()
            .axis("a", [1u32, 2, 4])
            .axis("b", [1u32, 3])
            .constraint("skip 4/3", |p| !(p.u32("a") == 4 && p.u32("b") == 3))
            .build();
        // A closed-form "cost": cheap corner is a=1, b=1.
        let cost = |p: &Point| f64::from(p.u32("a") * 10 + p.u32("b"));
        let bound = MinFloorBound::new(cost);
        let root = s.partial();
        assert_eq!(bound.bound_ms(&root), 11.0);
        // Binding never decreases the bound.
        let a4 = root.bind("a", Value::U32(4)).unwrap();
        assert_eq!(bound.bound_ms(&a4), 41.0);
        let leaf = a4.bind("b", Value::U32(1)).unwrap();
        assert_eq!(bound.bound_ms(&leaf), cost(&leaf.as_point().unwrap()));
        // The constraint-excluded completion never drives the bound.
        let b3 = root.bind("b", Value::U32(3)).unwrap();
        assert_eq!(bound.bound_ms(&b3), 13.0);
        assert_eq!(bound.bound_ms(&b3.bind("a", Value::U32(4)).unwrap()), f64::INFINITY);
    }

    #[test]
    fn prediction_tracks_simulated_time_reasonably() {
        // Rank correlation with the simulator over a small sweep must be
        // strongly positive.
        let spec = MachineSpec::geforce_8800_gtx();
        let cands: Vec<Candidate> = [10u32, 20, 40, 80]
            .iter()
            .flat_map(|&it| [64u32, 128, 256].iter().map(move |&t| candidate(it, t)))
            .collect();
        let mut predicted = Vec::new();
        let mut simulated = Vec::new();
        for c in &cands {
            let e = c.evaluate(&spec).unwrap();
            predicted.push(predict_ms(c, &e, &spec));
            let prog = gpu_ir::linear::linearize(&c.kernel);
            let t = gpu_sim::timing::simulate(&prog, &c.launch, &e.kernel_profile.usage, &spec)
                .unwrap();
            simulated.push(t.time_ms);
        }
        let rho = rank_correlation(&predicted, &simulated);
        assert!(rho > 0.8, "rho = {rho}");
    }
}
