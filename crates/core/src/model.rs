//! A more detailed static cost model (section 4: "We are developing a
//! more detailed cost model to achieve more precise results").
//!
//! The paper's metrics deliberately stop at a partial order — Efficiency
//! and Utilization "are not detailed enough to combine into a single
//! robust cost function". This module builds the next step the authors
//! describe: a closed-form, latency- and bandwidth-aware cycle
//! predictor over the same static inputs. One SM-wave is bounded below
//! by three rooflines:
//!
//! * **issue**: every warp instruction occupies the single issue port
//!   for 4 cycles — `warps × Instr × 4`;
//! * **latency**: one warp cannot finish faster than its own critical
//!   path — `Instr × 4 + blocking_units × L`;
//! * **bandwidth**: the wave's DRAM traffic over the SM's share of the
//!   86.4 GB/s.
//!
//! The predicted wave time is the maximum of the three, scaled by the
//! grid's wave count. [`rank_correlation`] (Spearman) quantifies how
//! well any scalar predictor orders a space against simulated time —
//! the `costmodel` experiment compares this model with each paper
//! metric used alone.

use gpu_arch::MachineSpec;

use crate::candidate::{Candidate, Evaluated};

/// Predicted execution time in milliseconds for one candidate, from its
/// static evaluation only (no simulation).
pub fn predict_ms(c: &Candidate, e: &Evaluated, spec: &MachineSpec) -> f64 {
    let p = &e.kernel_profile.profile;
    let occ = &e.kernel_profile.occupancy;
    let issue = f64::from(spec.issue_cycles_per_warp);

    // Per-invocation figures (the Evaluated profile is whole-app).
    let inv = f64::from(c.invocations);
    let instr = p.instr as f64 / inv;
    let units = (p.regions.saturating_sub(1)) as f64 / inv;

    let warps = f64::from(occ.warps_per_sm());
    let threads_per_sm = f64::from(occ.threads_per_sm);

    // Roofline 1: issue throughput.
    let issue_bound = warps * instr * issue;

    // Roofline 2: one warp's critical path, with blocking stalls. The
    // stall length depends on what delimits the regions: off-chip loads
    // (200–300 cycles) for memory kernels, the SFU pipeline for pure
    // compute kernels like CP (where the section 4 rule made SFU ops the
    // blocking instructions).
    let latency = if e.kernel_profile.mix.offchip_loads == 0 {
        f64::from(spec.sfu_latency)
    } else {
        f64::from(spec.global_latency_typ())
    };
    let latency_bound = instr * issue + units * latency;

    // Roofline 3: DRAM bandwidth for the wave's resident threads.
    let traffic = e.kernel_profile.mix.dram_traffic_bytes(spec);
    let bw_share = spec.bandwidth_bytes_per_cycle() / f64::from(spec.num_sms);
    let bandwidth_bound = threads_per_sm * traffic / bw_share;

    let wave = issue_bound.max(latency_bound).max(bandwidth_bound);
    let capacity = f64::from(spec.num_sms) * f64::from(occ.blocks_per_sm);
    let waves = (c.launch.total_blocks() as f64 / capacity).max(1.0);
    let cycles = wave * waves * inv;
    cycles / spec.clock_hz * 1e3 + crate::tuner::LAUNCH_OVERHEAD_MS * inv
}

/// Spearman rank correlation between two paired samples.
///
/// Returns a value in `[-1, 1]`; `NaN`-free as long as either sample has
/// at least two distinct values. Ties receive averaged ranks.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must pair up");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ranks = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        // total_cmp keeps the sort well-defined even if a cost model
        // hands us NaN (sorted to the end, tied with itself).
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut out = vec![0.0; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    };
    let (ra, rb) = (ranks(a), ranks(b));
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for k in 0..n {
        let (x, y) = (ra[k] - mean, rb[k] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Launch};

    #[test]
    fn rank_correlation_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((rank_correlation(&a, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((rank_correlation(&a, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        // Constant sample: defined as 0.
        assert_eq!(rank_correlation(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn rank_correlation_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = rank_correlation(&[1.0], &[1.0, 2.0]);
    }

    fn candidate(iters: u32, tpb: u32) -> Candidate {
        let mut b = KernelBuilder::new("m");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(iters, |b| {
            let x = b.ld_global(p, 0);
            b.fmad_acc(x, 1.0f32, acc);
        });
        b.st_global(p, 0, acc);
        Candidate::new(
            format!("i{iters}/t{tpb}"),
            b.finish(),
            Launch::new(Dim::new_1d(4096 / tpb), Dim::new_1d(tpb)),
        )
    }

    #[test]
    fn prediction_orders_work_correctly() {
        let spec = MachineSpec::geforce_8800_gtx();
        let small = candidate(10, 128);
        let big = candidate(100, 128);
        let es = small.evaluate(&spec).unwrap();
        let eb = big.evaluate(&spec).unwrap();
        assert!(predict_ms(&big, &eb, &spec) > predict_ms(&small, &es, &spec));
    }

    #[test]
    fn prediction_tracks_simulated_time_reasonably() {
        // Rank correlation with the simulator over a small sweep must be
        // strongly positive.
        let spec = MachineSpec::geforce_8800_gtx();
        let cands: Vec<Candidate> = [10u32, 20, 40, 80]
            .iter()
            .flat_map(|&it| [64u32, 128, 256].iter().map(move |&t| candidate(it, t)))
            .collect();
        let mut predicted = Vec::new();
        let mut simulated = Vec::new();
        for c in &cands {
            let e = c.evaluate(&spec).unwrap();
            predicted.push(predict_ms(c, &e, &spec));
            let prog = gpu_ir::linear::linearize(&c.kernel);
            let t = gpu_sim::timing::simulate(&prog, &c.launch, &e.kernel_profile.usage, &spec)
                .unwrap();
            simulated.push(t.time_ms);
        }
        let rho = rank_correlation(&predicted, &simulated);
        assert!(rho > 0.8, "rho = {rho}");
    }
}
