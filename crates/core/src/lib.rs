//! Optimization-space pruning for a multithreaded GPU.
//!
//! This crate is the paper's contribution (Ryoo et al., CGO 2008):
//! given the full optimization-configuration space of a CUDA-style
//! kernel, compute two cheap **static** metrics per configuration and
//! prune the space to the configurations on the Pareto-optimal curve of
//! the metric plot — typically discarding 74–98 % of the space while
//! keeping the configuration that full (simulated) evaluation would
//! have found.
//!
//! * [`metrics`] — Efficiency (Equation 1) and Utilization (Equation 2),
//!   computed from the `-ptx`/`-cubin`-style analyses of `gpu-ir` and
//!   the occupancy model of `gpu-arch`.
//! * [`bandwidth`] — the section 4 precondition: configurations that are
//!   global-memory-bandwidth-bound must be screened away before the
//!   metrics are trusted.
//! * [`pareto`] — Pareto-optimal subset selection.
//! * [`candidate`] — one configuration: a generated kernel plus launch
//!   geometry, and its statically evaluated profile.
//! * [`space`] — the optimization space as a first-class object:
//!   declared axes and constraints ([`space::Space`]), typed points
//!   ([`space::Point`]), declarative selection (`--filter`/`--sample`),
//!   and the [`space::CandidateSource`] abstraction that lets the
//!   engine instantiate candidates lazily inside the worker pool.
//! * [`tuner`] — the three search strategies compared in the paper and
//!   its future work: exhaustive evaluation (ground truth), the pruned
//!   Pareto search, and random sampling — plus the iterative-strategy
//!   protocol ([`tuner::IterativeStrategy`]/[`tuner::run_iterative`]).
//! * [`zoo`] — the iterative optimizers themselves: hill climbing,
//!   simulated annealing, a genetic strategy, and a surrogate search
//!   over the static cost model.
//! * [`engine`] — the shared evaluation engine the strategies run on: a
//!   worker pool with deterministic reassembly, a content-addressed memo
//!   cache over simulation inputs, and evaluation budgets.
//! * [`model`] — the "more detailed cost model" the paper's section 4
//!   announces: a static roofline cycle predictor plus rank-correlation
//!   tooling to score predictors against simulated time.
//! * [`obs`] — observability: structured event tracing through the
//!   engine, aggregated [`obs::EngineMetrics`], and the machine-readable
//!   [`obs::RunManifest`] (all serialized with the in-tree JSON support).
//! * [`report`] — table and ASCII-scatter formatting for the experiment
//!   harness.
//!
//! # Examples
//!
//! Computing the paper's worked example by hand (section 4, the
//! completely unrolled 16×16 matmul kernel):
//!
//! ```
//! use optspace::metrics::{Metrics, StaticProfile};
//!
//! let profile = StaticProfile {
//!     instr: 15_150,
//!     regions: 769,
//!     warps_per_block: 8,
//!     blocks_per_sm: 2,
//!     total_threads: 1 << 24,
//! };
//! let m = Metrics::from_profile(&profile);
//! assert!((m.efficiency / 3.93e-12 - 1.0).abs() < 1e-2);
//! assert!((m.utilization - 227.0).abs() < 1.0);
//! ```

pub mod bandwidth;
pub mod candidate;
pub mod engine;
pub mod metrics;
pub mod model;
pub mod obs;
pub mod pareto;
pub mod report;
pub mod space;
pub mod tuner;
pub mod zoo;

pub use bandwidth::BandwidthAssessment;
pub use candidate::{Candidate, Evaluated};
pub use engine::{
    CheckpointMeta, Checkpointer, EngineConfig, EngineStats, EvalBudget, EvalEngine, EvalError,
    EvalErrorKind, FaultPlan, Quarantine, ResultStore, RetryPolicy, StoreAudit,
};
pub use metrics::{Metrics, MetricsOptions, StaticProfile};
pub use obs::{EngineMetrics, EventSink, Json, RunManifest, RuntimeMetrics, Trace};
pub use pareto::{pareto_indices, Point};
pub use space::{
    Axis, CandidateSource, Filter, Sample, Selection, SelectionError, SelectionRecord, Space, Value,
};
pub use tuner::{
    run_iterative, ExhaustiveSearch, IterationContext, IterativeStrategy, Observation, Proposer,
    PrunedSearch, RandomSearch, SearchReport, SearchStrategy,
};

/// Convenient glob import for examples and the bench harness.
pub mod prelude {
    pub use crate::bandwidth::BandwidthAssessment;
    pub use crate::candidate::{Candidate, Evaluated};
    pub use crate::engine::{
        CheckpointMeta, Checkpointer, EngineConfig, EngineStats, EvalBudget, EvalEngine, EvalError,
        EvalErrorKind, FaultPlan, Quarantine, ResultStore, RetryPolicy, StoreAudit,
    };
    pub use crate::metrics::{Metrics, MetricsOptions, StaticProfile};
    pub use crate::obs::{EngineMetrics, EventSink, Json, RunManifest, RuntimeMetrics, Trace};
    pub use crate::pareto::{pareto_indices, Point};
    pub use crate::space::{
        Axis, CandidateSource, Filter, Sample, Selection, SelectionError, SelectionRecord, Space,
        Value,
    };
    pub use crate::tuner::{
        run_iterative, ExhaustiveSearch, IterationContext, IterativeStrategy, Observation,
        Proposer, PrunedSearch, RandomSearch, SearchReport, SearchStrategy,
    };
    pub use crate::zoo;
}
