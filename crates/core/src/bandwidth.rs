//! Bandwidth-boundedness screening (section 4, ¶2; section 5.3).
//!
//! "In order for these metrics to correlate to performance, global
//! memory bandwidth must not be the bottleneck … This is easily
//! calculated by examining the percentage of memory accesses in the
//! instruction stream and determining the average number of bytes being
//! transferred per cycle." Section 5.3 adds that bandwidth-bound points
//! (the 8×8 matmul tiles) "should be screened away … prior to defining
//! the curve."
//!
//! The estimate: at full issue an SM retires `warp_size /
//! issue_cycles_per_warp` thread-instructions per cycle; a kernel moving
//! `b` DRAM bytes per thread over `n` dynamic instructions therefore
//! demands `8 · b / n` bytes/cycle against the SM's share of the 86.4
//! GB/s (4 bytes/cycle on the 8800 GTX). Demand above the supply means
//! execution throttles on DRAM and instruction-level metrics stop
//! predicting performance.

use gpu_arch::MachineSpec;
use gpu_ir::analysis::InstrMix;

/// Result of the bandwidth screen for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthAssessment {
    /// DRAM bytes per cycle the kernel would demand at full issue rate.
    pub demand_bytes_per_cycle: f64,
    /// DRAM bytes per cycle one SM's bandwidth share supplies.
    pub supply_bytes_per_cycle: f64,
    /// Fraction of dynamic instructions that touch off-chip memory.
    pub offchip_fraction: f64,
}

impl BandwidthAssessment {
    /// Demand / supply; above ~1 the kernel is DRAM-throttled.
    pub fn pressure(&self) -> f64 {
        self.demand_bytes_per_cycle / self.supply_bytes_per_cycle
    }

    /// Whether the configuration should be screened away before the
    /// Pareto pruning (demand ≥ supply).
    pub fn is_bandwidth_bound(&self) -> bool {
        self.pressure() >= 1.0
    }
}

/// Assess one configuration's DRAM-bandwidth pressure.
pub fn assess(mix: &InstrMix, spec: &MachineSpec) -> BandwidthAssessment {
    let thread_instrs_per_cycle = f64::from(spec.warp_size) / f64::from(spec.issue_cycles_per_warp);
    let traffic = mix.dram_traffic_bytes(spec);
    let demand =
        if mix.instrs == 0 { 0.0 } else { thread_instrs_per_cycle * traffic / mix.instrs as f64 };
    BandwidthAssessment {
        demand_bytes_per_cycle: demand,
        supply_bytes_per_cycle: spec.bandwidth_bytes_per_cycle() / f64::from(spec.num_sms),
        offchip_fraction: mix.offchip_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::analysis::instruction_mix;
    use gpu_ir::build::KernelBuilder;

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    #[test]
    fn compute_heavy_kernel_is_not_bound() {
        let mut b = KernelBuilder::new("compute");
        let p = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(100, |b| {
            let x = b.ld_global(p, 0);
            b.repeat(50, |b| {
                b.fmad_acc(x, 1.0f32, acc);
            });
        });
        b.st_global(p, 0, acc);
        let a = assess(&instruction_mix(&b.finish()), &g80());
        assert!(!a.is_bandwidth_bound(), "pressure = {}", a.pressure());
    }

    #[test]
    fn streaming_kernel_is_bound() {
        // Pure copy: one load + one store per 2 instructions.
        let mut b = KernelBuilder::new("stream");
        let p = b.param(0);
        b.repeat(100, |b| {
            let x = b.ld_global(p, 0);
            b.st_global(p, 1, x);
        });
        let a = assess(&instruction_mix(&b.finish()), &g80());
        assert!(a.is_bandwidth_bound(), "pressure = {}", a.pressure());
        assert!(a.offchip_fraction > 0.3);
    }

    #[test]
    fn uncoalesced_access_raises_pressure() {
        let mk = |unco: bool| {
            let mut b = KernelBuilder::new("k");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(10, |b| {
                let x = if unco { b.ld_global_uncoalesced(p, 0) } else { b.ld_global(p, 0) };
                b.repeat(8, |b| {
                    b.fmad_acc(x, 1.0f32, acc);
                });
            });
            b.st_global(p, 0, acc);
            instruction_mix(&b.finish())
        };
        let co = assess(&mk(false), &g80());
        let unco = assess(&mk(true), &g80());
        assert!(unco.pressure() > co.pressure() * 4.0);
    }

    #[test]
    fn empty_kernel_has_zero_demand() {
        let b = KernelBuilder::new("empty");
        let a = assess(&instruction_mix(&b.finish()), &g80());
        assert_eq!(a.demand_bytes_per_cycle, 0.0);
        assert!(!a.is_bandwidth_bound());
    }

    #[test]
    fn supply_is_per_sm_share() {
        let b = KernelBuilder::new("empty");
        let a = assess(&instruction_mix(&b.finish()), &g80());
        assert!((a.supply_bytes_per_cycle - 4.0).abs() < 1e-12);
    }
}
