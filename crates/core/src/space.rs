//! First-class configuration spaces.
//!
//! The paper's premise is that an optimization *space* — tile size,
//! rectangular tiling, unroll factors, prefetching, register spilling,
//! work per invocation (Table 4) — is a structured object worth
//! reasoning about. This module gives it a concrete representation:
//!
//! - [`Axis`]: one named knob with an ordered list of [`Value`]s;
//! - [`Space`]: the cross product of axes, narrowed by structural
//!   [constraints](SpaceBuilder::constraint), enumerated in a fixed
//!   lexicographic order (last axis fastest);
//! - [`Point`]: one typed assignment of every axis, whose `Display`
//!   reproduces the application's label format;
//! - [`Selection`]: declarative narrowing (`--filter axis=value`,
//!   `--sample n --sample-seed s`) applied to a space before a search;
//! - [`CandidateSource`]: the engine-facing abstraction that lets a
//!   search run either over an eager `&[Candidate]` slice or over
//!   points instantiated lazily inside the worker pool.
//!
//! Enumeration order is part of the contract: candidate indices,
//! report layouts, and trace events all key off a point's ordinal, so
//! [`Space::points`] visits the full grid in lexicographic axis order
//! and merely skips constraint-violating tuples, exactly like the
//! hand-rolled nested loops it replaces.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::candidate::Candidate;
use crate::obs::Json;

/// One setting of one knob: the typed payload carried by an axis slot.
///
/// Values render through `Display` (`16`, `true`) and filters compare
/// against that printed form, so `--filter tile=16` needs no type
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A numeric knob (tile width, unroll factor, threads per block…).
    U32(u32),
    /// An on/off knob (prefetching, register spilling…).
    Bool(bool),
}

impl Value {
    /// The numeric payload, if this is a numeric knob.
    pub fn as_u32(self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// The boolean payload, if this is an on/off knob.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            Value::U32(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U32(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One named knob and the ordered values it may take.
///
/// The declaration order of values is the enumeration order: an axis
/// declared `[8, 16]` visits 8 before 16, and the *last* declared axis
/// of a space varies fastest, mirroring the innermost hand-rolled loop.
#[derive(Debug, Clone)]
pub struct Axis {
    name: &'static str,
    values: Vec<Value>,
}

impl Axis {
    /// Build an axis from anything whose items convert into [`Value`].
    pub fn new<V: Into<Value>>(name: &'static str, values: impl IntoIterator<Item = V>) -> Self {
        Axis { name, values: values.into_iter().map(Into::into).collect() }
    }

    /// The axis name, as used by `Point` accessors and `--filter`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The ordered values this axis may take.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

type PredFn = dyn Fn(&Point) -> bool + Send + Sync;
type LabelFn = dyn Fn(&Point) -> String + Send + Sync;

/// A named structural constraint: a predicate over full points.
///
/// Constraints never change enumeration *order* — the grid is walked
/// in full and violating tuples are skipped, which is exactly what a
/// `continue` in a hand-rolled nested loop did.
struct Constraint {
    name: &'static str,
    pred: Arc<PredFn>,
}

struct SpaceCore {
    axes: Vec<Axis>,
    constraints: Vec<Constraint>,
    label: Option<Arc<LabelFn>>,
}

impl SpaceCore {
    fn axis_index(&self, name: &str) -> Option<usize> {
        self.axes.iter().position(|a| a.name == name)
    }

    fn admits(&self, point: &Point) -> bool {
        self.constraints.iter().all(|c| (c.pred)(point))
    }
}

impl fmt::Debug for SpaceCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Space")
            .field("axes", &self.axes)
            .field("constraints", &self.constraints.iter().map(|c| c.name).collect::<Vec<_>>())
            .finish()
    }
}

/// A declarative optimization space: axes, constraints, and a label
/// scheme. Cheap to clone (the definition is shared behind an `Arc`).
#[derive(Clone, Debug)]
pub struct Space {
    core: Arc<SpaceCore>,
}

impl Space {
    /// Start declaring a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder { axes: Vec::new(), constraints: Vec::new(), label: None }
    }

    /// The declared axes, in enumeration order (last varies fastest).
    pub fn axes(&self) -> &[Axis] {
        &self.core.axes
    }

    /// Look up an axis by name.
    pub fn axis(&self, name: &str) -> Option<&Axis> {
        self.core.axis_index(name).map(|i| &self.core.axes[i])
    }

    /// The size of the full cross product, before constraints.
    pub fn grid_len(&self) -> usize {
        self.core.axes.iter().map(|a| a.values.len()).product()
    }

    /// The number of points that satisfy every constraint.
    pub fn len(&self) -> usize {
        if self.core.constraints.is_empty() {
            self.grid_len()
        } else {
            self.points().count()
        }
    }

    /// Whether no point satisfies the constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate the constraint-satisfying points in lexicographic
    /// order over the declared axes.
    pub fn points(&self) -> Points {
        Points {
            core: Arc::clone(&self.core),
            counters: vec![0; self.core.axes.len()],
            ordinal: 0,
            done: self.grid_len() == 0,
        }
    }
}

/// Builder for [`Space`]; axes enumerate in declaration order.
pub struct SpaceBuilder {
    axes: Vec<Axis>,
    constraints: Vec<Constraint>,
    label: Option<Arc<LabelFn>>,
}

impl SpaceBuilder {
    /// Declare the next axis. Later axes vary faster.
    pub fn axis<V: Into<Value>>(
        mut self,
        name: &'static str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.axes.push(Axis::new(name, values));
        self
    }

    /// Add a named structural constraint over full points.
    pub fn constraint(
        mut self,
        name: &'static str,
        pred: impl Fn(&Point) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.constraints.push(Constraint { name, pred: Arc::new(pred) });
        self
    }

    /// Install the label scheme `Point::to_string` renders with. When
    /// absent, points print as `axis=value/axis=value/…`.
    pub fn label(mut self, f: impl Fn(&Point) -> String + Send + Sync + 'static) -> Self {
        self.label = Some(Arc::new(f));
        self
    }

    /// Finish the declaration.
    pub fn build(self) -> Space {
        Space {
            core: Arc::new(SpaceCore {
                axes: self.axes,
                constraints: self.constraints,
                label: self.label,
            }),
        }
    }
}

/// One typed assignment of every axis in a space.
///
/// A point remembers its `ordinal` — its position in the space's
/// enumeration — so lazily instantiated candidates line up with the
/// indices an eager `candidates()` vector would have used.
#[derive(Clone)]
pub struct Point {
    values: Vec<Value>,
    ordinal: usize,
    core: Arc<SpaceCore>,
}

impl Point {
    /// The value assigned to `name`, if the axis exists.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.core.axis_index(name).map(|i| self.values[i])
    }

    /// The numeric value of axis `name`.
    ///
    /// # Panics
    /// Panics if the axis does not exist or is not numeric — both are
    /// programming errors in a space declaration, not runtime inputs.
    pub fn u32(&self, name: &str) -> u32 {
        self.value(name)
            .and_then(Value::as_u32)
            .unwrap_or_else(|| panic!("space has no u32 axis named `{name}`"))
    }

    /// The boolean value of axis `name`.
    ///
    /// # Panics
    /// Panics if the axis does not exist or is not boolean.
    pub fn flag(&self, name: &str) -> bool {
        self.value(name)
            .and_then(Value::as_bool)
            .unwrap_or_else(|| panic!("space has no bool axis named `{name}`"))
    }

    /// This point's position in the space's enumeration order.
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// The values in axis declaration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.core.label {
            Some(label) => f.write_str(&label(self)),
            None => {
                for (i, (axis, value)) in self.core.axes.iter().zip(&self.values).enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{}={}", axis.name, value)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point#{}({})", self.ordinal, self)
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
            && self.core.axes.iter().zip(&other.core.axes).all(|(a, b)| a.name == b.name)
    }
}

/// Iterator over a space's constraint-satisfying points. See
/// [`Space::points`].
pub struct Points {
    core: Arc<SpaceCore>,
    counters: Vec<usize>,
    ordinal: usize,
    done: bool,
}

impl Points {
    fn advance(&mut self) -> bool {
        for slot in (0..self.counters.len()).rev() {
            self.counters[slot] += 1;
            if self.counters[slot] < self.core.axes[slot].values.len() {
                return true;
            }
            self.counters[slot] = 0;
        }
        false
    }
}

impl Iterator for Points {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        while !self.done {
            let point = Point {
                values: self
                    .counters
                    .iter()
                    .zip(&self.core.axes)
                    .map(|(&c, a)| a.values[c])
                    .collect(),
                ordinal: self.ordinal,
                core: Arc::clone(&self.core),
            };
            self.done = !self.advance();
            if self.core.admits(&point) {
                self.ordinal += 1;
                return Some(point);
            }
        }
        None
    }
}

/// One `--filter axis=value` clause. The value is kept as the raw
/// string and compared against each point value's printed form, so
/// `tile=16` and `prefetch=true` need no type annotations and a value
/// outside the axis (`tile=17`) simply matches nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Axis name to constrain.
    pub axis: String,
    /// Required printed value.
    pub value: String,
}

impl Filter {
    /// Parse an `axis=value` clause.
    pub fn parse(raw: &str) -> Result<Filter, SelectionError> {
        match raw.split_once('=') {
            Some((axis, value)) if !axis.is_empty() && !value.is_empty() => {
                Ok(Filter { axis: axis.to_string(), value: value.to_string() })
            }
            _ => Err(SelectionError::BadFilter { raw: raw.to_string() }),
        }
    }

    fn matches(&self, point: &Point) -> bool {
        point.value(&self.axis).is_some_and(|v| v.to_string() == self.value)
    }
}

/// A seeded random subset request: `--sample n --sample-seed s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// How many surviving points to keep.
    pub count: usize,
    /// Seed for the shuffle that picks them.
    pub seed: u64,
}

/// Declarative narrowing of a space before a search: conjunction of
/// filters, then an optional seeded sample. Sampled points are
/// re-sorted by ordinal, so the selected subsequence preserves the
/// space's enumeration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Selection {
    /// All filters must match (conjunction).
    pub filters: Vec<Filter>,
    /// Optional seeded subset of the filter survivors.
    pub sample: Option<Sample>,
}

impl Selection {
    /// True when this selection keeps the whole space.
    pub fn is_noop(&self) -> bool {
        self.filters.is_empty() && self.sample.is_none()
    }

    /// Apply to a space, *strictly*: a filter naming an axis the space
    /// does not declare is an error (almost certainly a typo). A value
    /// outside the axis's range yields an empty selection, not an
    /// error — "nothing matches" is an answer.
    pub fn apply(&self, space: &Space) -> Result<Vec<Point>, SelectionError> {
        for f in &self.filters {
            if space.axis(&f.axis).is_none() {
                return Err(SelectionError::UnknownAxis {
                    axis: f.axis.clone(),
                    available: space.axes().iter().map(Axis::name).collect(),
                });
            }
        }
        Ok(self.narrow(space))
    }

    /// Apply to a space, *leniently*: filters naming axes the space
    /// does not declare are ignored. Multi-app sweeps use this so a
    /// `--filter tile=16` meant for matmul doesn't empty the CP space.
    pub fn apply_lenient(&self, space: &Space) -> Vec<Point> {
        let known: Vec<&Filter> =
            self.filters.iter().filter(|f| space.axis(&f.axis).is_some()).collect();
        let narrowed =
            Selection { filters: known.into_iter().cloned().collect(), sample: self.sample };
        narrowed.narrow(space)
    }

    fn narrow(&self, space: &Space) -> Vec<Point> {
        let mut points: Vec<Point> =
            space.points().filter(|p| self.filters.iter().all(|f| f.matches(p))).collect();
        if let Some(sample) = self.sample {
            let mut picks: Vec<usize> = (0..points.len()).collect();
            let mut rng = StdRng::seed_from_u64(sample.seed);
            picks.shuffle(&mut rng);
            picks.truncate(sample.count);
            picks.sort_unstable();
            points = picks.into_iter().map(|i| points[i].clone()).collect();
        }
        points
    }

    /// Summarize this selection for a report manifest.
    pub fn record(&self, matched: usize) -> SelectionRecord {
        SelectionRecord {
            filters: self.filters.iter().map(|f| (f.axis.clone(), f.value.clone())).collect(),
            sample: self.sample.map(|s| (s.count as u64, s.seed)),
            matched: matched as u64,
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for filter in &self.filters {
            write!(f, "{sep}{}={}", filter.axis, filter.value)?;
            sep = ", ";
        }
        if let Some(s) = self.sample {
            write!(f, "{sep}sample {} (seed {})", s.count, s.seed)?;
        }
        Ok(())
    }
}

/// Why a selection could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// A filter named an axis the space does not declare.
    UnknownAxis {
        /// The unrecognised axis name.
        axis: String,
        /// The axes the space does declare.
        available: Vec<&'static str>,
    },
    /// A `--filter` clause was not of the form `axis=value`.
    BadFilter {
        /// The malformed clause.
        raw: String,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::UnknownAxis { axis, available } => {
                write!(f, "unknown axis `{axis}` (space has: {})", available.join(", "))
            }
            SelectionError::BadFilter { raw } => {
                write!(f, "bad filter `{raw}` (expected axis=value)")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// The selection a report was produced under, as recorded in its
/// manifest: filter clauses, sample parameters, and how many points
/// survived.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionRecord {
    /// `(axis, value)` filter clauses.
    pub filters: Vec<(String, String)>,
    /// `(count, seed)` of the sample, if one was taken.
    pub sample: Option<(u64, u64)>,
    /// How many points the selection matched.
    pub matched: u64,
}

impl SelectionRecord {
    /// Serialize for embedding in a run manifest.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "filters",
                Json::Arr(
                    self.filters.iter().map(|(a, v)| Json::from(format!("{a}={v}"))).collect(),
                ),
            ),
            (
                "sample",
                match self.sample {
                    None => Json::Null,
                    Some((count, seed)) => {
                        Json::obj([("count", Json::from(count)), ("seed", Json::from(seed))])
                    }
                },
            ),
            ("matched", Json::from(self.matched)),
        ])
    }

    /// Parse back from manifest JSON.
    pub fn from_json(json: &Json) -> Option<SelectionRecord> {
        let filters = json
            .get("filters")?
            .as_arr()?
            .iter()
            .map(|j| {
                let (a, v) = j.as_str()?.split_once('=')?;
                Some((a.to_string(), v.to_string()))
            })
            .collect::<Option<Vec<_>>>()?;
        let sample = match json.get("sample") {
            None | Some(Json::Null) => None,
            Some(s) => Some((s.get("count")?.as_u64()?, s.get("seed")?.as_u64()?)),
        };
        Some(SelectionRecord { filters, sample, matched: json.get("matched")?.as_u64()? })
    }
}

/// Where a search gets its candidates: either an eager, materialized
/// slice, or a lazy view that instantiates points on demand inside
/// the worker pool.
///
/// The contract that makes eager and lazy reports byte-identical:
/// `get(i)` must return the same candidate every time it is called
/// for a given `i`, and `label(i)` must equal `get(i).label`.
pub trait CandidateSource: Sync {
    /// Number of candidates (the search's `space_size`).
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label of candidate `index` without instantiating it.
    fn label(&self, index: usize) -> String;

    /// Candidate `index`: borrowed from an eager slice, or built on
    /// the calling (worker) thread for a lazy source.
    fn get(&self, index: usize) -> Cow<'_, Candidate>;
}

impl CandidateSource for [Candidate] {
    fn len(&self) -> usize {
        <[Candidate]>::len(self)
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

// `[Candidate]` is unsized, so it cannot itself coerce to a
// `&dyn CandidateSource`; these sized carriers are what call sites
// actually pass (`&candidates` for a `Vec`, `&slice` for a slice).
impl CandidateSource for &[Candidate] {
    fn len(&self) -> usize {
        <[Candidate]>::len(self)
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

impl CandidateSource for Vec<Candidate> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_space() -> Space {
        Space::builder()
            .axis("tile", [8u32, 16])
            .axis("unroll", [1u32, 2, 4])
            .axis("prefetch", [false, true])
            .build()
    }

    #[test]
    fn enumeration_is_lexicographic_last_axis_fastest() {
        let s = toy_space();
        assert_eq!(s.grid_len(), 12);
        assert_eq!(s.len(), 12);
        let pts: Vec<Point> = s.points().collect();
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0].u32("tile"), 8);
        assert_eq!(pts[0].u32("unroll"), 1);
        assert!(!pts[0].flag("prefetch"));
        assert!(pts[1].flag("prefetch"));
        assert_eq!(pts[2].u32("unroll"), 2);
        assert_eq!(pts[6].u32("tile"), 16);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.ordinal(), i);
        }
    }

    #[test]
    fn constraints_skip_tuples_without_reordering() {
        let s = Space::builder()
            .axis("a", [1u32, 2, 3])
            .axis("b", [1u32, 2, 3])
            .constraint("a divides b", |p| p.u32("b").is_multiple_of(p.u32("a")))
            .build();
        assert_eq!(s.grid_len(), 9);
        let got: Vec<(u32, u32)> = s.points().map(|p| (p.u32("a"), p.u32("b"))).collect();
        assert_eq!(got, vec![(1, 1), (1, 2), (1, 3), (2, 2), (3, 3)]);
        assert_eq!(s.len(), 5);
        // Ordinals number the *surviving* sequence densely.
        let ords: Vec<usize> = s.points().map(|p| p.ordinal()).collect();
        assert_eq!(ords, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn default_label_and_custom_label() {
        let s = toy_space();
        let p = s.points().next().unwrap();
        assert_eq!(p.to_string(), "tile=8/unroll=1/prefetch=false");

        let labelled = Space::builder()
            .axis("tile", [8u32])
            .label(|p| format!("{0}x{0}", p.u32("tile")))
            .build();
        let p = labelled.points().next().unwrap();
        assert_eq!(p.to_string(), "8x8");
    }

    #[test]
    fn filters_narrow_by_printed_value() {
        let s = toy_space();
        let sel = Selection { filters: vec![Filter::parse("tile=16").unwrap()], sample: None };
        let pts = sel.apply(&s).unwrap();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.u32("tile") == 16));
        // Enumeration order survives the narrowing.
        let ords: Vec<usize> = pts.iter().map(Point::ordinal).collect();
        let mut sorted = ords.clone();
        sorted.sort_unstable();
        assert_eq!(ords, sorted);

        let sel =
            Selection { filters: vec![Filter::parse("prefetch=true").unwrap()], sample: None };
        assert_eq!(sel.apply(&s).unwrap().len(), 6);
    }

    #[test]
    fn out_of_range_value_is_empty_unknown_axis_is_error() {
        let s = toy_space();
        let empty = Selection { filters: vec![Filter::parse("tile=17").unwrap()], sample: None };
        assert!(empty.apply(&s).unwrap().is_empty());

        let contradictory = Selection {
            filters: vec![Filter::parse("tile=8").unwrap(), Filter::parse("tile=16").unwrap()],
            sample: None,
        };
        assert!(contradictory.apply(&s).unwrap().is_empty());

        let typo = Selection { filters: vec![Filter::parse("tyle=16").unwrap()], sample: None };
        match typo.apply(&s) {
            Err(SelectionError::UnknownAxis { axis, available }) => {
                assert_eq!(axis, "tyle");
                assert_eq!(available, vec!["tile", "unroll", "prefetch"]);
            }
            other => panic!("expected UnknownAxis, got {other:?}"),
        }
        // The lenient variant ignores the typo'd clause entirely.
        assert_eq!(typo.apply_lenient(&s).len(), 12);
    }

    #[test]
    fn sampling_is_seeded_and_order_preserving() {
        let s = toy_space();
        let sel = |seed| Selection { filters: Vec::new(), sample: Some(Sample { count: 5, seed }) };
        let a = sel(7).apply(&s).unwrap();
        let b = sel(7).apply(&s).unwrap();
        assert_eq!(a, b, "same seed, same subset");
        assert_eq!(a.len(), 5);
        let ords: Vec<usize> = a.iter().map(Point::ordinal).collect();
        let mut sorted = ords.clone();
        sorted.sort_unstable();
        assert_eq!(ords, sorted, "sample preserves enumeration order");
        let c = sel(8).apply(&s).unwrap();
        assert_ne!(a, c, "different seed, different subset");

        // Oversized samples keep everything.
        let all = Selection { filters: Vec::new(), sample: Some(Sample { count: 99, seed: 0 }) };
        assert_eq!(all.apply(&s).unwrap().len(), 12);
    }

    #[test]
    fn bad_filter_syntax_is_rejected() {
        assert!(Filter::parse("tile").is_err());
        assert!(Filter::parse("=16").is_err());
        assert!(Filter::parse("tile=").is_err());
        assert_eq!(
            Filter::parse("tile=16").unwrap(),
            Filter { axis: "tile".into(), value: "16".into() }
        );
    }

    #[test]
    fn selection_record_round_trips_through_json() {
        let rec = SelectionRecord {
            filters: vec![("tile".into(), "16".into()), ("prefetch".into(), "true".into())],
            sample: Some((10, 42)),
            matched: 7,
        };
        let back = SelectionRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(rec, back);

        let plain = SelectionRecord { filters: Vec::new(), sample: None, matched: 96 };
        assert_eq!(SelectionRecord::from_json(&plain.to_json()).unwrap(), plain);
    }

    #[test]
    fn slice_source_borrows() {
        use crate::candidate::Candidate;
        use gpu_ir::build::KernelBuilder;
        use gpu_ir::{Dim, Launch};
        let k = KernelBuilder::new("noop").finish();
        let cands = vec![Candidate::new("only", k, Launch::new(Dim::new_1d(1), Dim::new_1d(1)))];
        let src: &dyn CandidateSource = &cands;
        assert_eq!(src.len(), 1);
        assert!(!src.is_empty());
        assert_eq!(src.label(0), "only");
        assert!(matches!(src.get(0), Cow::Borrowed(_)));
    }
}
