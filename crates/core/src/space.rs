//! First-class configuration spaces.
//!
//! The paper's premise is that an optimization *space* — tile size,
//! rectangular tiling, unroll factors, prefetching, register spilling,
//! work per invocation (Table 4) — is a structured object worth
//! reasoning about. This module gives it a concrete representation:
//!
//! - [`Axis`]: one named knob with an ordered list of [`Value`]s;
//! - [`Space`]: the cross product of axes, narrowed by structural
//!   [constraints](SpaceBuilder::constraint), enumerated in a fixed
//!   lexicographic order (last axis fastest);
//! - [`PartialPoint`]: a *partially* specified assignment — some axes
//!   bound to one value, the rest still carrying their full domains —
//!   with [`bind`](PartialPoint::bind), [`split`](PartialPoint::split)
//!   and [`completions`](PartialPoint::completions) operations;
//! - [`Point`]: the fully-bound special case — one typed assignment of
//!   every axis, whose `Display` reproduces the application's label
//!   format;
//! - [`Selection`]: declarative narrowing (`--filter axis=value`,
//!   `--sample n --sample-seed s`) applied to a space before a search;
//! - [`CandidateSource`]: the engine-facing abstraction that lets a
//!   search run either over an eager `&[Candidate]` slice or over
//!   points instantiated lazily inside the worker pool;
//! - [`Instantiator`]: the point-to-candidate hook that lets subspace
//!   searches ([`BranchAndBound`](crate::tuner::BranchAndBound))
//!   instantiate frontier leaves and probe corners on demand.
//!
//! Enumeration order is part of the contract: candidate indices,
//! report layouts, and trace events all key off a point's ordinal, so
//! [`Space::points`] visits the full grid in lexicographic axis order
//! and merely skips constraint-violating tuples, exactly like the
//! hand-rolled nested loops it replaces.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::candidate::Candidate;
use crate::obs::Json;

/// One setting of one knob: the typed payload carried by an axis slot.
///
/// Values render through `Display` (`16`, `true`) and filters compare
/// against that printed form, so `--filter tile=16` needs no type
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A numeric knob (tile width, unroll factor, threads per block…).
    U32(u32),
    /// An on/off knob (prefetching, register spilling…).
    Bool(bool),
}

impl Value {
    /// The numeric payload, if this is a numeric knob.
    pub fn as_u32(self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// The boolean payload, if this is an on/off knob.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            Value::U32(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U32(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One named knob and the ordered values it may take.
///
/// The declaration order of values is the enumeration order: an axis
/// declared `[8, 16]` visits 8 before 16, and the *last* declared axis
/// of a space varies fastest, mirroring the innermost hand-rolled loop.
#[derive(Debug, Clone)]
pub struct Axis {
    name: &'static str,
    values: Vec<Value>,
}

impl Axis {
    /// Build an axis from anything whose items convert into [`Value`].
    pub fn new<V: Into<Value>>(name: &'static str, values: impl IntoIterator<Item = V>) -> Self {
        Axis { name, values: values.into_iter().map(Into::into).collect() }
    }

    /// The axis name, as used by `Point` accessors and `--filter`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The ordered values this axis may take.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

type PredFn = dyn Fn(&Point) -> bool + Send + Sync;
type LabelFn = dyn Fn(&Point) -> String + Send + Sync;

/// A named structural constraint: a predicate over full points.
///
/// Constraints never change enumeration *order* — the grid is walked
/// in full and violating tuples are skipped, which is exactly what a
/// `continue` in a hand-rolled nested loop did.
struct Constraint {
    name: &'static str,
    pred: Arc<PredFn>,
}

struct SpaceCore {
    axes: Vec<Axis>,
    constraints: Vec<Constraint>,
    label: Option<Arc<LabelFn>>,
}

impl SpaceCore {
    fn axis_index(&self, name: &str) -> Option<usize> {
        self.axes.iter().position(|a| a.name == name)
    }

    fn admits(&self, point: &Point) -> bool {
        self.constraints.iter().all(|c| (c.pred)(point))
    }

    /// Mixed-radix rank of a full grid assignment (one value index per
    /// axis), in enumeration order: last axis fastest.
    fn rank_of(&self, counters: &[usize]) -> usize {
        let mut rank = 0usize;
        for (c, a) in counters.iter().zip(&self.axes) {
            rank = rank * a.values.len() + c;
        }
        rank
    }

    /// Inverse of [`rank_of`]: decode a full-grid rank back into one
    /// value index per axis.
    fn counters_of(&self, rank: usize) -> Vec<usize> {
        let mut counters = vec![0usize; self.axes.len()];
        let mut r = rank;
        for slot in (0..self.axes.len()).rev() {
            let n = self.axes[slot].values.len();
            counters[slot] = r % n;
            r /= n;
        }
        counters
    }
}

impl fmt::Debug for SpaceCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Space")
            .field("axes", &self.axes)
            .field("constraints", &self.constraints.iter().map(|c| c.name).collect::<Vec<_>>())
            .finish()
    }
}

/// A declarative optimization space: axes, constraints, and a label
/// scheme. Cheap to clone (the definition is shared behind an `Arc`).
#[derive(Clone, Debug)]
pub struct Space {
    core: Arc<SpaceCore>,
}

impl Space {
    /// Start declaring a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder { axes: Vec::new(), constraints: Vec::new(), label: None }
    }

    /// The declared axes, in enumeration order (last varies fastest).
    pub fn axes(&self) -> &[Axis] {
        &self.core.axes
    }

    /// Look up an axis by name.
    pub fn axis(&self, name: &str) -> Option<&Axis> {
        self.core.axis_index(name).map(|i| &self.core.axes[i])
    }

    /// The size of the full cross product, before constraints.
    pub fn grid_len(&self) -> usize {
        self.core.axes.iter().map(|a| a.values.len()).product()
    }

    /// The number of points that satisfy every constraint.
    pub fn len(&self) -> usize {
        if self.core.constraints.is_empty() {
            self.grid_len()
        } else {
            self.points().count()
        }
    }

    /// Whether no point satisfies the constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate the constraint-satisfying points in lexicographic
    /// order over the declared axes.
    ///
    /// This is the dense renumbering of
    /// [`partial().completions()`](PartialPoint::completions): the
    /// fully-unbound partial point's completions are the whole space,
    /// and `points()` assigns them consecutive ordinals.
    pub fn points(&self) -> Points {
        Points { inner: self.partial().completions(), ordinal: 0 }
    }

    /// The fully-unbound partial assignment over this space: the root
    /// subspace a branch-and-bound search starts from.
    pub fn partial(&self) -> PartialPoint {
        PartialPoint { bound: vec![None; self.core.axes.len()], core: Arc::clone(&self.core) }
    }

    /// A probe point at an explicit full assignment. Its ordinal is the
    /// assignment's full-grid rank, *not* a dense enumeration ordinal,
    /// and the assignment is **not** checked against the constraints —
    /// bound probes deliberately evaluate corners the space excludes.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not assign every axis a value from that
    /// axis's domain — probe corners are always built from domain
    /// values, so a mismatch is a programming error.
    pub fn probe_point(&self, values: Vec<Value>) -> Point {
        assert_eq!(values.len(), self.core.axes.len(), "probe point must assign every axis");
        let counters: Vec<usize> = values
            .iter()
            .zip(&self.core.axes)
            .map(|(v, a)| {
                a.values.iter().position(|w| w == v).unwrap_or_else(|| {
                    panic!("probe value {v} is outside the domain of axis `{}`", a.name)
                })
            })
            .collect();
        Point { values, ordinal: self.core.rank_of(&counters), core: Arc::clone(&self.core) }
    }

    /// Decode a full-grid rank back into its point, or `None` when the
    /// rank is outside the grid. The point's ordinal is `rank` itself
    /// (as for [`probe_point`](Self::probe_point)); constraints are
    /// **not** checked — callers restoring checkpointed ranks already
    /// know they were admitted when recorded.
    pub fn point_at_grid_rank(&self, rank: usize) -> Option<Point> {
        if rank >= self.grid_len() || self.core.axes.is_empty() {
            return None;
        }
        let counters = self.core.counters_of(rank);
        Some(Point {
            values: counters.iter().zip(&self.core.axes).map(|(&c, a)| a.values[c]).collect(),
            ordinal: rank,
            core: Arc::clone(&self.core),
        })
    }

    /// Rebuild a [`PartialPoint`] from a per-axis binding vector (as
    /// returned by [`PartialPoint::bindings`]), or `None` when the
    /// vector's length does not match the axis count or a bound index
    /// is outside its axis's domain. This is the checkpoint/resume
    /// round-trip for branch-and-bound frontier nodes.
    pub fn partial_from_bindings(&self, bindings: &[Option<usize>]) -> Option<PartialPoint> {
        if bindings.len() != self.core.axes.len() {
            return None;
        }
        for (b, a) in bindings.iter().zip(&self.core.axes) {
            if let Some(idx) = b {
                if *idx >= a.values.len() {
                    return None;
                }
            }
        }
        Some(PartialPoint { bound: bindings.to_vec(), core: Arc::clone(&self.core) })
    }
}

/// Builder for [`Space`]; axes enumerate in declaration order.
pub struct SpaceBuilder {
    axes: Vec<Axis>,
    constraints: Vec<Constraint>,
    label: Option<Arc<LabelFn>>,
}

impl SpaceBuilder {
    /// Declare the next axis. Later axes vary faster.
    pub fn axis<V: Into<Value>>(
        mut self,
        name: &'static str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.axes.push(Axis::new(name, values));
        self
    }

    /// Add a named structural constraint over full points.
    pub fn constraint(
        mut self,
        name: &'static str,
        pred: impl Fn(&Point) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.constraints.push(Constraint { name, pred: Arc::new(pred) });
        self
    }

    /// Install the label scheme `Point::to_string` renders with. When
    /// absent, points print as `axis=value/axis=value/…`.
    pub fn label(mut self, f: impl Fn(&Point) -> String + Send + Sync + 'static) -> Self {
        self.label = Some(Arc::new(f));
        self
    }

    /// Finish the declaration.
    pub fn build(self) -> Space {
        Space {
            core: Arc::new(SpaceCore {
                axes: self.axes,
                constraints: self.constraints,
                label: self.label,
            }),
        }
    }
}

/// One typed assignment of every axis in a space.
///
/// A point remembers its `ordinal` — its position in the space's
/// enumeration — so lazily instantiated candidates line up with the
/// indices an eager `candidates()` vector would have used.
#[derive(Clone)]
pub struct Point {
    values: Vec<Value>,
    ordinal: usize,
    core: Arc<SpaceCore>,
}

impl Point {
    /// The value assigned to `name`, if the axis exists.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.core.axis_index(name).map(|i| self.values[i])
    }

    /// The numeric value of axis `name`.
    ///
    /// # Panics
    /// Panics if the axis does not exist or is not numeric — both are
    /// programming errors in a space declaration, not runtime inputs.
    pub fn u32(&self, name: &str) -> u32 {
        self.value(name)
            .and_then(Value::as_u32)
            .unwrap_or_else(|| panic!("space has no u32 axis named `{name}`"))
    }

    /// The boolean value of axis `name`.
    ///
    /// # Panics
    /// Panics if the axis does not exist or is not boolean.
    pub fn flag(&self, name: &str) -> bool {
        self.value(name)
            .and_then(Value::as_bool)
            .unwrap_or_else(|| panic!("space has no bool axis named `{name}`"))
    }

    /// This point's position in the space's enumeration order.
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// The values in axis declaration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// View this point as the fully-bound partial point it is: every
    /// axis bound to this point's value.
    pub fn to_partial(&self) -> PartialPoint {
        let bound = self
            .values
            .iter()
            .zip(&self.core.axes)
            .map(|(v, a)| Some(a.values.iter().position(|w| w == v).expect("value in domain")))
            .collect();
        PartialPoint { bound, core: Arc::clone(&self.core) }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.core.label {
            Some(label) => f.write_str(&label(self)),
            None => {
                for (i, (axis, value)) in self.core.axes.iter().zip(&self.values).enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{}={}", axis.name, value)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point#{}({})", self.ordinal, self)
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
            && self.core.axes.iter().zip(&other.core.axes).all(|(a, b)| a.name == b.name)
    }
}

/// A partially specified point: a typed set of bound axes plus the
/// unbound axes' full domains. A [`Point`] is the fully-bound special
/// case (see [`Point::to_partial`] / [`PartialPoint::as_point`]).
///
/// Partial points denote *subspaces* — the set of
/// [`completions`](PartialPoint::completions) obtained by assigning
/// every unbound axis — and are the unit a branch-and-bound search
/// bounds and prunes. The canonical refinement order is deterministic:
/// [`split`](PartialPoint::split) always binds the **first unbound
/// axis in declaration order**, producing one child per domain value
/// in declaration order, so the subspace tree (and any frontier keyed
/// on it) is identical from run to run.
#[derive(Clone)]
pub struct PartialPoint {
    /// Per axis: `Some(value index)` when bound, `None` when unbound.
    bound: Vec<Option<usize>>,
    core: Arc<SpaceCore>,
}

impl PartialPoint {
    /// The declared axes, in enumeration order.
    pub fn axes(&self) -> &[Axis] {
        &self.core.axes
    }

    /// Whether every axis is bound (the subspace is a single point).
    pub fn is_complete(&self) -> bool {
        self.bound.iter().all(Option::is_some)
    }

    /// How many axes are still unbound.
    pub fn unbound_len(&self) -> usize {
        self.bound.iter().filter(|b| b.is_none()).count()
    }

    /// The value bound to axis `name`, or `None` while it is unbound
    /// (or the axis does not exist).
    pub fn value(&self, name: &str) -> Option<Value> {
        let i = self.core.axis_index(name)?;
        self.bound[i].map(|v| self.core.axes[i].values[v])
    }

    /// The value *index* bound to axis `axis` (by position), or `None`
    /// while it is unbound or out of range.
    pub fn binding(&self, axis: usize) -> Option<usize> {
        self.bound.get(axis).copied().flatten()
    }

    /// The per-axis binding vector: `Some(value index)` where bound,
    /// `None` where unbound. Serializable form of this subspace — feed
    /// it back through [`Space::partial_from_bindings`] to restore.
    pub fn bindings(&self) -> &[Option<usize>] {
        &self.bound
    }

    /// Bind axis `name` to `value`, narrowing the subspace. Returns
    /// `None` if the axis does not exist or `value` is outside its
    /// domain; re-binding a bound axis to a different value also
    /// returns `None` (the subspace would be empty).
    pub fn bind(&self, name: &str, value: Value) -> Option<PartialPoint> {
        let axis = self.core.axis_index(name)?;
        let idx = self.core.axes[axis].values.iter().position(|w| *w == value)?;
        match self.bound[axis] {
            Some(prev) if prev != idx => None,
            _ => Some(self.bind_index(axis, idx)),
        }
    }

    fn bind_index(&self, axis: usize, idx: usize) -> PartialPoint {
        let mut next = self.clone();
        next.bound[axis] = Some(idx);
        next
    }

    /// The axis index [`split`](Self::split) will bind: the first
    /// unbound axis in declaration order. `None` when complete.
    pub fn split_axis(&self) -> Option<usize> {
        self.bound.iter().position(Option::is_none)
    }

    /// Partition this subspace along the first unbound axis: one child
    /// per domain value, in declaration order. Complete points return
    /// an empty vector.
    pub fn split(&self) -> Vec<PartialPoint> {
        let Some(axis) = self.split_axis() else {
            return Vec::new();
        };
        (0..self.core.axes[axis].values.len()).map(|idx| self.bind_index(axis, idx)).collect()
    }

    /// Enumerate the constraint-admitted completions of this subspace
    /// in lexicographic order (last unbound axis fastest). Each yielded
    /// point's ordinal is its **full-grid rank**, not a dense index —
    /// [`Space::points`] is the dense renumbering of the root partial's
    /// completions.
    pub fn completions(&self) -> Completions {
        let counters: Vec<usize> = self.bound.iter().map(|b| b.unwrap_or(0)).collect();
        let done = self.grid_count() == 0;
        Completions { partial: self.clone(), counters, done }
    }

    /// The number of grid tuples in this subspace, before constraints.
    pub fn grid_count(&self) -> usize {
        self.bound
            .iter()
            .zip(&self.core.axes)
            .map(|(b, a)| if b.is_some() { 1 } else { a.values.len() })
            .product()
    }

    /// The number of constraint-admitted completions.
    pub fn admitted_count(&self) -> usize {
        if self.core.constraints.is_empty() {
            self.grid_count()
        } else {
            self.completions().count()
        }
    }

    /// The full-grid rank of this subspace's lexicographically first
    /// tuple — the canonical tie-breaking key for frontier ordering.
    pub fn first_grid_rank(&self) -> usize {
        let counters: Vec<usize> = self.bound.iter().map(|b| b.unwrap_or(0)).collect();
        self.core.rank_of(&counters)
    }

    /// The single point this subspace denotes, when complete. Its
    /// ordinal is the full-grid rank (as for completions).
    pub fn as_point(&self) -> Option<Point> {
        if !self.is_complete() {
            return None;
        }
        let counters: Vec<usize> = self.bound.iter().map(|b| b.expect("complete")).collect();
        Some(Point {
            values: counters.iter().zip(&self.core.axes).map(|(&c, a)| a.values[c]).collect(),
            ordinal: self.core.rank_of(&counters),
            core: Arc::clone(&self.core),
        })
    }

    /// Whether the full-grid tuple at `rank` lies inside this subspace
    /// *and* satisfies the space's constraints. Branch-and-bound
    /// accounting uses this to avoid counting an already-probed corner
    /// as "eliminated without instantiation" when its subspace is
    /// pruned.
    pub fn contains_admitted_rank(&self, rank: usize) -> bool {
        let total: usize = self.core.axes.iter().map(|a| a.values.len()).product();
        if rank >= total {
            return false;
        }
        let counters = self.core.counters_of(rank);
        if !self.bound.iter().zip(&counters).all(|(b, &c)| b.is_none_or(|b| b == c)) {
            return false;
        }
        let point = Point {
            values: counters.iter().zip(&self.core.axes).map(|(&c, a)| a.values[c]).collect(),
            ordinal: rank,
            core: Arc::clone(&self.core),
        };
        self.core.admits(&point)
    }

    /// A full assignment with bound axes at their bound value and each
    /// unbound axis `i` at value index `fill[i]` — the optimistic
    /// "corner" a bound probe evaluates.
    ///
    /// # Panics
    ///
    /// Panics if `fill` is shorter than the axis list or a fill index
    /// is outside its axis domain.
    pub fn corner_values(&self, fill: &[usize]) -> Vec<Value> {
        self.bound
            .iter()
            .zip(&self.core.axes)
            .enumerate()
            .map(|(i, (b, a))| a.values[b.unwrap_or(fill[i])])
            .collect()
    }
}

impl fmt::Display for PartialPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (axis, b)) in self.core.axes.iter().zip(&self.bound).enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            match b {
                Some(idx) => write!(f, "{}={}", axis.name, axis.values[*idx])?,
                None => write!(f, "{}=*", axis.name)?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for PartialPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartialPoint({self})")
    }
}

/// Iterator over a subspace's admitted completions. See
/// [`PartialPoint::completions`].
pub struct Completions {
    partial: PartialPoint,
    counters: Vec<usize>,
    done: bool,
}

impl Completions {
    fn advance(&mut self) -> bool {
        for slot in (0..self.counters.len()).rev() {
            if self.partial.bound[slot].is_some() {
                continue;
            }
            self.counters[slot] += 1;
            if self.counters[slot] < self.partial.core.axes[slot].values.len() {
                return true;
            }
            self.counters[slot] = 0;
        }
        false
    }
}

impl Iterator for Completions {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        while !self.done {
            let core = &self.partial.core;
            let point = Point {
                values: self.counters.iter().zip(&core.axes).map(|(&c, a)| a.values[c]).collect(),
                ordinal: core.rank_of(&self.counters),
                core: Arc::clone(core),
            };
            self.done = !self.advance();
            if self.partial.core.admits(&point) {
                return Some(point);
            }
        }
        None
    }
}

/// Iterator over a space's constraint-satisfying points. See
/// [`Space::points`].
pub struct Points {
    inner: Completions,
    ordinal: usize,
}

impl Iterator for Points {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let mut point = self.inner.next()?;
        point.ordinal = self.ordinal;
        self.ordinal += 1;
        Some(point)
    }
}

/// One `--filter axis=value` clause. The value is kept as the raw
/// string and compared against each point value's printed form, so
/// `tile=16` and `prefetch=true` need no type annotations and a value
/// outside the axis (`tile=17`) simply matches nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Axis name to constrain.
    pub axis: String,
    /// Required printed value.
    pub value: String,
}

impl Filter {
    /// Parse an `axis=value` clause.
    pub fn parse(raw: &str) -> Result<Filter, SelectionError> {
        match raw.split_once('=') {
            Some((axis, value)) if !axis.is_empty() && !value.is_empty() => {
                Ok(Filter { axis: axis.to_string(), value: value.to_string() })
            }
            _ => Err(SelectionError::BadFilter { raw: raw.to_string() }),
        }
    }

    fn matches(&self, point: &Point) -> bool {
        point.value(&self.axis).is_some_and(|v| v.to_string() == self.value)
    }
}

/// A seeded random subset request: `--sample n --sample-seed s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// How many surviving points to keep.
    pub count: usize,
    /// Seed for the shuffle that picks them.
    pub seed: u64,
}

/// Declarative narrowing of a space before a search: conjunction of
/// filters, then an optional seeded sample. Sampled points are
/// re-sorted by ordinal, so the selected subsequence preserves the
/// space's enumeration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Selection {
    /// All filters must match (conjunction).
    pub filters: Vec<Filter>,
    /// Optional seeded subset of the filter survivors.
    pub sample: Option<Sample>,
}

impl Selection {
    /// True when this selection keeps the whole space.
    pub fn is_noop(&self) -> bool {
        self.filters.is_empty() && self.sample.is_none()
    }

    /// Apply to a space, *strictly*: a filter naming an axis the space
    /// does not declare is an error (almost certainly a typo). A value
    /// outside the axis's range yields an empty selection, not an
    /// error — "nothing matches" is an answer.
    pub fn apply(&self, space: &Space) -> Result<Vec<Point>, SelectionError> {
        for f in &self.filters {
            if space.axis(&f.axis).is_none() {
                return Err(SelectionError::UnknownAxis {
                    axis: f.axis.clone(),
                    available: space.axes().iter().map(Axis::name).collect(),
                });
            }
        }
        Ok(self.narrow(space))
    }

    /// Apply to a space, *leniently*: filters naming axes the space
    /// does not declare are ignored. Multi-app sweeps use this so a
    /// `--filter tile=16` meant for matmul doesn't empty the CP space.
    pub fn apply_lenient(&self, space: &Space) -> Vec<Point> {
        let known: Vec<&Filter> =
            self.filters.iter().filter(|f| space.axis(&f.axis).is_some()).collect();
        let narrowed =
            Selection { filters: known.into_iter().cloned().collect(), sample: self.sample };
        narrowed.narrow(space)
    }

    fn narrow(&self, space: &Space) -> Vec<Point> {
        let mut points: Vec<Point> =
            space.points().filter(|p| self.filters.iter().all(|f| f.matches(p))).collect();
        if let Some(sample) = self.sample {
            let mut picks: Vec<usize> = (0..points.len()).collect();
            let mut rng = StdRng::seed_from_u64(sample.seed);
            picks.shuffle(&mut rng);
            picks.truncate(sample.count);
            picks.sort_unstable();
            points = picks.into_iter().map(|i| points[i].clone()).collect();
        }
        points
    }

    /// Summarize this selection for a report manifest.
    pub fn record(&self, matched: usize) -> SelectionRecord {
        SelectionRecord {
            filters: self.filters.iter().map(|f| (f.axis.clone(), f.value.clone())).collect(),
            sample: self.sample.map(|s| (s.count as u64, s.seed)),
            matched: matched as u64,
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for filter in &self.filters {
            write!(f, "{sep}{}={}", filter.axis, filter.value)?;
            sep = ", ";
        }
        if let Some(s) = self.sample {
            write!(f, "{sep}sample {} (seed {})", s.count, s.seed)?;
        }
        Ok(())
    }
}

/// Why a selection could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// A filter named an axis the space does not declare.
    UnknownAxis {
        /// The unrecognised axis name.
        axis: String,
        /// The axes the space does declare.
        available: Vec<&'static str>,
    },
    /// A `--filter` clause was not of the form `axis=value`.
    BadFilter {
        /// The malformed clause.
        raw: String,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::UnknownAxis { axis, available } => {
                write!(f, "unknown axis `{axis}` (space has: {})", available.join(", "))
            }
            SelectionError::BadFilter { raw } => {
                write!(f, "bad filter `{raw}` (expected axis=value)")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// The selection a report was produced under, as recorded in its
/// manifest: filter clauses, sample parameters, and how many points
/// survived.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionRecord {
    /// `(axis, value)` filter clauses.
    pub filters: Vec<(String, String)>,
    /// `(count, seed)` of the sample, if one was taken.
    pub sample: Option<(u64, u64)>,
    /// How many points the selection matched.
    pub matched: u64,
}

impl SelectionRecord {
    /// Serialize for embedding in a run manifest.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "filters",
                Json::Arr(
                    self.filters.iter().map(|(a, v)| Json::from(format!("{a}={v}"))).collect(),
                ),
            ),
            (
                "sample",
                match self.sample {
                    None => Json::Null,
                    Some((count, seed)) => {
                        Json::obj([("count", Json::from(count)), ("seed", Json::from(seed))])
                    }
                },
            ),
            ("matched", Json::from(self.matched)),
        ])
    }

    /// Parse back from manifest JSON.
    pub fn from_json(json: &Json) -> Option<SelectionRecord> {
        let filters = json
            .get("filters")?
            .as_arr()?
            .iter()
            .map(|j| {
                let (a, v) = j.as_str()?.split_once('=')?;
                Some((a.to_string(), v.to_string()))
            })
            .collect::<Option<Vec<_>>>()?;
        let sample = match json.get("sample") {
            None | Some(Json::Null) => None,
            Some(s) => Some((s.get("count")?.as_u64()?, s.get("seed")?.as_u64()?)),
        };
        Some(SelectionRecord { filters, sample, matched: json.get("matched")?.as_u64()? })
    }
}

/// Where a search gets its candidates: either an eager, materialized
/// slice, or a lazy view that instantiates points on demand inside
/// the worker pool.
///
/// The contract that makes eager and lazy reports byte-identical:
/// `get(i)` must return the same candidate every time it is called
/// for a given `i`, and `label(i)` must equal `get(i).label`.
pub trait CandidateSource: Sync {
    /// Number of candidates (the search's `space_size`).
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label of candidate `index` without instantiating it.
    fn label(&self, index: usize) -> String;

    /// Candidate `index`: borrowed from an eager slice, or built on
    /// the calling (worker) thread for a lazy source.
    fn get(&self, index: usize) -> Cow<'_, Candidate>;
}

impl CandidateSource for [Candidate] {
    fn len(&self) -> usize {
        <[Candidate]>::len(self)
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

// `[Candidate]` is unsized, so it cannot itself coerce to a
// `&dyn CandidateSource`; these sized carriers are what call sites
// actually pass (`&candidates` for a `Vec`, `&slice` for a slice).
impl CandidateSource for &[Candidate] {
    fn len(&self) -> usize {
        <[Candidate]>::len(self)
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

impl CandidateSource for Vec<Candidate> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn label(&self, index: usize) -> String {
        self[index].label.clone()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Borrowed(&self[index])
    }
}

/// Point-to-candidate instantiation, as a capability a subspace search
/// can invoke on demand — for frontier leaves it is about to evaluate
/// and for the optimistic corners a lower bound probes.
///
/// The contract mirrors [`CandidateSource`]: `instantiate` must be
/// deterministic (the same point always yields the same candidate), and
/// the candidate's label must equal the point's `Display` form.
pub trait Instantiator: Sync {
    /// Build the candidate for a (fully bound) point.
    fn instantiate(&self, point: &Point) -> Candidate;

    /// Adjust an arbitrary grid assignment to one the generator can
    /// build. Bound probes evaluate per-axis-optimistic corners that
    /// may violate a space's structural constraints (e.g. an unroll
    /// factor that does not divide a trip count); an application whose
    /// generator rejects such tuples overrides this to snap the
    /// offending axes to the nearest buildable — and no more costly —
    /// setting. The default accepts every assignment unchanged.
    fn legalize(&self, space: &Space, values: &mut [Value]) {
        let _ = (space, values);
    }
}

/// A lazy [`CandidateSource`] over an explicit list of points — the
/// frontier leaves a branch-and-bound wave hands to the engine.
/// Candidates are instantiated on the calling (worker) thread.
pub struct PointBatch<'a> {
    points: Vec<Point>,
    inst: &'a dyn Instantiator,
}

impl<'a> PointBatch<'a> {
    /// Wrap a batch of points and their instantiator.
    pub fn new(points: Vec<Point>, inst: &'a dyn Instantiator) -> Self {
        PointBatch { points, inst }
    }

    /// The points in this batch, in submission order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

impl CandidateSource for PointBatch<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn label(&self, index: usize) -> String {
        self.points[index].to_string()
    }

    fn get(&self, index: usize) -> Cow<'_, Candidate> {
        Cow::Owned(self.inst.instantiate(&self.points[index]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_space() -> Space {
        Space::builder()
            .axis("tile", [8u32, 16])
            .axis("unroll", [1u32, 2, 4])
            .axis("prefetch", [false, true])
            .build()
    }

    #[test]
    fn enumeration_is_lexicographic_last_axis_fastest() {
        let s = toy_space();
        assert_eq!(s.grid_len(), 12);
        assert_eq!(s.len(), 12);
        let pts: Vec<Point> = s.points().collect();
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0].u32("tile"), 8);
        assert_eq!(pts[0].u32("unroll"), 1);
        assert!(!pts[0].flag("prefetch"));
        assert!(pts[1].flag("prefetch"));
        assert_eq!(pts[2].u32("unroll"), 2);
        assert_eq!(pts[6].u32("tile"), 16);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.ordinal(), i);
        }
    }

    #[test]
    fn grid_rank_round_trips_through_point_at_grid_rank() {
        let s = toy_space();
        // Every admitted point decodes back to itself from its ordinal
        // (which is dense here: no constraints, so ordinal == grid rank
        // only for the unconstrained space's probe ranks).
        for rank in 0..s.grid_len() {
            let p = s.point_at_grid_rank(rank).expect("in range");
            assert_eq!(p.ordinal(), rank);
            assert_eq!(s.probe_point(p.values().to_vec()).ordinal(), rank);
        }
        assert!(s.point_at_grid_rank(s.grid_len()).is_none());
    }

    #[test]
    fn partial_bindings_round_trip() {
        let s = toy_space();
        let part = s.partial().bind("unroll", Value::U32(4)).unwrap();
        let restored = s.partial_from_bindings(part.bindings()).expect("valid bindings");
        assert_eq!(restored.bindings(), part.bindings());
        assert_eq!(restored.first_grid_rank(), part.first_grid_rank());
        assert_eq!(restored.grid_count(), part.grid_count());
        // Length and domain mismatches are rejected, not panicked on.
        assert!(s.partial_from_bindings(&[None, None]).is_none());
        assert!(s.partial_from_bindings(&[Some(7), None, None]).is_none());
    }

    #[test]
    fn constraints_skip_tuples_without_reordering() {
        let s = Space::builder()
            .axis("a", [1u32, 2, 3])
            .axis("b", [1u32, 2, 3])
            .constraint("a divides b", |p| p.u32("b").is_multiple_of(p.u32("a")))
            .build();
        assert_eq!(s.grid_len(), 9);
        let got: Vec<(u32, u32)> = s.points().map(|p| (p.u32("a"), p.u32("b"))).collect();
        assert_eq!(got, vec![(1, 1), (1, 2), (1, 3), (2, 2), (3, 3)]);
        assert_eq!(s.len(), 5);
        // Ordinals number the *surviving* sequence densely.
        let ords: Vec<usize> = s.points().map(|p| p.ordinal()).collect();
        assert_eq!(ords, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn default_label_and_custom_label() {
        let s = toy_space();
        let p = s.points().next().unwrap();
        assert_eq!(p.to_string(), "tile=8/unroll=1/prefetch=false");

        let labelled = Space::builder()
            .axis("tile", [8u32])
            .label(|p| format!("{0}x{0}", p.u32("tile")))
            .build();
        let p = labelled.points().next().unwrap();
        assert_eq!(p.to_string(), "8x8");
    }

    #[test]
    fn filters_narrow_by_printed_value() {
        let s = toy_space();
        let sel = Selection { filters: vec![Filter::parse("tile=16").unwrap()], sample: None };
        let pts = sel.apply(&s).unwrap();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.u32("tile") == 16));
        // Enumeration order survives the narrowing.
        let ords: Vec<usize> = pts.iter().map(Point::ordinal).collect();
        let mut sorted = ords.clone();
        sorted.sort_unstable();
        assert_eq!(ords, sorted);

        let sel =
            Selection { filters: vec![Filter::parse("prefetch=true").unwrap()], sample: None };
        assert_eq!(sel.apply(&s).unwrap().len(), 6);
    }

    #[test]
    fn out_of_range_value_is_empty_unknown_axis_is_error() {
        let s = toy_space();
        let empty = Selection { filters: vec![Filter::parse("tile=17").unwrap()], sample: None };
        assert!(empty.apply(&s).unwrap().is_empty());

        let contradictory = Selection {
            filters: vec![Filter::parse("tile=8").unwrap(), Filter::parse("tile=16").unwrap()],
            sample: None,
        };
        assert!(contradictory.apply(&s).unwrap().is_empty());

        let typo = Selection { filters: vec![Filter::parse("tyle=16").unwrap()], sample: None };
        match typo.apply(&s) {
            Err(SelectionError::UnknownAxis { axis, available }) => {
                assert_eq!(axis, "tyle");
                assert_eq!(available, vec!["tile", "unroll", "prefetch"]);
            }
            other => panic!("expected UnknownAxis, got {other:?}"),
        }
        // The lenient variant ignores the typo'd clause entirely.
        assert_eq!(typo.apply_lenient(&s).len(), 12);
    }

    #[test]
    fn sampling_is_seeded_and_order_preserving() {
        let s = toy_space();
        let sel = |seed| Selection { filters: Vec::new(), sample: Some(Sample { count: 5, seed }) };
        let a = sel(7).apply(&s).unwrap();
        let b = sel(7).apply(&s).unwrap();
        assert_eq!(a, b, "same seed, same subset");
        assert_eq!(a.len(), 5);
        let ords: Vec<usize> = a.iter().map(Point::ordinal).collect();
        let mut sorted = ords.clone();
        sorted.sort_unstable();
        assert_eq!(ords, sorted, "sample preserves enumeration order");
        let c = sel(8).apply(&s).unwrap();
        assert_ne!(a, c, "different seed, different subset");

        // Oversized samples keep everything.
        let all = Selection { filters: Vec::new(), sample: Some(Sample { count: 99, seed: 0 }) };
        assert_eq!(all.apply(&s).unwrap().len(), 12);
    }

    #[test]
    fn bad_filter_syntax_is_rejected() {
        assert!(Filter::parse("tile").is_err());
        assert!(Filter::parse("=16").is_err());
        assert!(Filter::parse("tile=").is_err());
        assert_eq!(
            Filter::parse("tile=16").unwrap(),
            Filter { axis: "tile".into(), value: "16".into() }
        );
    }

    #[test]
    fn selection_record_round_trips_through_json() {
        let rec = SelectionRecord {
            filters: vec![("tile".into(), "16".into()), ("prefetch".into(), "true".into())],
            sample: Some((10, 42)),
            matched: 7,
        };
        let back = SelectionRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(rec, back);

        let plain = SelectionRecord { filters: Vec::new(), sample: None, matched: 96 };
        assert_eq!(SelectionRecord::from_json(&plain.to_json()).unwrap(), plain);
    }

    #[test]
    fn partial_bind_split_and_completions() {
        let s = toy_space();
        let root = s.partial();
        assert!(!root.is_complete());
        assert_eq!(root.unbound_len(), 3);
        assert_eq!(root.grid_count(), 12);
        assert_eq!(root.admitted_count(), 12);
        assert_eq!(root.first_grid_rank(), 0);
        assert_eq!(root.to_string(), "tile=*/unroll=*/prefetch=*");

        // Split binds the first unbound axis, children in value order.
        let children = root.split();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].value("tile"), Some(Value::U32(8)));
        assert_eq!(children[1].value("tile"), Some(Value::U32(16)));
        assert_eq!(children[1].first_grid_rank(), 6);
        assert_eq!(children[1].grid_count(), 6);

        // Completions enumerate in full-grid order with grid-rank
        // ordinals, restricted to the subspace.
        let ranks: Vec<usize> = children[1].completions().map(|p| p.ordinal()).collect();
        assert_eq!(ranks, vec![6, 7, 8, 9, 10, 11]);

        // bind() narrows by value; bad binds are None.
        let narrowed = root.bind("unroll", Value::U32(4)).unwrap();
        assert_eq!(narrowed.grid_count(), 4);
        assert!(root.bind("unroll", Value::U32(3)).is_none());
        assert!(root.bind("missing", Value::U32(1)).is_none());
        let rebound = narrowed.bind("unroll", Value::U32(4)).unwrap();
        assert_eq!(rebound.grid_count(), 4);
        assert!(narrowed.bind("unroll", Value::U32(2)).is_none());

        // Fully binding reaches the Point special case.
        let leaf = narrowed
            .bind("tile", Value::U32(16))
            .unwrap()
            .bind("prefetch", Value::Bool(true))
            .unwrap();
        assert!(leaf.is_complete());
        assert!(leaf.split().is_empty());
        let p = leaf.as_point().unwrap();
        assert_eq!(p.u32("tile"), 16);
        assert_eq!(p.u32("unroll"), 4);
        assert!(p.flag("prefetch"));
        assert_eq!(p.ordinal(), 11);
        // Round trip through the fully-bound view.
        assert_eq!(p.to_partial().as_point().unwrap(), p);
    }

    #[test]
    fn partial_completions_respect_constraints() {
        let s = Space::builder()
            .axis("a", [1u32, 2, 3])
            .axis("b", [1u32, 2, 3])
            .constraint("a divides b", |p| p.u32("b").is_multiple_of(p.u32("a")))
            .build();
        let sub = s.partial().bind("a", Value::U32(2)).unwrap();
        assert_eq!(sub.grid_count(), 3);
        assert_eq!(sub.admitted_count(), 1);
        let got: Vec<(u32, u32)> = sub.completions().map(|p| (p.u32("a"), p.u32("b"))).collect();
        assert_eq!(got, vec![(2, 2)]);
        // The root's completions are the space, with grid-rank
        // ordinals where points() renumbers densely.
        let grid_ranks: Vec<usize> = s.partial().completions().map(|p| p.ordinal()).collect();
        assert_eq!(grid_ranks, vec![0, 1, 2, 4, 8]);
        let dense: Vec<usize> = s.points().map(|p| p.ordinal()).collect();
        assert_eq!(dense, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn contains_admitted_rank_matches_completions() {
        let s = Space::builder()
            .axis("a", [1u32, 2, 3])
            .axis("b", [1u32, 2, 3])
            .constraint("a divides b", |p| p.u32("b").is_multiple_of(p.u32("a")))
            .build();
        let sub = s.partial().bind("a", Value::U32(2)).unwrap();
        let admitted: Vec<usize> = sub.completions().map(|p| p.ordinal()).collect();
        for rank in 0..s.grid_len() {
            assert_eq!(sub.contains_admitted_rank(rank), admitted.contains(&rank), "rank {rank}");
        }
        assert!(!sub.contains_admitted_rank(999));
    }

    #[test]
    fn corner_values_and_probe_points() {
        let s = toy_space();
        let sub = s.partial().bind("unroll", Value::U32(2)).unwrap();
        // Fill indices: tile -> 1 (16), prefetch -> 0 (false); the
        // bound axis keeps its value regardless of the fill.
        let corner = sub.corner_values(&[1, 9, 0]);
        assert_eq!(corner, vec![Value::U32(16), Value::U32(2), Value::Bool(false)]);
        let probe = s.probe_point(corner);
        assert_eq!(probe.u32("tile"), 16);
        assert_eq!(probe.u32("unroll"), 2);
        assert_eq!(probe.ordinal(), 8, "probe ordinal is the full-grid rank");
    }

    #[test]
    fn slice_source_borrows() {
        use crate::candidate::Candidate;
        use gpu_ir::build::KernelBuilder;
        use gpu_ir::{Dim, Launch};
        let k = KernelBuilder::new("noop").finish();
        let cands = vec![Candidate::new("only", k, Launch::new(Dim::new_1d(1), Dim::new_1d(1)))];
        let src: &dyn CandidateSource = &cands;
        assert_eq!(src.len(), 1);
        assert!(!src.is_empty());
        assert_eq!(src.label(0), "only");
        assert!(matches!(src.get(0), Cow::Borrowed(_)));
    }
}
