//! Search strategies over a configuration space.
//!
//! * [`ExhaustiveSearch`] — simulate every valid configuration; the
//!   paper's ground truth ("full exploration of the optimization space
//!   based on wall-clock performance").
//! * [`PrunedSearch`] — the paper's contribution: statically evaluate
//!   everything, optionally screen bandwidth-bound points (section 5.3),
//!   keep the Pareto-optimal subset of the metric plot, and simulate
//!   only those.
//! * [`RandomSearch`] — the baseline the paper's future work proposes
//!   comparing against: simulate a random sample of equal budget.
//!
//! A strategy is only a *selection policy*: it names itself, picks a
//! metric variant, and chooses which candidate indices deserve timing
//! simulation. Everything mechanical — static evaluation, memoized and
//! parallel simulation, invocation scaling, budget enforcement — lives
//! in the shared [`EvalEngine`], which [`SearchStrategy::run_with`]
//! drives. [`SearchStrategy::run`] is the same thing on a default
//! (single-worker, unlimited) engine and reproduces the historical
//! sequential behavior exactly.

use gpu_arch::MachineSpec;
use gpu_sim::timing::TimingReport;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::candidate::{Candidate, Evaluated};
use crate::engine::{EngineStats, EvalEngine, MetricsEval, Quarantine, SimulatorEval};
use crate::metrics::MetricsOptions;
use crate::obs::{EngineMetrics, EventKind, Json, RuntimeMetrics};
use crate::pareto::pareto_indices;
use crate::space::{CandidateSource, SelectionRecord};

pub use crate::engine::LAUNCH_OVERHEAD_MS;

/// Outcome of one search over a candidate space.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Strategy name for report rows.
    pub strategy: String,
    /// Total configurations in the space (valid or not).
    pub space_size: usize,
    /// Static evaluation per candidate; `None` marks the paper's
    /// "invalid executable" cases and candidates quarantined during
    /// static evaluation.
    pub statics: Vec<Option<Evaluated>>,
    /// Timing simulation per candidate; `None` when the strategy did not
    /// simulate that configuration or quarantined it during timing.
    pub simulated: Vec<Option<TimingReport>>,
    /// Index of the fastest simulated configuration.
    pub best: Option<usize>,
    /// Candidates removed from the search by evaluation failures, in
    /// candidate-index order — the degraded-mode section of the report.
    /// The search result covers the rest of the space; each entry
    /// records what failed and after how many attempts.
    pub quarantined: Vec<Quarantine>,
    /// What the evaluation engine did: parallelism, unique simulations,
    /// memo-cache hits, budget status, retries, quarantines.
    pub stats: EngineStats,
    /// Aggregated metrics snapshot derived from `stats`, with wall-clock
    /// runtime measurements attached when the engine carried an event
    /// sink.
    pub metrics: EngineMetrics,
    /// The declarative selection (`--filter`/`--sample`) this search ran
    /// under, when the caller narrowed the space before searching. The
    /// run manifest records it so a sharded sweep stays reconstructible.
    pub selection: Option<SelectionRecord>,
}

impl SearchReport {
    /// Number of valid (launchable) configurations.
    pub fn valid_count(&self) -> usize {
        self.statics.iter().flatten().count()
    }

    /// Number of configurations this strategy actually timed — the
    /// "Selected Configurations" column of Table 4.
    pub fn evaluated_count(&self) -> usize {
        self.simulated.iter().flatten().count()
    }

    /// Sum of simulated kernel times over the timed configurations — the
    /// "Evaluation Time" columns of Table 4 (time a developer would
    /// spend running them on hardware).
    pub fn evaluation_time_ms(&self) -> f64 {
        // fold, not sum: an empty f64 sum is -0.0, which would print as
        // "-0.0 us" for an empty selection.
        self.simulated.iter().flatten().map(|t| t.time_ms).fold(0.0, |a, b| a + b)
    }

    /// Best (minimum) simulated time.
    pub fn best_time_ms(&self) -> Option<f64> {
        self.best.and_then(|i| self.simulated[i].as_ref()).map(|t| t.time_ms)
    }

    /// Fraction of the valid space this strategy did *not* have to time —
    /// the "Space Reduction" column of Table 4.
    pub fn space_reduction(&self) -> f64 {
        let valid = self.valid_count();
        if valid == 0 {
            return 0.0;
        }
        1.0 - self.evaluated_count() as f64 / valid as f64
    }

    /// Number of candidates quarantined by evaluation failures.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Fraction of the space with a definitive outcome (a result or a
    /// deliberate non-selection), i.e. everything except quarantined
    /// candidates. `1.0` means the search saw the whole space.
    pub fn coverage(&self) -> f64 {
        if self.space_size == 0 {
            return 1.0;
        }
        1.0 - self.quarantined.len() as f64 / self.space_size as f64
    }

    fn pick_best(&mut self) {
        self.best = self
            .simulated
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t.time_ms)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
    }
}

/// A search strategy: a selection policy executed by the shared
/// [`EvalEngine`].
pub trait SearchStrategy {
    /// Strategy name for report rows.
    fn name(&self) -> String;

    /// Metric variant used for static evaluation.
    fn metrics_options(&self) -> MetricsOptions {
        MetricsOptions::default()
    }

    /// Choose which candidate indices to timing-simulate, given the
    /// static evaluations. Returned indices must refer to valid
    /// (`Some`) entries of `statics`.
    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize>;

    /// Run on a default engine: one worker, no budget — the reference
    /// sequential path.
    fn run(&self, candidates: &[Candidate], spec: &MachineSpec) -> SearchReport {
        self.run_with(&EvalEngine::default(), candidates, spec)
    }

    /// Run on an explicit engine over an eager, materialized slice.
    fn run_with(
        &self,
        engine: &EvalEngine,
        candidates: &[Candidate],
        spec: &MachineSpec,
    ) -> SearchReport {
        self.run_source(engine, &candidates, spec)
    }

    /// Run on an explicit engine over any [`CandidateSource`] — an eager
    /// slice or a lazy point view instantiating candidates inside the
    /// worker pool. This is the single simulate loop in the crate:
    /// statics → select → memoized/parallel simulation. Reports are
    /// byte-identical between eager and lazy sources of the same space.
    fn run_source(
        &self,
        engine: &EvalEngine,
        source: &dyn CandidateSource,
        spec: &MachineSpec,
    ) -> SearchReport {
        engine.emit(
            EventKind::Begin,
            "search",
            vec![("strategy", Json::from(self.name())), ("space", Json::from(source.len()))],
        );
        let mut stats = engine.stats_seed();
        let mut quarantined: Vec<Quarantine> = Vec::new();
        let statics = engine.evaluate_statics(
            &MetricsEval {
                options: self.metrics_options(),
                verify: false,
                check_races: engine.config.check_races,
            },
            source,
            spec,
            &mut stats,
            &mut quarantined,
        );
        let selected = self.select(&statics);
        let simulated = engine.simulate_selected(
            &SimulatorEval::with_fuel(engine.config.sim_fuel),
            source,
            &statics,
            &selected,
            spec,
            &mut stats,
            &mut quarantined,
        );
        // Static- and timing-phase entries each arrive in index order;
        // merge them into one index-ordered section.
        quarantined.sort_by_key(|q| q.candidate);
        let mut report = SearchReport {
            strategy: self.name(),
            space_size: source.len(),
            statics,
            simulated,
            best: None,
            quarantined,
            stats,
            metrics: EngineMetrics::default(),
            selection: None,
        };
        report.pick_best();
        report.metrics = EngineMetrics::from_stats(&report.stats);
        if let Some(sink) = engine.sink() {
            report.metrics = report.metrics.with_runtime(RuntimeMetrics::from_counters(
                sink.runtime_counters(),
                report.stats.jobs,
            ));
        }
        engine.emit(EventKind::Counter, "engine.metrics", report.metrics.deterministic_fields());
        engine.emit(
            EventKind::End,
            "search",
            vec![
                ("best", Json::from(report.best)),
                ("best_time_ms", Json::from(report.best_time_ms())),
                ("timed", Json::from(report.evaluated_count())),
            ],
        );
        report
    }
}

/// All valid candidate indices, in order.
fn valid_indices(statics: &[Option<Evaluated>]) -> Vec<usize> {
    statics.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect()
}

/// Simulate every valid configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl SearchStrategy for ExhaustiveSearch {
    fn name(&self) -> String {
        "exhaustive".into()
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        valid_indices(statics)
    }
}

/// The paper's Pareto-pruned search.
#[derive(Debug, Clone, Copy)]
pub struct PrunedSearch {
    /// Screen bandwidth-bound configurations before building the curve
    /// (section 5.3). Disabling this is the `ablation_bandwidth`
    /// experiment.
    pub screen_bandwidth: bool,
    /// Metric variant.
    pub options: MetricsOptions,
    /// Cluster resolution (section 5.2): when set, normalized metrics
    /// are rounded to this grid before the Pareto step, so
    /// configurations with "identical or nearly identical metrics" —
    /// the Figure 6(b) clusters — survive dominance *together*, as they
    /// do in the paper's selected sets.
    pub metric_resolution: Option<f64>,
    /// With clustering active, simulate only one representative per
    /// cluster ("it may be sufficient to randomly select a single
    /// configuration from that cluster", section 5.2).
    pub cluster_sample: bool,
}

impl Default for PrunedSearch {
    fn default() -> Self {
        Self {
            screen_bandwidth: true,
            options: MetricsOptions::default(),
            metric_resolution: None,
            cluster_sample: false,
        }
    }
}

impl SearchStrategy for PrunedSearch {
    fn name(&self) -> String {
        "pareto-pruned".into()
    }

    fn metrics_options(&self) -> MetricsOptions {
        self.options
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        // Candidates entering the plot: valid, and (optionally) not
        // bandwidth-bound. If the screen removes everything (a fully
        // bandwidth-bound space), fall back to the unscreened plot.
        // Carry the evaluation alongside its index so "eligible" cannot
        // drift out of sync with "valid" — no unwrap needed downstream.
        let eligible: Vec<(usize, &Evaluated)> = {
            let valid: Vec<(usize, &Evaluated)> =
                statics.iter().enumerate().filter_map(|(i, e)| Some((i, e.as_ref()?))).collect();
            let screened: Vec<(usize, &Evaluated)> = valid
                .iter()
                .copied()
                .filter(|(_, e)| !self.screen_bandwidth || !e.bandwidth.is_bandwidth_bound())
                .collect();
            if screened.is_empty() {
                valid
            } else {
                screened
            }
        };
        let mut points: Vec<crate::pareto::Point> =
            eligible.iter().map(|(_, e)| e.metrics.point()).collect();
        if let Some(res) = self.metric_resolution {
            // Normalise per axis, then snap to the resolution grid.
            let mx = points.iter().map(|p| p.x).fold(0.0f64, f64::max);
            let my = points.iter().map(|p| p.y).fold(0.0f64, f64::max);
            for p in &mut points {
                if mx > 0.0 {
                    p.x = (p.x / mx / res).round() * res;
                }
                if my > 0.0 {
                    p.y = (p.y / my / res).round() * res;
                }
            }
        }
        let mut selected: Vec<usize> = pareto_indices(&points);

        if self.cluster_sample && self.metric_resolution.is_some() {
            // One representative per rounded coordinate (the first in
            // enumeration order — deterministic).
            let mut seen: Vec<(u64, u64)> = Vec::new();
            selected.retain(|&k| {
                let key = (points[k].x.to_bits(), points[k].y.to_bits());
                if seen.contains(&key) {
                    false
                } else {
                    seen.push(key);
                    true
                }
            });
        }
        selected.into_iter().map(|k| eligible[k].0).collect()
    }
}

/// Random sampling of the valid space with a fixed budget.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// How many configurations to simulate.
    pub budget: usize,
    /// RNG seed (deterministic experiments).
    pub seed: u64,
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> String {
        format!("random-{}", self.budget)
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut picks = valid_indices(statics);
        picks.shuffle(&mut rng);
        picks.truncate(self.budget);
        picks
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel, Launch};

    /// A small synthetic space: a compute loop whose per-thread work and
    /// register appetite vary with a "tiling" knob, so configurations
    /// genuinely trade efficiency against utilization.
    pub(super) fn synthetic_space_for_debug() -> Vec<Candidate> {
        synthetic_space()
    }
    fn synthetic_space() -> Vec<Candidate> {
        fn kernel(tile: u32, pad_regs: u32) -> Kernel {
            let mut b = KernelBuilder::new(format!("syn{tile}"));
            let p = b.param(0);
            // pad_regs long-lived values inflate register pressure.
            let pads: Vec<_> = (0..pad_regs).map(|i| b.mov(i as f32)).collect();
            let acc = b.mov(0.0f32);
            b.repeat(64 / tile, |b| {
                let x = b.ld_global(p, 0);
                for _ in 0..tile {
                    b.fmad_acc(x, 1.0f32, acc);
                }
                b.sync();
            });
            for pad in pads {
                b.fmad_acc(pad, 0.0f32, acc);
            }
            b.st_global(p, 0, acc);
            b.finish()
        }
        let mut out = Vec::new();
        for tile in [1u32, 2, 4, 8] {
            for pad in [0u32, 8, 20] {
                let total = 1u32 << 14;
                let tpb = 256;
                out.push(Candidate::new(
                    format!("tile={tile}/pad={pad}"),
                    kernel(tile, pad),
                    Launch::new(Dim::new_1d(total / tpb), Dim::new_1d(tpb)),
                ));
            }
        }
        // One deliberately invalid configuration: huge register demand
        // at 512 threads.
        out.push(Candidate::new(
            "invalid",
            kernel(1, 40),
            Launch::new(Dim::new_1d(32), Dim::new_1d(512)),
        ));
        out
    }

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    #[test]
    fn exhaustive_times_every_valid_config() {
        let space = synthetic_space();
        let r = ExhaustiveSearch.run(&space, &g80());
        assert_eq!(r.space_size, 13);
        assert_eq!(r.valid_count(), 12);
        assert_eq!(r.evaluated_count(), 12);
        assert!(r.best.is_some());
        assert_eq!(r.space_reduction(), 0.0);
        assert_eq!(r.stats.static_evals, 13);
        assert_eq!(r.stats.timed, 12);
    }

    #[test]
    fn pruned_search_times_a_subset_and_finds_the_optimum() {
        let space = synthetic_space();
        let exhaustive = ExhaustiveSearch.run(&space, &g80());
        let pruned = PrunedSearch::default().run(&space, &g80());
        assert!(pruned.evaluated_count() < exhaustive.evaluated_count());
        assert!(pruned.space_reduction() > 0.0);
        // The pruned search must land on the same optimum (the paper's
        // central claim, here on the synthetic space).
        let best_ex = exhaustive.best_time_ms().unwrap();
        let best_pr = pruned.best_time_ms().unwrap();
        assert!(
            (best_pr / best_ex - 1.0).abs() < 1e-9,
            "pruned best {best_pr} != exhaustive best {best_ex}"
        );
    }

    #[test]
    fn random_search_respects_budget_and_determinism() {
        let space = synthetic_space();
        let a = RandomSearch { budget: 5, seed: 42 }.run(&space, &g80());
        let b = RandomSearch { budget: 5, seed: 42 }.run(&space, &g80());
        assert_eq!(a.evaluated_count(), 5);
        assert_eq!(a.best, b.best);
        let c = RandomSearch { budget: 100, seed: 7 }.run(&space, &g80());
        assert_eq!(c.evaluated_count(), 12); // clamped to valid space
    }

    #[test]
    fn evaluation_time_sums_selected_only() {
        let space = synthetic_space();
        let pruned = PrunedSearch::default().run(&space, &g80());
        let exhaustive = ExhaustiveSearch.run(&space, &g80());
        assert!(pruned.evaluation_time_ms() < exhaustive.evaluation_time_ms());
        assert!(pruned.evaluation_time_ms() > 0.0);
    }

    #[test]
    fn invalid_configurations_are_never_simulated() {
        let space = synthetic_space();
        let r = ExhaustiveSearch.run(&space, &g80());
        assert!(r.statics[12].is_none());
        assert!(r.simulated[12].is_none());
    }

    /// The engine path with >1 worker must reproduce the sequential
    /// report field-for-field on every strategy.
    #[test]
    fn parallel_engine_reproduces_sequential_reports() {
        let space = synthetic_space();
        let spec = g80();
        let engine = EvalEngine::with_jobs(4);
        for strategy in [
            &ExhaustiveSearch as &dyn SearchStrategy,
            &PrunedSearch::default(),
            &RandomSearch { budget: 5, seed: 42 },
        ] {
            let seq = strategy.run(&space, &spec);
            let par = strategy.run_with(&engine, &space, &spec);
            assert_eq!(seq.best, par.best, "{}", seq.strategy);
            assert_eq!(seq.simulated, par.simulated, "{}", seq.strategy);
            assert_eq!(par.stats.jobs, 4);
            assert_eq!(seq.stats.unique_sims, par.stats.unique_sims);
        }
    }
}

#[cfg(test)]
mod debug_dump {
    use super::tests::synthetic_space_for_debug;
    use super::*;
    use crate::obs::{EventSink, Scope};
    use std::sync::Arc;

    /// Dump the synthetic space through the event sink instead of ad-hoc
    /// `println!` formatting: one structured `debug.candidate` event per
    /// configuration, printed as the same JSONL the `--trace-out` flag
    /// writes. Run with `cargo test -p optspace dump -- --ignored
    /// --nocapture`.
    #[test]
    #[ignore]
    fn dump() {
        let space = synthetic_space_for_debug();
        let spec = MachineSpec::geforce_8800_gtx();
        let sink = Arc::new(EventSink::new());
        let engine = EvalEngine::with_jobs(1).with_sink(Arc::clone(&sink));
        let ex = ExhaustiveSearch.run_with(&engine, &space, &spec);
        for (i, c) in space.iter().enumerate() {
            let s = ex.statics[i].as_ref();
            let t = ex.simulated[i].as_ref();
            sink.search(
                EventKind::Point,
                "debug.candidate",
                vec![
                    ("label", Json::from(c.label.as_str())),
                    ("efficiency", Json::from(s.map(|e| e.metrics.efficiency))),
                    ("utilization", Json::from(s.map(|e| e.metrics.utilization))),
                    ("bandwidth_pressure", Json::from(s.map(|e| e.bandwidth.pressure()))),
                    ("bandwidth_bound", Json::from(s.map(|e| e.bandwidth.is_bandwidth_bound()))),
                    ("regs", Json::from(s.map(|e| e.kernel_profile.usage.regs_per_thread))),
                    (
                        "blocks_per_sm",
                        Json::from(s.map(|e| e.kernel_profile.occupancy.blocks_per_sm)),
                    ),
                    ("time_ms", Json::from(t.map(|t| t.time_ms))),
                ],
            );
        }
        let trace = sink.drain();
        for event in &trace.events {
            if event.scope == Scope::Search && event.name == "debug.candidate" {
                println!("{}", event.canonical_line());
            }
        }
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel, Launch};

    /// A space with deliberate clusters: the `inv` knob splits work
    /// across invocations (metrics near-identical within a cluster), the
    /// `work` knob changes efficiency between clusters.
    fn clustered_space() -> Vec<Candidate> {
        fn kernel(work: u32, trips: u32) -> Kernel {
            let mut b = KernelBuilder::new("c");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(trips, |b| {
                let x = b.ld_global(p, 0);
                for _ in 0..work {
                    b.fmad_acc(x, 1.0f32, acc);
                }
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        let mut out = Vec::new();
        for work in [1u32, 2, 4] {
            for inv in [1u32, 2, 4, 8] {
                let total_trips = 64;
                out.push(
                    Candidate::new(
                        format!("w{work}/inv{inv}"),
                        kernel(work, total_trips / inv),
                        Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
                    )
                    .with_invocations(inv),
                );
            }
        }
        out
    }

    #[test]
    fn clustering_retains_whole_clusters_and_sampling_thins_them() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = clustered_space();

        let exact = PrunedSearch::default().run(&space, &spec);
        let clustered =
            PrunedSearch { metric_resolution: Some(0.02), ..Default::default() }.run(&space, &spec);
        let sampled = PrunedSearch {
            metric_resolution: Some(0.02),
            cluster_sample: true,
            ..Default::default()
        }
        .run(&space, &spec);

        // Clustering keeps more configurations than exact dominance
        // (the near-identical invocation variants survive together)...
        assert!(
            clustered.evaluated_count() > exact.evaluated_count(),
            "clustered {} !> exact {}",
            clustered.evaluated_count(),
            exact.evaluated_count()
        );
        // ...and sampling collapses each cluster to one representative.
        assert!(sampled.evaluated_count() < clustered.evaluated_count());

        // The sampled search must land within the cluster's small
        // spread of the true optimum.
        let truth = ExhaustiveSearch.run(&space, &spec).best_time_ms().unwrap();
        let got = sampled.best_time_ms().unwrap();
        assert!(got / truth < 1.10, "sampled best {got} more than 10% off optimum {truth}");

        // The invocation clusters are exactly what the memo cache
        // collapses: the exhaustive run times 12 configurations out of
        // only 3 unique simulations (work variants), families included.
        let ex = ExhaustiveSearch.run(&space, &spec);
        assert_eq!(ex.stats.timed, 12);
        assert_eq!(ex.stats.unique_sims, 3);
        assert_eq!(ex.stats.cache_hits, 9);
    }
}
