//! Search strategies over a configuration space.
//!
//! * [`ExhaustiveSearch`] — simulate every valid configuration; the
//!   paper's ground truth ("full exploration of the optimization space
//!   based on wall-clock performance").
//! * [`PrunedSearch`] — the paper's contribution: statically evaluate
//!   everything, optionally screen bandwidth-bound points (section 5.3),
//!   keep the Pareto-optimal subset of the metric plot, and simulate
//!   only those.
//! * [`RandomSearch`] — the baseline the paper's future work proposes
//!   comparing against: simulate a random sample of equal budget.
//!
//! A strategy is only a *selection policy*: it names itself, picks a
//! metric variant, and chooses which candidate indices deserve timing
//! simulation. Everything mechanical — static evaluation, memoized and
//! parallel simulation, invocation scaling, budget enforcement — lives
//! in the shared [`EvalEngine`], which [`SearchStrategy::run_with`]
//! drives. [`SearchStrategy::run`] is the same thing on a default
//! (single-worker, unlimited) engine and reproduces the historical
//! sequential behavior exactly.
//!
//! Strategies that need timing *feedback* — hill climbing, annealing,
//! genetic, surrogate search (the zoo in [`crate::zoo`]) — cannot be
//! one-shot `select()` policies. They implement [`IterativeStrategy`]
//! instead: batches of proposals alternating with observed results,
//! executed by [`run_iterative`] over the engine's round-based driver
//! ([`EvalEngine::drive_iterative`]). Determinism contract: a
//! strategy's randomness per round must be a pure function of
//! `(strategy seed, round)`, so reports, canonical traces, and
//! convergence curves are byte-identical at any `--jobs`.

use std::collections::{BinaryHeap, HashMap};

use gpu_arch::MachineSpec;
use gpu_sim::timing::TimingReport;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::candidate::{Candidate, Evaluated};
use crate::engine::{
    EngineStats, EvalEngine, FrontierSnapshot, MetricsEval, Quarantine, SearchState, SimulatorEval,
};
use crate::metrics::MetricsOptions;
use crate::model::{LowerBound, ProbeBound};
use crate::obs::{EngineMetrics, EventKind, Json, RuntimeMetrics};
use crate::pareto::pareto_indices;
use crate::space::{CandidateSource, Instantiator, PointBatch, SelectionRecord, Space};

pub use crate::engine::LAUNCH_OVERHEAD_MS;
pub use crate::engine::{Observation, Proposer};

/// Outcome of one search over a candidate space.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Strategy name for report rows.
    pub strategy: String,
    /// Total configurations in the space (valid or not).
    pub space_size: usize,
    /// Static evaluation per candidate; `None` marks the paper's
    /// "invalid executable" cases and candidates quarantined during
    /// static evaluation.
    pub statics: Vec<Option<Evaluated>>,
    /// Timing simulation per candidate; `None` when the strategy did not
    /// simulate that configuration or quarantined it during timing.
    pub simulated: Vec<Option<TimingReport>>,
    /// Index of the fastest simulated configuration.
    pub best: Option<usize>,
    /// Candidates removed from the search by evaluation failures, in
    /// candidate-index order — the degraded-mode section of the report.
    /// The search result covers the rest of the space; each entry
    /// records what failed and after how many attempts.
    pub quarantined: Vec<Quarantine>,
    /// What the evaluation engine did: parallelism, unique simulations,
    /// memo-cache hits, budget status, retries, quarantines.
    pub stats: EngineStats,
    /// Aggregated metrics snapshot derived from `stats`, with wall-clock
    /// runtime measurements attached when the engine carried an event
    /// sink.
    pub metrics: EngineMetrics,
    /// The declarative selection (`--filter`/`--sample`) this search ran
    /// under, when the caller narrowed the space before searching. The
    /// run manifest records it so a sharded sweep stays reconstructible.
    pub selection: Option<SelectionRecord>,
}

impl SearchReport {
    /// Number of valid (launchable) configurations.
    pub fn valid_count(&self) -> usize {
        self.statics.iter().flatten().count()
    }

    /// Number of configurations this strategy actually timed — the
    /// "Selected Configurations" column of Table 4.
    pub fn evaluated_count(&self) -> usize {
        self.simulated.iter().flatten().count()
    }

    /// Sum of simulated kernel times over the timed configurations — the
    /// "Evaluation Time" columns of Table 4 (time a developer would
    /// spend running them on hardware).
    pub fn evaluation_time_ms(&self) -> f64 {
        // fold, not sum: an empty f64 sum is -0.0, which would print as
        // "-0.0 us" for an empty selection.
        self.simulated.iter().flatten().map(|t| t.time_ms).fold(0.0, |a, b| a + b)
    }

    /// Best (minimum) simulated time.
    pub fn best_time_ms(&self) -> Option<f64> {
        self.best.and_then(|i| self.simulated[i].as_ref()).map(|t| t.time_ms)
    }

    /// Fraction of the valid space this strategy did *not* have to time —
    /// the "Space Reduction" column of Table 4.
    pub fn space_reduction(&self) -> f64 {
        let valid = self.valid_count();
        if valid == 0 {
            return 0.0;
        }
        1.0 - self.evaluated_count() as f64 / valid as f64
    }

    /// Number of candidates quarantined by evaluation failures.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Fraction of the space with a definitive outcome (a result or a
    /// deliberate non-selection), i.e. everything except quarantined
    /// candidates. `1.0` means the search saw the whole space.
    pub fn coverage(&self) -> f64 {
        if self.space_size == 0 {
            return 1.0;
        }
        1.0 - self.quarantined.len() as f64 / self.space_size as f64
    }

    fn pick_best(&mut self) {
        self.best = self
            .simulated
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t.time_ms)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
    }
}

/// A search strategy: a selection policy executed by the shared
/// [`EvalEngine`].
pub trait SearchStrategy {
    /// Strategy name for report rows.
    fn name(&self) -> String;

    /// Metric variant used for static evaluation.
    fn metrics_options(&self) -> MetricsOptions {
        MetricsOptions::default()
    }

    /// Choose which candidate indices to timing-simulate, given the
    /// static evaluations. Returned indices must refer to valid
    /// (`Some`) entries of `statics`.
    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize>;

    /// Run on a default engine: one worker, no budget — the reference
    /// sequential path.
    fn run(&self, candidates: &[Candidate], spec: &MachineSpec) -> SearchReport {
        self.run_with(&EvalEngine::default(), candidates, spec)
    }

    /// Run on an explicit engine over an eager, materialized slice.
    fn run_with(
        &self,
        engine: &EvalEngine,
        candidates: &[Candidate],
        spec: &MachineSpec,
    ) -> SearchReport {
        self.run_source(engine, &candidates, spec)
    }

    /// Run on an explicit engine over any [`CandidateSource`] — an eager
    /// slice or a lazy point view instantiating candidates inside the
    /// worker pool. This is the single simulate loop in the crate:
    /// statics → select → memoized/parallel simulation. Reports are
    /// byte-identical between eager and lazy sources of the same space.
    fn run_source(
        &self,
        engine: &EvalEngine,
        source: &dyn CandidateSource,
        spec: &MachineSpec,
    ) -> SearchReport {
        engine.emit(
            EventKind::Begin,
            "search",
            vec![("strategy", Json::from(self.name())), ("space", Json::from(source.len()))],
        );
        engine.convergence().reset();
        let mut stats = engine.stats_seed();
        let mut quarantined: Vec<Quarantine> = Vec::new();
        let statics = engine.evaluate_statics(
            &MetricsEval {
                options: self.metrics_options(),
                verify: false,
                check_races: engine.config.check_races,
            },
            source,
            spec,
            &mut stats,
            &mut quarantined,
        );
        let selected = self.select(&statics);
        let simulated = engine.simulate_selected(
            &SimulatorEval::from_config(&engine.config),
            source,
            &statics,
            &selected,
            spec,
            &mut stats,
            &mut quarantined,
        );
        finish_report(engine, self.name(), source.len(), statics, simulated, quarantined, stats)
    }
}

/// Close out a search: sort the quarantine section, pick the best
/// result, finish the convergence curve, attach metrics, and emit the
/// closing trace events. Shared by every search runner so the report
/// shape and trace structure cannot drift between strategies.
fn finish_report(
    engine: &EvalEngine,
    strategy: String,
    space_size: usize,
    statics: Vec<Option<Evaluated>>,
    simulated: Vec<Option<TimingReport>>,
    mut quarantined: Vec<Quarantine>,
    stats: EngineStats,
) -> SearchReport {
    // Static- and timing-phase entries each arrive in index order;
    // merge them into one index-ordered section.
    quarantined.sort_by_key(|q| q.candidate);
    let mut report = SearchReport {
        strategy,
        space_size,
        statics,
        simulated,
        best: None,
        quarantined,
        stats,
        metrics: EngineMetrics::default(),
        selection: None,
    };
    report.pick_best();
    engine.convergence().finish(report.stats.bound_pruned_points as u64);
    report.metrics =
        EngineMetrics::from_stats(&report.stats).with_convergence(engine.convergence().curve());
    if let Some(sink) = engine.sink() {
        report.metrics = report.metrics.clone().with_runtime(RuntimeMetrics::from_counters(
            sink.runtime_counters(),
            report.stats.jobs,
        ));
    }
    engine.emit(EventKind::Counter, "engine.metrics", report.metrics.deterministic_fields());
    engine.emit(
        EventKind::End,
        "search",
        vec![
            ("best", Json::from(report.best)),
            ("best_time_ms", Json::from(report.best_time_ms())),
            ("timed", Json::from(report.evaluated_count())),
        ],
    );
    report
}

/// What an iterative strategy sees before its first proposal: the
/// statically evaluated space it is about to search.
pub struct IterationContext<'a> {
    /// Static evaluation per candidate in dense enumeration order;
    /// `None` marks invalid candidates (the driver never dispatches
    /// them, so strategies should not waste proposals there).
    pub statics: &'a [Option<Evaluated>],
    /// The candidate source under search.
    pub source: &'a dyn CandidateSource,
    /// Machine model.
    pub spec: &'a MachineSpec,
}

/// A feedback-driven search strategy: batches of candidate proposals
/// alternating with observed timing results, the protocol one-shot
/// [`SearchStrategy::select`] cannot express.
///
/// Contract (enforced in part by [`EvalEngine::drive_iterative`]):
///
/// * **Per-round seeding** — any randomness inside `propose` must be a
///   pure function of `(strategy seed, round index)`, never of wall
///   clock or iteration timing, so runs are byte-identical at any
///   worker count.
/// * **No re-proposals** — every observation is final. A failed
///   (quarantined) candidate is observed with `time_ms: None` exactly
///   once and must be written off; the driver silently drops any index
///   that already has a verdict.
/// * **Termination** — an empty batch ends the search. Budgeted
///   strategies stop proposing once their budget is spent; the engine
///   additionally cuts the loop when its own sim/deadline budget trips.
pub trait IterativeStrategy {
    /// Strategy name for report rows. Seeded strategies include their
    /// seed (`hill-64-s7`) so two runs differing only in seed stay
    /// distinguishable in manifests and BENCH keys.
    fn name(&self) -> String;

    /// Metric variant used for static evaluation.
    fn metrics_options(&self) -> MetricsOptions {
        MetricsOptions::default()
    }

    /// Called once per search, before the first `propose`.
    fn begin(&mut self, ctx: &IterationContext);

    /// Next batch of candidate indices given the previous batch's
    /// decided outcomes (empty slice on the first call).
    fn propose(&mut self, observed: &[Observation]) -> Vec<usize>;
}

/// Run an iterative strategy end to end on an engine: statics, then
/// proposal rounds through [`EvalEngine::drive_iterative`], then the
/// standard report. The search loop mirrors
/// [`SearchStrategy::run_source`] exactly, so iterative reports carry
/// the same convergence curves, metrics, and trace structure as
/// one-shot ones.
///
/// Checkpointing is not supported for iterative strategies (their
/// internal state is not snapshotted); callers must reject
/// `--checkpoint`/`--resume` before getting here.
pub fn run_iterative(
    strategy: &mut dyn IterativeStrategy,
    engine: &EvalEngine,
    source: &dyn CandidateSource,
    spec: &MachineSpec,
) -> SearchReport {
    engine.emit(
        EventKind::Begin,
        "search",
        vec![("strategy", Json::from(strategy.name())), ("space", Json::from(source.len()))],
    );
    engine.convergence().reset();
    let mut stats = engine.stats_seed();
    let mut quarantined: Vec<Quarantine> = Vec::new();
    let statics = engine.evaluate_statics(
        &MetricsEval {
            options: strategy.metrics_options(),
            verify: false,
            check_races: engine.config.check_races,
        },
        source,
        spec,
        &mut stats,
        &mut quarantined,
    );
    strategy.begin(&IterationContext { statics: &statics, source, spec });
    struct Adapter<'a>(&'a mut dyn IterativeStrategy);
    impl Proposer for Adapter<'_> {
        fn propose(&mut self, observed: &[Observation]) -> Vec<usize> {
            self.0.propose(observed)
        }
    }
    let simulated = engine.drive_iterative(
        &SimulatorEval::from_config(&engine.config),
        source,
        &statics,
        &mut Adapter(strategy),
        spec,
        &mut stats,
        &mut quarantined,
    );
    finish_report(engine, strategy.name(), source.len(), statics, simulated, quarantined, stats)
}

/// All valid candidate indices, in order.
fn valid_indices(statics: &[Option<Evaluated>]) -> Vec<usize> {
    statics.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect()
}

/// Simulate every valid configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl SearchStrategy for ExhaustiveSearch {
    fn name(&self) -> String {
        "exhaustive".into()
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        valid_indices(statics)
    }
}

/// The paper's Pareto-pruned search.
#[derive(Debug, Clone, Copy)]
pub struct PrunedSearch {
    /// Screen bandwidth-bound configurations before building the curve
    /// (section 5.3). Disabling this is the `ablation_bandwidth`
    /// experiment.
    pub screen_bandwidth: bool,
    /// Metric variant.
    pub options: MetricsOptions,
    /// Cluster resolution (section 5.2): when set, normalized metrics
    /// are rounded to this grid before the Pareto step, so
    /// configurations with "identical or nearly identical metrics" —
    /// the Figure 6(b) clusters — survive dominance *together*, as they
    /// do in the paper's selected sets.
    pub metric_resolution: Option<f64>,
    /// With clustering active, simulate only one representative per
    /// cluster ("it may be sufficient to randomly select a single
    /// configuration from that cluster", section 5.2).
    pub cluster_sample: bool,
}

impl Default for PrunedSearch {
    fn default() -> Self {
        Self {
            screen_bandwidth: true,
            options: MetricsOptions::default(),
            metric_resolution: None,
            cluster_sample: false,
        }
    }
}

impl SearchStrategy for PrunedSearch {
    fn name(&self) -> String {
        "pareto-pruned".into()
    }

    fn metrics_options(&self) -> MetricsOptions {
        self.options
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        // Candidates entering the plot: valid, and (optionally) not
        // bandwidth-bound. If the screen removes everything (a fully
        // bandwidth-bound space), fall back to the unscreened plot.
        // Carry the evaluation alongside its index so "eligible" cannot
        // drift out of sync with "valid" — no unwrap needed downstream.
        let eligible: Vec<(usize, &Evaluated)> = {
            let valid: Vec<(usize, &Evaluated)> =
                statics.iter().enumerate().filter_map(|(i, e)| Some((i, e.as_ref()?))).collect();
            let screened: Vec<(usize, &Evaluated)> = valid
                .iter()
                .copied()
                .filter(|(_, e)| !self.screen_bandwidth || !e.bandwidth.is_bandwidth_bound())
                .collect();
            if screened.is_empty() {
                valid
            } else {
                screened
            }
        };
        let mut points: Vec<crate::pareto::Point> =
            eligible.iter().map(|(_, e)| e.metrics.point()).collect();
        if let Some(res) = self.metric_resolution {
            // Normalise per axis, then snap to the resolution grid.
            let mx = points.iter().map(|p| p.x).fold(0.0f64, f64::max);
            let my = points.iter().map(|p| p.y).fold(0.0f64, f64::max);
            for p in &mut points {
                if mx > 0.0 {
                    p.x = (p.x / mx / res).round() * res;
                }
                if my > 0.0 {
                    p.y = (p.y / my / res).round() * res;
                }
            }
        }
        let mut selected: Vec<usize> = pareto_indices(&points);

        if self.cluster_sample && self.metric_resolution.is_some() {
            // One representative per rounded coordinate (the first in
            // enumeration order — deterministic).
            let mut seen: Vec<(u64, u64)> = Vec::new();
            selected.retain(|&k| {
                let key = (points[k].x.to_bits(), points[k].y.to_bits());
                if seen.contains(&key) {
                    false
                } else {
                    seen.push(key);
                    true
                }
            });
        }
        selected.into_iter().map(|k| eligible[k].0).collect()
    }
}

/// Random sampling of the valid space with a fixed budget.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// How many configurations to simulate.
    pub budget: usize,
    /// RNG seed (deterministic experiments).
    pub seed: u64,
}

impl RandomSearch {
    /// Validated constructor — the canonical entry point for CLI and
    /// bench wiring. A zero budget selects nothing and would report an
    /// empty search as if it had run; refuse it up front.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: usize, seed: u64) -> Self {
        assert!(budget >= 1, "a budgeted strategy needs a budget >= 1");
        Self { budget, seed }
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> String {
        // Budget *and* seed: two runs differing only in seed must stay
        // distinguishable in manifests, profiles, and BENCH json keys.
        format!("random-{}-s{}", self.budget, self.seed)
    }

    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut picks = valid_indices(statics);
        picks.shuffle(&mut rng);
        picks.truncate(self.budget);
        picks
    }
}

/// Best-first branch-and-bound over a structured [`Space`]: subspaces
/// ([`crate::space::PartialPoint`]s) sit on a frontier keyed by an admissible
/// [`LowerBound`], and a subspace whose bound exceeds the incumbent
/// (best simulated time so far) is discarded *whole* — none of its
/// interior points is ever instantiated. This is the refactor the
/// Telamon line of work motivates: prune subspaces, not candidates.
///
/// Exactness: pruning is strictly `bound > incumbent`, so any point at
/// least as fast as the final optimum has `floor ≤ optimum ≤ incumbent`
/// at every moment and can never be pruned — it is simulated, and
/// `SearchReport::pick_best`'s first-index tie-break then matches
/// exhaustive search configuration-for-configuration.
///
/// Determinism: the frontier is a binary min-heap ordered by
/// `(bound, first_grid_rank)` — total on coexisting frontier nodes
/// because splitting always binds the first unbound axis, so two
/// coexisting subspaces differ somewhere in their common bound prefix
/// and thus in their first grid rank. The main loop is sequential;
/// worker parallelism lives entirely inside the engine's batch calls,
/// which reassemble in deterministic order. Reports are therefore
/// byte-identical at any `--jobs`.
///
/// A child's key is `max(parent key, child bound)`, which makes the
/// popped-key sequence non-decreasing even if a bound implementation
/// loses monotonicity to legalization; combined with a monotonically
/// non-increasing incumbent, the *first* prune decision ends the
/// search — everything still on the heap is pruned in one drain.
///
/// Used through [`BranchAndBound::run_space`]; the [`SearchStrategy`]
/// impl exists so `bnb` slots into strategy tables, but over a plain
/// candidate slice (no space structure to split) it degenerates to
/// exhaustive selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound;

/// A frontier entry: a subspace and its heap key. Ordered as a
/// *min*-heap element on `(key, first grid rank)`.
struct FrontierNode {
    key: f64,
    rank: usize,
    partial: crate::space::PartialPoint,
}

impl PartialEq for FrontierNode {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key).is_eq() && self.rank == other.rank
    }
}
impl Eq for FrontierNode {}
impl PartialOrd for FrontierNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (bound, rank) on top.
        other.key.total_cmp(&self.key).then_with(|| other.rank.cmp(&self.rank))
    }
}

impl SearchStrategy for BranchAndBound {
    fn name(&self) -> String {
        "bnb".into()
    }

    /// Over a flat slice there is no subspace structure to bound, so
    /// the fallback selection is exhaustive. The real entry point is
    /// [`BranchAndBound::run_space`].
    fn select(&self, statics: &[Option<Evaluated>]) -> Vec<usize> {
        valid_indices(statics)
    }
}

impl BranchAndBound {
    /// Run branch-and-bound over a structured space with the production
    /// [`ProbeBound`]. Only frontier leaves that survive bounding reach
    /// instantiation and simulation; everything else is accounted in
    /// `stats.bound_pruned_subspaces` / `stats.bound_pruned_points`.
    pub fn run_space(
        &self,
        engine: &EvalEngine,
        space: &Space,
        inst: &dyn Instantiator,
        spec: &MachineSpec,
    ) -> SearchReport {
        engine.emit(
            EventKind::Begin,
            "search",
            vec![("strategy", Json::from(self.name())), ("space", Json::from(space.len()))],
        );
        engine.convergence().reset();
        let bound = ProbeBound::new(space, inst, spec);
        let mut stats = engine.stats_seed();
        let mut quarantined: Vec<Quarantine> = Vec::new();

        let n = space.len();
        let mut statics: Vec<Option<Evaluated>> = vec![None; n];
        let mut simulated: Vec<Option<TimingReport>> = vec![None; n];

        // Completions carry full-grid ranks; report vectors are indexed
        // by the dense admitted ordering (`Space::points`). When the
        // constraints exclude nothing the two coincide.
        let constrained = space.len() != space.grid_len();
        let dense_of: HashMap<usize, usize> = if constrained {
            space.partial().completions().enumerate().map(|(d, p)| (p.ordinal(), d)).collect()
        } else {
            HashMap::new()
        };
        let dense = |grid_rank: usize| -> usize {
            if constrained {
                dense_of[&grid_rank]
            } else {
                grid_rank
            }
        };

        let mut heap: BinaryHeap<FrontierNode> = BinaryHeap::new();
        if n > 0 {
            let root = space.partial();
            let key = bound.bound_ms(&root);
            heap.push(FrontierNode { key, rank: root.first_grid_rank(), partial: root });
        }

        let mut incumbent = f64::INFINITY;
        let mut incumbent_rank: Option<usize> = None;
        let mut completed_ranks: Vec<usize> = Vec::new();
        let mut spent_ms = 0.0f64;
        let mut pruned: Vec<crate::space::PartialPoint> = Vec::new();

        while let Some(node) = heap.pop() {
            if node.key > incumbent {
                // Popped keys are non-decreasing and the incumbent only
                // improves, so the first prune decision is terminal:
                // everything still on the heap is at least as bounded.
                engine.emit(
                    EventKind::Point,
                    "bound.prune",
                    vec![
                        ("subspaces", Json::from(heap.len() + 1)),
                        ("first", Json::from(node.partial.to_string())),
                        ("bound_ms", Json::from(node.key)),
                        ("incumbent_ms", Json::from(incumbent)),
                    ],
                );
                pruned.push(node.partial);
                while let Some(rest) = heap.pop() {
                    pruned.push(rest.partial);
                }
                break;
            }
            if node.partial.is_complete() {
                // Batch the maximal run of ready leaves so the engine's
                // per-call memoization and family forking see as many
                // related points together as possible.
                let mut points = vec![node.partial.as_point().expect("complete")];
                while let Some(top) = heap.peek() {
                    if top.partial.is_complete() && top.key <= incumbent {
                        let leaf = heap.pop().expect("peeked");
                        points.push(leaf.partial.as_point().expect("complete"));
                    } else {
                        break;
                    }
                }
                let ranks: Vec<usize> = points.iter().map(crate::space::Point::ordinal).collect();
                let batch = PointBatch::new(points, inst);

                // Budgets are enforced per engine call; hand each batch
                // only what the whole search has left.
                let mut batch_engine = engine.clone();
                if let Some(cap) = engine.config.budget.max_sims {
                    batch_engine.config.budget.max_sims =
                        Some(cap.saturating_sub(stats.unique_sims));
                }
                if let Some(deadline) = engine.config.budget.deadline_ms {
                    batch_engine.config.budget.deadline_ms = Some(deadline - spent_ms);
                }

                let mut batch_quar: Vec<Quarantine> = Vec::new();
                let batch_statics = batch_engine.evaluate_statics(
                    &MetricsEval {
                        options: self.metrics_options(),
                        verify: false,
                        check_races: engine.config.check_races,
                    },
                    &batch,
                    spec,
                    &mut stats,
                    &mut batch_quar,
                );
                let selected = valid_indices(&batch_statics);
                let batch_sims = batch_engine.simulate_selected(
                    &SimulatorEval::from_config(&engine.config),
                    &batch,
                    &batch_statics,
                    &selected,
                    spec,
                    &mut stats,
                    &mut batch_quar,
                );
                for (local, grid_rank) in ranks.iter().copied().enumerate() {
                    let d = dense(grid_rank);
                    statics[d] = batch_statics[local].clone();
                    if let Some(t) = &batch_sims[local] {
                        if t.time_ms < incumbent {
                            incumbent = t.time_ms;
                            incumbent_rank = Some(grid_rank);
                        }
                        spent_ms += t.time_ms;
                    }
                    simulated[d] = batch_sims[local].clone();
                    // "Completed" means the leaf reached a verdict: it
                    // simulated, or its statics rejected it. A leaf the
                    // engine never dispatched (budget- or interrupt-
                    // truncated) has statics but no timing and stays
                    // out of the snapshot.
                    if batch_sims[local].is_some() || batch_statics[local].is_none() {
                        completed_ranks.push(grid_rank);
                    }
                }
                for mut q in batch_quar {
                    q.candidate = dense(ranks[q.candidate]);
                    quarantined.push(q);
                }
                if let Some(ck) = engine.checkpoint() {
                    // Snapshot the search state after every batch so a
                    // checkpoint written mid-search carries a coherent
                    // frontier. Resume replays the whole search from
                    // the start (results served from the checkpoint),
                    // so this snapshot is diagnostic, not load-bearing
                    // for correctness — but it must stay deterministic.
                    let mut frontier: Vec<FrontierSnapshot> = heap
                        .iter()
                        .map(|f| FrontierSnapshot {
                            bound_ms: f.key,
                            bindings: f.partial.bindings().to_vec(),
                        })
                        .collect();
                    frontier.sort_by(|a, b| {
                        a.bound_ms.total_cmp(&b.bound_ms).then_with(|| a.bindings.cmp(&b.bindings))
                    });
                    ck.set_search_state(SearchState {
                        incumbent_rank,
                        incumbent_ms: incumbent.is_finite().then_some(incumbent),
                        frontier,
                        completed_ranks: completed_ranks.clone(),
                    });
                }
                if stats.budget_truncated {
                    // The budget, not the bound, cut this search short;
                    // the remaining frontier is abandoned, not pruned.
                    break;
                }
                if engine.stop_requested() {
                    // Interrupted (or a deterministic stop-after tripped):
                    // abandon the frontier like a budget truncation. The
                    // caller publishes the final checkpoint; resume
                    // replays the search from the top and sails past
                    // everything recorded so far.
                    break;
                }
            } else {
                for child in node.partial.split() {
                    if constrained && child.completions().next().is_none() {
                        // Constraint-empty, exactly the configurations
                        // exhaustive search never enumerates either.
                        continue;
                    }
                    let key = bound.bound_ms(&child).max(node.key);
                    heap.push(FrontierNode { key, rank: child.first_grid_rank(), partial: child });
                }
            }
        }

        // Honest elimination accounting: of each pruned subspace's
        // admitted completions, the corners the bound itself probed
        // *were* instantiated — only the rest were eliminated sight
        // unseen.
        let probed = bound.instantiated_ranks();
        stats.bound_pruned_subspaces = pruned.len();
        for sub in &pruned {
            let admitted = sub.admitted_count();
            let probed_inside = probed.iter().filter(|&&r| sub.contains_admitted_rank(r)).count();
            stats.bound_pruned_points += admitted.saturating_sub(probed_inside);
        }

        finish_report(engine, self.name(), n, statics, simulated, quarantined, stats)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel, Launch};

    /// A small synthetic space: a compute loop whose per-thread work and
    /// register appetite vary with a "tiling" knob, so configurations
    /// genuinely trade efficiency against utilization.
    pub(super) fn synthetic_space_for_debug() -> Vec<Candidate> {
        synthetic_space()
    }
    fn synthetic_space() -> Vec<Candidate> {
        fn kernel(tile: u32, pad_regs: u32) -> Kernel {
            let mut b = KernelBuilder::new(format!("syn{tile}"));
            let p = b.param(0);
            // pad_regs long-lived values inflate register pressure.
            let pads: Vec<_> = (0..pad_regs).map(|i| b.mov(i as f32)).collect();
            let acc = b.mov(0.0f32);
            b.repeat(64 / tile, |b| {
                let x = b.ld_global(p, 0);
                for _ in 0..tile {
                    b.fmad_acc(x, 1.0f32, acc);
                }
                b.sync();
            });
            for pad in pads {
                b.fmad_acc(pad, 0.0f32, acc);
            }
            b.st_global(p, 0, acc);
            b.finish()
        }
        let mut out = Vec::new();
        for tile in [1u32, 2, 4, 8] {
            for pad in [0u32, 8, 20] {
                let total = 1u32 << 14;
                let tpb = 256;
                out.push(Candidate::new(
                    format!("tile={tile}/pad={pad}"),
                    kernel(tile, pad),
                    Launch::new(Dim::new_1d(total / tpb), Dim::new_1d(tpb)),
                ));
            }
        }
        // One deliberately invalid configuration: huge register demand
        // at 512 threads.
        out.push(Candidate::new(
            "invalid",
            kernel(1, 40),
            Launch::new(Dim::new_1d(32), Dim::new_1d(512)),
        ));
        out
    }

    fn g80() -> MachineSpec {
        MachineSpec::geforce_8800_gtx()
    }

    #[test]
    fn exhaustive_times_every_valid_config() {
        let space = synthetic_space();
        let r = ExhaustiveSearch.run(&space, &g80());
        assert_eq!(r.space_size, 13);
        assert_eq!(r.valid_count(), 12);
        assert_eq!(r.evaluated_count(), 12);
        assert!(r.best.is_some());
        assert_eq!(r.space_reduction(), 0.0);
        assert_eq!(r.stats.static_evals, 13);
        assert_eq!(r.stats.timed, 12);
    }

    #[test]
    fn pruned_search_times_a_subset_and_finds_the_optimum() {
        let space = synthetic_space();
        let exhaustive = ExhaustiveSearch.run(&space, &g80());
        let pruned = PrunedSearch::default().run(&space, &g80());
        assert!(pruned.evaluated_count() < exhaustive.evaluated_count());
        assert!(pruned.space_reduction() > 0.0);
        // The pruned search must land on the same optimum (the paper's
        // central claim, here on the synthetic space).
        let best_ex = exhaustive.best_time_ms().unwrap();
        let best_pr = pruned.best_time_ms().unwrap();
        assert!(
            (best_pr / best_ex - 1.0).abs() < 1e-9,
            "pruned best {best_pr} != exhaustive best {best_ex}"
        );
    }

    #[test]
    fn random_search_respects_budget_and_determinism() {
        let space = synthetic_space();
        let a = RandomSearch { budget: 5, seed: 42 }.run(&space, &g80());
        let b = RandomSearch { budget: 5, seed: 42 }.run(&space, &g80());
        assert_eq!(a.evaluated_count(), 5);
        assert_eq!(a.best, b.best);
        let c = RandomSearch { budget: 100, seed: 7 }.run(&space, &g80());
        assert_eq!(c.evaluated_count(), 12); // clamped to valid space
    }

    #[test]
    fn evaluation_time_sums_selected_only() {
        let space = synthetic_space();
        let pruned = PrunedSearch::default().run(&space, &g80());
        let exhaustive = ExhaustiveSearch.run(&space, &g80());
        assert!(pruned.evaluation_time_ms() < exhaustive.evaluation_time_ms());
        assert!(pruned.evaluation_time_ms() > 0.0);
    }

    #[test]
    fn invalid_configurations_are_never_simulated() {
        let space = synthetic_space();
        let r = ExhaustiveSearch.run(&space, &g80());
        assert!(r.statics[12].is_none());
        assert!(r.simulated[12].is_none());
    }

    /// The synthetic space as a structured `Space` + `Instantiator`,
    /// for exercising subspace search in-crate.
    pub(crate) struct SyntheticInst;

    impl crate::space::Instantiator for SyntheticInst {
        fn instantiate(&self, p: &crate::space::Point) -> Candidate {
            let space = synthetic_space();
            let (tile, pad) = (p.u32("tile"), p.u32("pad"));
            space
                .into_iter()
                .find(|c| c.label == format!("tile={tile}/pad={pad}"))
                .expect("point maps to a synthetic candidate")
        }
    }

    pub(crate) fn synthetic_structured() -> Space {
        Space::builder().axis("tile", [1u32, 2, 4, 8]).axis("pad", [0u32, 8, 20]).build()
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_with_fewer_sims() {
        let spec = g80();
        let space = synthetic_structured();
        let inst = SyntheticInst;
        // Exhaustive over the same 12 candidates (the structured space
        // omits the deliberately-invalid 13th configuration).
        let eager: Vec<Candidate> = space.points().map(|p| inst.instantiate(&p)).collect();
        let ex = ExhaustiveSearch.run(&eager, &spec);
        let bb = BranchAndBound.run_space(&EvalEngine::default(), &space, &inst, &spec);
        assert_eq!(bb.strategy, "bnb");
        assert_eq!(bb.space_size, 12);
        assert_eq!(bb.best_time_ms(), ex.best_time_ms());
        assert_eq!(bb.best, ex.best);
        assert!(
            bb.stats.unique_sims < ex.stats.unique_sims,
            "bnb {} sims !< exhaustive {}",
            bb.stats.unique_sims,
            ex.stats.unique_sims
        );
        assert!(bb.stats.bound_pruned_subspaces > 0);
        // With only two axes, the conditioned calibration sweeps probe
        // every point of every pruned subspace, so the points counter
        // stays honest at zero here; `tests/branch_and_bound.rs` pins
        // it nonzero on the real (deeper) application spaces.
        assert!(bb.stats.bound_pruned_points + bb.evaluated_count() <= bb.space_size);
    }

    #[test]
    fn branch_and_bound_is_jobs_invariant() {
        let spec = g80();
        let space = synthetic_structured();
        let inst = SyntheticInst;
        let seq = BranchAndBound.run_space(&EvalEngine::default(), &space, &inst, &spec);
        for jobs in [2usize, 8] {
            let par = BranchAndBound.run_space(&EvalEngine::with_jobs(jobs), &space, &inst, &spec);
            assert_eq!(seq.best, par.best);
            assert_eq!(seq.simulated, par.simulated);
            assert_eq!(seq.stats.unique_sims, par.stats.unique_sims);
            assert_eq!(seq.stats.bound_pruned_subspaces, par.stats.bound_pruned_subspaces);
            assert_eq!(seq.stats.bound_pruned_points, par.stats.bound_pruned_points);
        }
    }

    #[test]
    fn branch_and_bound_respects_sim_budget() {
        let spec = g80();
        let space = synthetic_structured();
        let inst = SyntheticInst;
        let free = BranchAndBound.run_space(&EvalEngine::default(), &space, &inst, &spec);
        assert!(free.stats.unique_sims >= 1);
        // Cap the search below what it wants: it must stop at the cap
        // and say so.
        let cap = free.stats.unique_sims.saturating_sub(1);
        let mut engine = EvalEngine::default();
        engine.config.budget = crate::engine::EvalBudget::with_max_sims(cap);
        let r = BranchAndBound.run_space(&engine, &space, &inst, &spec);
        assert!(r.stats.unique_sims <= cap);
        assert!(r.stats.budget_truncated);
    }

    /// The engine path with >1 worker must reproduce the sequential
    /// report field-for-field on every strategy.
    #[test]
    fn parallel_engine_reproduces_sequential_reports() {
        let space = synthetic_space();
        let spec = g80();
        let engine = EvalEngine::with_jobs(4);
        for strategy in [
            &ExhaustiveSearch as &dyn SearchStrategy,
            &PrunedSearch::default(),
            &RandomSearch { budget: 5, seed: 42 },
        ] {
            let seq = strategy.run(&space, &spec);
            let par = strategy.run_with(&engine, &space, &spec);
            assert_eq!(seq.best, par.best, "{}", seq.strategy);
            assert_eq!(seq.simulated, par.simulated, "{}", seq.strategy);
            assert_eq!(par.stats.jobs, 4);
            assert_eq!(seq.stats.unique_sims, par.stats.unique_sims);
        }
    }
}

#[cfg(test)]
mod debug_dump {
    use super::tests::synthetic_space_for_debug;
    use super::*;
    use crate::obs::{EventSink, Scope};
    use std::sync::Arc;

    /// Dump the synthetic space through the event sink instead of ad-hoc
    /// `println!` formatting: one structured `debug.candidate` event per
    /// configuration, printed as the same JSONL the `--trace-out` flag
    /// writes. Run with `cargo test -p optspace dump -- --ignored
    /// --nocapture`.
    #[test]
    #[ignore]
    fn dump() {
        let space = synthetic_space_for_debug();
        let spec = MachineSpec::geforce_8800_gtx();
        let sink = Arc::new(EventSink::new());
        let engine = EvalEngine::with_jobs(1).with_sink(Arc::clone(&sink));
        let ex = ExhaustiveSearch.run_with(&engine, &space, &spec);
        for (i, c) in space.iter().enumerate() {
            let s = ex.statics[i].as_ref();
            let t = ex.simulated[i].as_ref();
            sink.search(
                EventKind::Point,
                "debug.candidate",
                vec![
                    ("label", Json::from(c.label.as_str())),
                    ("efficiency", Json::from(s.map(|e| e.metrics.efficiency))),
                    ("utilization", Json::from(s.map(|e| e.metrics.utilization))),
                    ("bandwidth_pressure", Json::from(s.map(|e| e.bandwidth.pressure()))),
                    ("bandwidth_bound", Json::from(s.map(|e| e.bandwidth.is_bandwidth_bound()))),
                    ("regs", Json::from(s.map(|e| e.kernel_profile.usage.regs_per_thread))),
                    (
                        "blocks_per_sm",
                        Json::from(s.map(|e| e.kernel_profile.occupancy.blocks_per_sm)),
                    ),
                    ("time_ms", Json::from(t.map(|t| t.time_ms))),
                ],
            );
        }
        let trace = sink.drain();
        for event in &trace.events {
            if event.scope == Scope::Search && event.name == "debug.candidate" {
                println!("{}", event.canonical_line());
            }
        }
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::{Dim, Kernel, Launch};

    /// A space with deliberate clusters: the `inv` knob splits work
    /// across invocations (metrics near-identical within a cluster), the
    /// `work` knob changes efficiency between clusters.
    fn clustered_space() -> Vec<Candidate> {
        fn kernel(work: u32, trips: u32) -> Kernel {
            let mut b = KernelBuilder::new("c");
            let p = b.param(0);
            let acc = b.mov(0.0f32);
            b.repeat(trips, |b| {
                let x = b.ld_global(p, 0);
                for _ in 0..work {
                    b.fmad_acc(x, 1.0f32, acc);
                }
            });
            b.st_global(p, 0, acc);
            b.finish()
        }
        let mut out = Vec::new();
        for work in [1u32, 2, 4] {
            for inv in [1u32, 2, 4, 8] {
                let total_trips = 64;
                out.push(
                    Candidate::new(
                        format!("w{work}/inv{inv}"),
                        kernel(work, total_trips / inv),
                        Launch::new(Dim::new_1d(256), Dim::new_1d(128)),
                    )
                    .with_invocations(inv),
                );
            }
        }
        out
    }

    #[test]
    fn clustering_retains_whole_clusters_and_sampling_thins_them() {
        let spec = MachineSpec::geforce_8800_gtx();
        let space = clustered_space();

        let exact = PrunedSearch::default().run(&space, &spec);
        let clustered =
            PrunedSearch { metric_resolution: Some(0.02), ..Default::default() }.run(&space, &spec);
        let sampled = PrunedSearch {
            metric_resolution: Some(0.02),
            cluster_sample: true,
            ..Default::default()
        }
        .run(&space, &spec);

        // Clustering keeps more configurations than exact dominance
        // (the near-identical invocation variants survive together)...
        assert!(
            clustered.evaluated_count() > exact.evaluated_count(),
            "clustered {} !> exact {}",
            clustered.evaluated_count(),
            exact.evaluated_count()
        );
        // ...and sampling collapses each cluster to one representative.
        assert!(sampled.evaluated_count() < clustered.evaluated_count());

        // The sampled search must land within the cluster's small
        // spread of the true optimum.
        let truth = ExhaustiveSearch.run(&space, &spec).best_time_ms().unwrap();
        let got = sampled.best_time_ms().unwrap();
        assert!(got / truth < 1.10, "sampled best {got} more than 10% off optimum {truth}");

        // The invocation clusters are exactly what the memo cache
        // collapses: the exhaustive run times 12 configurations out of
        // only 3 unique simulations (work variants), families included.
        let ex = ExhaustiveSearch.run(&space, &spec);
        assert_eq!(ex.stats.timed, 12);
        assert_eq!(ex.stats.unique_sims, 3);
        assert_eq!(ex.stats.cache_hits, 9);
    }
}
