//! Errors raised by transformation passes.

use std::error::Error;
use std::fmt;

/// Why a pass could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// The addressed loop does not exist in the kernel.
    LoopNotFound,
    /// Unroll factor does not divide the trip count.
    TripNotDivisible {
        /// Loop trip count.
        trips: u32,
        /// Requested unroll factor.
        factor: u32,
    },
    /// Unroll factor of zero requested.
    ZeroFactor,
    /// The loop body does not start with global loads eligible for
    /// prefetching.
    NoPrefetchCandidate,
    /// A loop-counter register cannot be spilled.
    CounterSpill,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::LoopNotFound => write!(f, "loop id does not address a loop"),
            PassError::TripNotDivisible { trips, factor } => {
                write!(f, "unroll factor {factor} does not divide trip count {trips}")
            }
            PassError::ZeroFactor => write!(f, "unroll factor must be at least 1"),
            PassError::NoPrefetchCandidate => {
                write!(f, "loop body has no leading global loads to prefetch")
            }
            PassError::CounterSpill => write!(f, "loop counters cannot be spilled"),
        }
    }
}

impl Error for PassError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PassError::TripNotDivisible { trips: 16, factor: 3 };
        assert!(e.to_string().contains('3') && e.to_string().contains("16"));
    }
}
