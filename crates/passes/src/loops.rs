//! Addressing loops inside structured kernel bodies.
//!
//! Passes identify loops by a [`LoopId`]: the path of statement indices
//! from the kernel body down to the `Stmt::Loop` in question. Paths are
//! stable as long as statements *before* the loop at each level are not
//! inserted or removed, which holds for the generator → pass pipelines
//! used here (passes mutate loop bodies in place or splice at known
//! positions).

use gpu_ir::{Kernel, Loop, Stmt};

use crate::PassError;

/// Path to one loop: statement indices at successive nesting levels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopId(pub Vec<usize>);

impl LoopId {
    /// Nesting depth of the addressed loop (1 = top-level).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

fn collect(stmts: &[Stmt], prefix: &mut Vec<usize>, out: &mut Vec<LoopId>) {
    for (i, s) in stmts.iter().enumerate() {
        if let Stmt::Loop(l) = s {
            prefix.push(i);
            out.push(LoopId(prefix.clone()));
            collect(&l.body, prefix, out);
            prefix.pop();
        }
    }
}

/// All loops in pre-order.
pub fn find_loops(kernel: &Kernel) -> Vec<LoopId> {
    let mut out = Vec::new();
    collect(&kernel.body, &mut Vec::new(), &mut out);
    out
}

/// Loops that contain no nested loops, in pre-order.
pub fn innermost_loops(kernel: &Kernel) -> Vec<LoopId> {
    find_loops(kernel)
        .into_iter()
        .filter(|id| {
            get_loop(kernel, id)
                .map(|l| l.body.iter().all(|s| !matches!(s, Stmt::Loop(_))))
                .unwrap_or(false)
        })
        .collect()
}

/// Borrow the loop addressed by `id`.
pub fn get_loop<'a>(kernel: &'a Kernel, id: &LoopId) -> Option<&'a Loop> {
    let mut stmts = &kernel.body;
    let mut found: Option<&Loop> = None;
    for (level, &idx) in id.0.iter().enumerate() {
        match stmts.get(idx) {
            Some(Stmt::Loop(l)) => {
                if level + 1 == id.0.len() {
                    found = Some(l);
                } else {
                    stmts = &l.body;
                }
            }
            _ => return None,
        }
    }
    found
}

/// Mutably borrow the loop addressed by `id`.
pub fn get_loop_mut<'a>(kernel: &'a mut Kernel, id: &LoopId) -> Option<&'a mut Loop> {
    let mut stmts = &mut kernel.body;
    for (level, &idx) in id.0.iter().enumerate() {
        // Split the walk to satisfy the borrow checker.
        let stmt = stmts.get_mut(idx)?;
        match stmt {
            Stmt::Loop(l) => {
                if level + 1 == id.0.len() {
                    return Some(l);
                }
                stmts = &mut l.body;
            }
            _ => return None,
        }
    }
    None
}

/// Borrow the statement list containing the loop, plus the loop's index
/// within it. Used by passes that splice around the loop (complete
/// unroll, prefetch prologues).
pub fn get_parent_mut<'a>(
    kernel: &'a mut Kernel,
    id: &LoopId,
) -> Result<(&'a mut Vec<Stmt>, usize), PassError> {
    let (last, prefix) = id.0.split_last().ok_or(PassError::LoopNotFound)?;
    let mut stmts = &mut kernel.body;
    for &idx in prefix {
        match stmts.get_mut(idx) {
            Some(Stmt::Loop(l)) => stmts = &mut l.body,
            _ => return Err(PassError::LoopNotFound),
        }
    }
    match stmts.get(*last) {
        Some(Stmt::Loop(_)) => Ok((stmts, *last)),
        _ => Err(PassError::LoopNotFound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::build::KernelBuilder;

    fn sample() -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.mov(0i32);
        b.repeat(2, |b| {
            b.mov(1i32);
            b.repeat(3, |b| {
                b.mov(2i32);
            });
        });
        b.repeat(4, |b| {
            b.mov(3i32);
        });
        b.finish()
    }

    #[test]
    fn find_loops_preorder() {
        let k = sample();
        let ids = find_loops(&k);
        assert_eq!(ids, vec![LoopId(vec![1]), LoopId(vec![1, 1]), LoopId(vec![2])]);
        assert_eq!(ids[1].depth(), 2);
    }

    #[test]
    fn innermost_excludes_outer() {
        let k = sample();
        let inner = innermost_loops(&k);
        assert_eq!(inner, vec![LoopId(vec![1, 1]), LoopId(vec![2])]);
    }

    #[test]
    fn get_loop_resolves_trip_counts() {
        let k = sample();
        assert_eq!(get_loop(&k, &LoopId(vec![1])).unwrap().trip_count, 2);
        assert_eq!(get_loop(&k, &LoopId(vec![1, 1])).unwrap().trip_count, 3);
        assert_eq!(get_loop(&k, &LoopId(vec![2])).unwrap().trip_count, 4);
        assert!(get_loop(&k, &LoopId(vec![0])).is_none());
        assert!(get_loop(&k, &LoopId(vec![9])).is_none());
    }

    #[test]
    fn get_parent_mut_points_at_loop() {
        let mut k = sample();
        let (parent, idx) = get_parent_mut(&mut k, &LoopId(vec![1, 1])).unwrap();
        assert_eq!(idx, 1);
        assert!(matches!(parent[idx], Stmt::Loop(_)));
        assert!(get_parent_mut(&mut k, &LoopId(vec![0])).is_err());
    }

    #[test]
    fn get_loop_mut_allows_editing() {
        let mut k = sample();
        get_loop_mut(&mut k, &LoopId(vec![2])).unwrap().trip_count = 8;
        assert_eq!(get_loop(&k, &LoopId(vec![2])).unwrap().trip_count, 8);
    }
}
