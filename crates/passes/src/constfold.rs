//! Constant folding, immediate propagation, and dead-code elimination.
//!
//! Complete unrolling substitutes loop counters with constants (Figure
//! 2(c): "replacing variable array indices with constants"); what makes
//! that profitable is the clean-up afterwards — `mad.lo.s32 %r, 2, 4, 1`
//! becomes an immediate, the immediate flows into its uses, and the
//! now-dead arithmetic disappears. nvcc performs this silently; here it
//! is an explicit pass so the instruction-count reductions the paper
//! attributes to unrolling are mechanistic and testable.
//!
//! Three sub-passes run to a fixed point:
//!
//! 1. **fold** — pure integer/float ops whose operands are all
//!    immediates are replaced by `mov imm`;
//! 2. **propagate** — a register holding a known immediate is replaced
//!    by the immediate at its use sites (within the region where the
//!    binding is valid);
//! 3. **dce** — instructions without side effects whose destination is
//!    never read afterwards are deleted.

use std::collections::{HashMap, HashSet};

use gpu_ir::types::{Operand, VReg};
use gpu_ir::{Instr, Kernel, Op, Stmt};

/// Outcome of one [`fold_constants`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FoldReport {
    /// Instructions replaced by immediate moves.
    pub folded: u32,
    /// Operand slots rewritten to immediates.
    pub propagated: u32,
    /// Dead instructions removed.
    pub eliminated: u32,
}

impl FoldReport {
    fn any(&self) -> bool {
        self.folded > 0 || self.propagated > 0 || self.eliminated > 0
    }

    fn absorb(&mut self, other: FoldReport) {
        self.folded += other.folded;
        self.propagated += other.propagated;
        self.eliminated += other.eliminated;
    }
}

fn imm_i32(o: &Operand) -> Option<i32> {
    match o {
        Operand::ImmI32(v) => Some(*v),
        _ => None,
    }
}

fn imm_f32(o: &Operand) -> Option<f32> {
    match o {
        Operand::ImmF32(v) => Some(*v),
        _ => None,
    }
}

/// Evaluate a pure op over all-immediate operands, mirroring the
/// interpreter's semantics exactly.
fn eval(i: &Instr) -> Option<Operand> {
    use Op::*;
    let s = &i.srcs;
    Some(match i.op {
        IAdd => Operand::ImmI32(imm_i32(&s[0])?.wrapping_add(imm_i32(&s[1])?)),
        ISub => Operand::ImmI32(imm_i32(&s[0])?.wrapping_sub(imm_i32(&s[1])?)),
        IMul => Operand::ImmI32(imm_i32(&s[0])?.wrapping_mul(imm_i32(&s[1])?)),
        IMad => Operand::ImmI32(
            imm_i32(&s[0])?.wrapping_mul(imm_i32(&s[1])?).wrapping_add(imm_i32(&s[2])?),
        ),
        IDiv => {
            let (a, b) = (imm_i32(&s[0])?, imm_i32(&s[1])?);
            Operand::ImmI32(if b == 0 { 0 } else { a.wrapping_div(b) })
        }
        IRem => {
            let (a, b) = (imm_i32(&s[0])?, imm_i32(&s[1])?);
            Operand::ImmI32(if b == 0 { 0 } else { a.wrapping_rem(b) })
        }
        Shl => Operand::ImmI32(imm_i32(&s[0])?.wrapping_shl(imm_i32(&s[1])? as u32)),
        Shr => Operand::ImmI32(imm_i32(&s[0])?.wrapping_shr(imm_i32(&s[1])? as u32)),
        And => Operand::ImmI32(imm_i32(&s[0])? & imm_i32(&s[1])?),
        Or => Operand::ImmI32(imm_i32(&s[0])? | imm_i32(&s[1])?),
        Xor => Operand::ImmI32(imm_i32(&s[0])? ^ imm_i32(&s[1])?),
        IMin => Operand::ImmI32(imm_i32(&s[0])?.min(imm_i32(&s[1])?)),
        IMax => Operand::ImmI32(imm_i32(&s[0])?.max(imm_i32(&s[1])?)),
        FAdd => Operand::ImmF32(imm_f32(&s[0])? + imm_f32(&s[1])?),
        FSub => Operand::ImmF32(imm_f32(&s[0])? - imm_f32(&s[1])?),
        FMul => Operand::ImmF32(imm_f32(&s[0])? * imm_f32(&s[1])?),
        FMad => Operand::ImmF32(imm_f32(&s[0])?.mul_add(imm_f32(&s[1])?, imm_f32(&s[2])?)),
        FNeg => Operand::ImmF32(-imm_f32(&s[0])?),
        FAbs => Operand::ImmF32(imm_f32(&s[0])?.abs()),
        I2F => Operand::ImmF32(imm_i32(&s[0])? as f32),
        F2I => Operand::ImmI32(imm_f32(&s[0])? as i32),
        _ => return None,
    })
}

/// Fold and propagate within one statement list. `bindings` maps
/// registers to known immediates; loop bodies start with bindings for
/// values that are invariant across the loop (not redefined inside).
fn fold_walk(stmts: &mut [Stmt], bindings: &mut HashMap<VReg, Operand>, report: &mut FoldReport) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::Op(i) => {
                // Propagate known immediates into operands.
                for src in &mut i.srcs {
                    if let Some(r) = src.reg() {
                        if let Some(imm) = bindings.get(&r) {
                            *src = *imm;
                            report.propagated += 1;
                        }
                    }
                }
                // Fold all-immediate pure ops into movs.
                if i.op != Op::Mov {
                    if let Some(value) = eval(i) {
                        let dst = i.dst.expect("pure ops have destinations");
                        *i = Instr::new(Op::Mov, Some(dst), vec![value]);
                        report.folded += 1;
                    }
                }
                // Update bindings.
                if let Some(d) = i.dst {
                    if i.op == Op::Mov && i.srcs[0].is_imm() {
                        bindings.insert(d, i.srcs[0]);
                    } else {
                        bindings.remove(&d);
                    }
                }
            }
            Stmt::Sync => {}
            Stmt::Loop(l) => {
                // Bindings survive into the loop only for registers the
                // body never redefines.
                let mut defs = HashSet::new();
                collect_defs(&l.body, &mut defs);
                if let Some(c) = l.counter {
                    defs.insert(c);
                }
                let mut inner: HashMap<VReg, Operand> = bindings
                    .iter()
                    .filter(|(r, _)| !defs.contains(*r))
                    .map(|(r, v)| (*r, *v))
                    .collect();
                fold_walk(&mut l.body, &mut inner, report);
                // After the loop, anything the body defines is unknown.
                bindings.retain(|r, _| !defs.contains(r));
            }
        }
    }
}

fn collect_defs(stmts: &[Stmt], out: &mut HashSet<VReg>) {
    for s in stmts {
        match s {
            Stmt::Op(i) => {
                if let Some(d) = i.dst {
                    out.insert(d);
                }
            }
            Stmt::Sync => {}
            Stmt::Loop(l) => {
                if let Some(c) = l.counter {
                    out.insert(c);
                }
                collect_defs(&l.body, out);
            }
        }
    }
}

fn collect_uses(stmts: &[Stmt], out: &mut HashSet<VReg>) {
    for s in stmts {
        match s {
            Stmt::Op(i) => out.extend(i.uses()),
            Stmt::Sync => {}
            Stmt::Loop(l) => collect_uses(&l.body, out),
        }
    }
}

/// Remove side-effect-free instructions whose destination is dead.
fn dce(kernel: &mut Kernel) -> u32 {
    // Global "used anywhere" approximation — sound because a register
    // read anywhere might be reached by any def under loop iteration.
    let mut used = HashSet::new();
    collect_uses(&kernel.body, &mut used);

    fn sweep(stmts: &mut Vec<Stmt>, used: &HashSet<VReg>, removed: &mut u32) {
        stmts.retain_mut(|s| match s {
            Stmt::Op(i) => {
                let side_effect = matches!(i.op, Op::St(_)) || matches!(i.op, Op::Ld(_));
                match i.dst {
                    Some(d) if !side_effect && !used.contains(&d) => {
                        *removed += 1;
                        false
                    }
                    _ => true,
                }
            }
            Stmt::Sync => true,
            Stmt::Loop(l) => {
                sweep(&mut l.body, used, removed);
                true
            }
        });
    }
    let mut removed = 0;
    sweep(&mut kernel.body, &used, &mut removed);
    removed
}

/// Run fold → propagate → DCE to a fixed point.
///
/// Loads are never deleted (they can fault and their latency is part of
/// the modelled behaviour); stores always survive.
pub fn fold_constants(kernel: &mut Kernel) -> FoldReport {
    let mut total = FoldReport::default();
    loop {
        let mut round = FoldReport::default();
        let mut bindings = HashMap::new();
        fold_walk(&mut kernel.body, &mut bindings, &mut round);
        round.eliminated = dce(kernel);
        let progress = round.any();
        total.absorb(round);
        if !progress {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use crate::unroll::unroll;
    use gpu_ir::analysis::dynamic_counts;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    fn run_scalar(k: &Kernel, words: usize) -> Vec<f32> {
        let prog = linearize(k);
        let mut mem = DeviceMemory::new(words);
        for (i, v) in mem.global.iter_mut().enumerate() {
            *v = i as f32;
        }
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
            .expect("runs");
        mem.global
    }

    #[test]
    fn folds_immediate_arithmetic_chain() {
        let mut b = KernelBuilder::new("chain");
        let out = b.param(0);
        let a = b.iadd(2i32, 3i32); // 5
        let c = b.imul(a, 4i32); // 20
        let d = b.imad(c, 2i32, 1i32); // 41
        let f = b.i2f(d); // 41.0
        b.st_global(out, 0, f);
        let mut k = b.finish();
        let baseline = run_scalar(&k, 4);
        let report = fold_constants(&mut k);
        assert!(report.folded >= 4, "{report:?}");
        assert!(report.eliminated >= 3, "{report:?}");
        // Everything collapses to the param mov + a store of 41.0.
        assert!(k.static_instr_count() <= 3, "{}", k.static_instr_count());
        assert_eq!(run_scalar(&k, 4), baseline);
    }

    #[test]
    fn complete_unroll_plus_fold_removes_index_arithmetic() {
        // Counter-indexed shared addressing, the SAD inner-loop shape.
        let build = || {
            let mut b = KernelBuilder::new("idx");
            let out = b.param(0);
            b.alloc_shared(64);
            let acc = b.mov(0.0f32);
            b.for_loop(4, |b, r| {
                b.for_loop(4, |b, c| {
                    let o = b.imad(r, 4i32, c);
                    let x = b.ld_shared(o, 0);
                    b.fmad_acc(x, 1.0f32, acc);
                });
            });
            b.st_global(out, 0, acc);
            b.finish()
        };
        let mut k = build();
        // Unroll both loops completely (outer first: its id stays valid).
        let outer = find_loops(&k)[0].clone();
        unroll(&mut k, &outer, 4).unwrap();
        for _ in 0..4 {
            let inner = find_loops(&k)[0].clone();
            unroll(&mut k, &inner, 4).unwrap();
        }
        let before = dynamic_counts(&k).instrs;
        let report = fold_constants(&mut k);
        let after = dynamic_counts(&k).instrs;
        // All 16 imads fold away (their immediates flow into the loads).
        assert!(report.folded >= 16, "{report:?}");
        assert!(after + 16 <= before, "before {before}, after {after}");

        // And the result is unchanged.
        let baseline = {
            let mut fresh = build();
            let _ = &mut fresh;
            run_scalar(&fresh, 4)
        };
        assert_eq!(run_scalar(&k, 4), baseline);
    }

    #[test]
    fn loads_and_stores_are_never_deleted() {
        let mut b = KernelBuilder::new("mem");
        let out = b.param(0);
        let _unused = b.ld_global(out, 1); // result unused, load must stay
        b.st_global(out, 0, 7.0f32);
        let mut k = b.finish();
        fold_constants(&mut k);
        let mut loads = 0;
        k.visit_instrs(|i| {
            if matches!(i.op, Op::Ld(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn bindings_do_not_leak_across_loop_redefinitions() {
        // x is an immediate before the loop but redefined inside: uses
        // after the redefinition must not see the stale constant.
        let mut b = KernelBuilder::new("scope");
        let out = b.param(0);
        let x = b.mov(1.0f32);
        b.repeat(3, |b| {
            let y = b.ld_global(out, 1);
            b.push_instr(Instr::new(Op::FAdd, Some(x), vec![x.into(), y.into()]));
        });
        b.st_global(out, 0, x);
        let mut k = b.finish();
        let baseline = run_scalar(&k, 4);
        fold_constants(&mut k);
        assert_eq!(run_scalar(&k, 4), baseline);
    }

    #[test]
    fn division_by_zero_folds_to_zero_like_hardware() {
        let mut b = KernelBuilder::new("div0");
        let out = b.param(0);
        let d = b.idiv(7i32, 0i32);
        let f = b.i2f(d);
        b.st_global(out, 0, f);
        let mut k = b.finish();
        let baseline = run_scalar(&k, 2);
        fold_constants(&mut k);
        assert_eq!(run_scalar(&k, 2), baseline);
        assert_eq!(baseline[0], 0.0);
    }

    #[test]
    fn report_is_idempotent_at_fixed_point() {
        let mut b = KernelBuilder::new("fp");
        let out = b.param(0);
        let v = b.iadd(1i32, 2i32);
        let f = b.i2f(v);
        b.st_global(out, 0, f);
        let mut k = b.finish();
        let first = fold_constants(&mut k);
        assert!(first.any());
        let second = fold_constants(&mut k);
        assert_eq!(second, FoldReport::default());
    }
}
