//! Global-load prefetching (section 3.1, "intra-thread parallelism";
//! Figure 2(d)).
//!
//! The transformation rewrites a loop whose body *begins* with global
//! loads into a software pipeline: the first tile's loads are hoisted
//! before the loop into buffer registers; inside the body the consumers
//! read the buffers, the *next* iteration's loads are issued right after
//! the induction updates, and the body ends by moving the fresh values
//! into the buffers. Register pressure rises by one live range per
//! prefetched load — the "additional local variable (register)" the
//! paper describes — which is exactly the resource interaction the
//! optimization-space study cares about.
//!
//! # Contract
//!
//! The final iteration issues loads one stride beyond the data actually
//! consumed (as Figure 2(d)'s CUDA does). Callers must pad their
//! allocations by one tile; the kernel generators in `gpu-kernels` do.

use gpu_ir::types::{Operand, VReg};
use gpu_ir::{Instr, Kernel, Op, Stmt};

use crate::loops::{get_loop, get_parent_mut, LoopId};
use crate::{fresh_reg, PassError};

/// Does the instruction write any register in `regs`?
fn writes_any(stmts: &[Stmt], regs: &[VReg]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Op(i) => i.dst.map(|d| regs.contains(&d)).unwrap_or(false),
        Stmt::Sync => false,
        Stmt::Loop(l) => {
            l.counter.map(|c| regs.contains(&c)).unwrap_or(false) || writes_any(&l.body, regs)
        }
    })
}

/// Apply prefetching to the loop addressed by `id`.
///
/// Returns the number of loads prefetched.
///
/// # Errors
///
/// * [`PassError::LoopNotFound`] — bad loop id.
/// * [`PassError::NoPrefetchCandidate`] — the body does not begin with
///   global loads whose addresses are registers defined outside the
///   body, or the body rewrites those destinations elsewhere.
pub fn prefetch_global_loads(kernel: &mut Kernel, id: &LoopId) -> Result<u32, PassError> {
    let l = get_loop(kernel, id).ok_or(PassError::LoopNotFound)?;

    // 1. The leading run of long-latency loads.
    let mut leading: Vec<Instr> = Vec::new();
    for s in &l.body {
        match s {
            Stmt::Op(i) if i.op.is_long_latency_mem() && i.op.has_dst() => {
                leading.push(i.clone());
            }
            _ => break,
        }
    }
    if leading.is_empty() {
        return Err(PassError::NoPrefetchCandidate);
    }
    let dsts: Vec<VReg> = leading.iter().map(|i| i.dst.expect("loads have dsts")).collect();
    let addr_regs: Vec<VReg> = leading
        .iter()
        .map(|i| i.srcs[0].reg().ok_or(PassError::NoPrefetchCandidate))
        .collect::<Result<_, _>>()?;

    // 2. The rest of the body must not redefine the load destinations,
    //    and the addresses may only change via accumulate-form updates.
    let rest = &l.body[leading.len()..];
    if writes_any(rest, &dsts) {
        return Err(PassError::NoPrefetchCandidate);
    }
    let mut last_addr_update: Option<usize> = None;
    for (pos, s) in rest.iter().enumerate() {
        if let Stmt::Op(i) = s {
            if let Some(d) = i.dst {
                if addr_regs.contains(&d) {
                    let is_accum = i.op == Op::IAdd && i.srcs[0].reg() == Some(d);
                    if !is_accum {
                        return Err(PassError::NoPrefetchCandidate);
                    }
                    last_addr_update = Some(pos);
                }
            }
        } else if let Stmt::Loop(inner) = s {
            if writes_any(std::slice::from_ref(&Stmt::Loop(inner.clone())), &addr_regs) {
                return Err(PassError::NoPrefetchCandidate);
            }
        }
    }

    // 3. Allocate buffer and staging registers.
    let bufs: Vec<VReg> = dsts.iter().map(|_| fresh_reg(kernel)).collect();
    let tmps: Vec<VReg> = dsts.iter().map(|_| fresh_reg(kernel)).collect();

    // Re-borrow the loop mutably and rebuild the body.
    let l = crate::loops::get_loop_mut(kernel, id).ok_or(PassError::LoopNotFound)?;
    let rest: Vec<Stmt> = l.body[leading.len()..].to_vec();

    let mut body: Vec<Stmt> = Vec::with_capacity(rest.len() + 2 * leading.len());
    // Consumers read the buffers instead of the old destinations.
    let substitute = |stmt: &mut Stmt| {
        fn subst(stmts: &mut [Stmt], dsts: &[VReg], bufs: &[VReg]) {
            for s in stmts {
                match s {
                    Stmt::Op(i) => {
                        for src in &mut i.srcs {
                            if let Some(r) = src.reg() {
                                if let Some(k) = dsts.iter().position(|d| *d == r) {
                                    *src = Operand::Reg(bufs[k]);
                                }
                            }
                        }
                    }
                    Stmt::Sync => {}
                    Stmt::Loop(inner) => subst(&mut inner.body, dsts, bufs),
                }
            }
        }
        subst(std::slice::from_mut(stmt), &dsts, &bufs);
    };

    let insert_at = last_addr_update.map(|p| p + 1).unwrap_or(0);
    let rest_len = rest.len();
    let mut staged = false;
    let stage = |body: &mut Vec<Stmt>| {
        for (k, ld) in leading.iter().enumerate() {
            let mut clone = ld.clone();
            clone.dst = Some(tmps[k]);
            body.push(Stmt::Op(clone));
        }
    };
    for (pos, mut s) in rest.into_iter().enumerate() {
        if pos == insert_at {
            // Issue next iteration's loads into the staging registers.
            stage(&mut body);
            staged = true;
        }
        substitute(&mut s);
        body.push(s);
    }
    if !staged {
        // The address update was the body's last statement (or the rest
        // was empty): stage at the very end.
        debug_assert!(insert_at >= rest_len);
        stage(&mut body);
    }
    // Rotate staging into the buffers for the next iteration.
    for (k, _) in leading.iter().enumerate() {
        body.push(Stmt::Op(Instr::new(Op::Mov, Some(bufs[k]), vec![tmps[k].into()])));
    }
    l.body = body;

    // 4. Prologue: the first tile's loads, into the buffers.
    let (parent, idx) = get_parent_mut(kernel, id)?;
    let prologue: Vec<Stmt> = leading
        .iter()
        .zip(&bufs)
        .map(|(ld, b)| {
            let mut clone = ld.clone();
            clone.dst = Some(*b);
            Stmt::Op(clone)
        })
        .collect();
    parent.splice(idx..idx, prologue);

    Ok(leading.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use gpu_ir::analysis::register_pressure;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Kernel, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    /// Sum 8 strided pairs: acc += in[p] + in[p+8]; p += 1.
    /// Allocation is padded so the final prefetch stays in bounds.
    fn pair_sum() -> Kernel {
        let mut b = KernelBuilder::new("pairs");
        let src = b.param(0);
        let out = b.param(1);
        let p = b.mov(src);
        let acc = b.mov(0.0f32);
        b.repeat(8, |b| {
            let x = b.ld_global(p, 0);
            let y = b.ld_global(p, 8);
            b.fmad_acc(x, 1.0f32, acc);
            b.fmad_acc(y, 1.0f32, acc);
            b.iadd_acc(p, 1i32);
        });
        b.st_global(out, 0, acc);
        b.finish()
    }

    fn run_pairs(k: &Kernel) -> f32 {
        let prog = linearize(k);
        // 17 words of data + pad (last prefetch reads words 8 and 16).
        let mut mem = DeviceMemory::new(20);
        for i in 0..17 {
            mem.global[i] = i as f32;
        }
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0, 18], &mut mem)
            .unwrap();
        mem.global[18]
    }

    #[test]
    fn prefetch_preserves_semantics() {
        let baseline = run_pairs(&pair_sum());
        let mut k = pair_sum();
        let id = find_loops(&k).remove(0);
        let n = prefetch_global_loads(&mut k, &id).unwrap();
        assert_eq!(n, 2);
        assert_eq!(run_pairs(&k), baseline);
    }

    /// Tile-style loop (Figure 2 shape): loads feed shared memory, a
    /// barrier-delimited compute phase follows. The staged prefetch
    /// values stay live across the compute phase, which is where the
    /// paper's "prefetching generally increases register usage" bites.
    fn tile_style() -> Kernel {
        let mut b = KernelBuilder::new("tile");
        let src = b.param(0);
        let out = b.param(1);
        b.alloc_shared(8);
        let p = b.mov(src);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            let x = b.ld_global(p, 0);
            let y = b.ld_global(p, 8);
            b.st_shared(0i32, 0, x);
            b.st_shared(1i32, 0, y);
            b.iadd_acc(p, 1i32);
            b.sync();
            let a = b.ld_shared(0i32, 0);
            let c = b.ld_shared(1i32, 0);
            let s = b.fadd(a, c);
            b.fmad_acc(s, 1.0f32, acc);
            b.sync();
        });
        b.st_global(out, 0, acc);
        b.finish()
    }

    #[test]
    fn prefetch_increases_register_pressure() {
        let base = register_pressure(&tile_style());
        let mut k = tile_style();
        let id = find_loops(&k).remove(0);
        prefetch_global_loads(&mut k, &id).unwrap();
        let pf = register_pressure(&k);
        assert!(pf.max_live > base.max_live, "prefetch {} !> base {}", pf.max_live, base.max_live);
    }

    #[test]
    fn prefetch_moves_loads_into_prologue() {
        let mut k = pair_sum();
        let id = find_loops(&k).remove(0);
        prefetch_global_loads(&mut k, &id).unwrap();
        // The two prologue loads now precede the loop statement.
        let loop_pos =
            k.body.iter().position(|s| matches!(s, Stmt::Loop(_))).expect("loop still present");
        let prologue_loads = k.body[..loop_pos]
            .iter()
            .filter_map(|s| s.as_instr())
            .filter(|i| i.op.is_long_latency_mem())
            .count();
        assert_eq!(prologue_loads, 2);
    }

    #[test]
    fn loop_without_leading_loads_is_rejected() {
        let mut b = KernelBuilder::new("none");
        let out = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            b.fmad_acc(1.0f32, 1.0f32, acc);
        });
        b.st_global(out, 0, acc);
        let mut k = b.finish();
        let id = find_loops(&k).remove(0);
        assert_eq!(prefetch_global_loads(&mut k, &id), Err(PassError::NoPrefetchCandidate));
    }

    #[test]
    fn non_accumulate_address_update_is_rejected() {
        let mut b = KernelBuilder::new("recompute");
        let src = b.param(0);
        let out = b.param(1);
        let p = b.mov(src);
        let acc = b.mov(0.0f32);
        b.for_loop(4, |b, i| {
            let v = b.ld_global(p, 0);
            b.fmad_acc(v, 1.0f32, acc);
            // p recomputed from scratch, not accumulated:
            let np = b.iadd(src, i);
            b.push_instr(Instr::new(Op::Mov, Some(p), vec![np.into()]));
        });
        b.st_global(out, 0, acc);
        let mut k = b.finish();
        let id = find_loops(&k).remove(0);
        assert_eq!(prefetch_global_loads(&mut k, &id), Err(PassError::NoPrefetchCandidate));
    }

    #[test]
    fn prefetch_interacts_with_barriers() {
        // Tile-style loop: load, store to shared, sync, consume, sync.
        let mut b = KernelBuilder::new("tile");
        let src = b.param(0);
        let out = b.param(1);
        b.alloc_shared(4);
        let p = b.mov(src);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            let v = b.ld_global(p, 0);
            b.st_shared(0i32, 0, v);
            b.sync();
            let sv = b.ld_shared(0i32, 0);
            b.fmad_acc(sv, 2.0f32, acc);
            b.sync();
            b.iadd_acc(p, 1i32);
        });
        b.st_global(out, 0, acc);
        let k0 = b.finish();

        let run = |k: &Kernel| {
            let prog = linearize(k);
            let mut mem = DeviceMemory::new(8);
            for i in 0..5 {
                mem.global[i] = (i + 1) as f32;
            }
            run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0, 6], &mut mem)
                .unwrap();
            mem.global[6]
        };

        let baseline = run(&k0);
        let mut k = k0.clone();
        let id = find_loops(&k).remove(0);
        prefetch_global_loads(&mut k, &id).unwrap();
        assert_eq!(run(&k), baseline);
    }
}
