//! Loop unrolling (section 3.1, "instruction count reduction").
//!
//! Partial unrolling by a factor `f` replicates the body `f` times inside
//! a loop of `trips / f` iterations; copies that read the loop counter
//! receive a rescaled value (`counter * f + j`). Complete unrolling
//! (`f == trips`) splices the copies into the parent with the counter
//! substituted by **constants** — which is what lets the address-folding
//! pass delete the per-iteration address arithmetic, reproducing Figure
//! 2(c)'s "replacing variable array indices with constants".

use gpu_ir::types::{Operand, VReg};
use gpu_ir::{Instr, Kernel, Loop, Op, Stmt};

use crate::loops::{get_loop, get_parent_mut, LoopId};
use crate::{fresh_reg, PassError};

/// Substitute every read of `from` with `to` in a statement tree.
fn substitute(stmts: &mut [Stmt], from: VReg, to: Operand) {
    for s in stmts {
        match s {
            Stmt::Op(i) => {
                for src in &mut i.srcs {
                    if src.reg() == Some(from) {
                        *src = to;
                    }
                }
            }
            Stmt::Sync => {}
            Stmt::Loop(l) => substitute(&mut l.body, from, to),
        }
    }
}

/// Whether any statement (recursively) writes `reg`.
fn writes(stmts: &[Stmt], reg: VReg) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Op(i) => i.dst == Some(reg),
        Stmt::Sync => false,
        Stmt::Loop(l) => l.counter == Some(reg) || writes(&l.body, reg),
    })
}

/// Unroll the loop addressed by `id` by `factor`.
///
/// `factor == 1` is a no-op; `factor == trip_count` unrolls completely,
/// removing the loop (and its control overhead) entirely.
///
/// # Errors
///
/// * [`PassError::LoopNotFound`] — `id` does not address a loop.
/// * [`PassError::ZeroFactor`] — `factor == 0`.
/// * [`PassError::TripNotDivisible`] — `factor` does not divide the trip
///   count (the paper's configurations always divide evenly).
pub fn unroll(kernel: &mut Kernel, id: &LoopId, factor: u32) -> Result<(), PassError> {
    if factor == 0 {
        return Err(PassError::ZeroFactor);
    }
    let l = get_loop(kernel, id).ok_or(PassError::LoopNotFound)?;
    let trips = l.trip_count;
    if factor == 1 {
        return Ok(());
    }
    if !trips.is_multiple_of(factor) {
        return Err(PassError::TripNotDivisible { trips, factor });
    }
    let counter = l.counter;
    let template = l.body.clone();
    // A body that *writes* the counter would alias with our rescaling;
    // generated kernels never do (the builder owns the counter).
    if let Some(c) = counter {
        if writes(&template, c) {
            return Err(PassError::LoopNotFound);
        }
    }

    if factor == trips {
        // Complete unroll: splice constant-substituted copies in place.
        let mut replacement: Vec<Stmt> = Vec::with_capacity(template.len() * trips as usize);
        for j in 0..trips {
            let mut copy = template.clone();
            if let Some(c) = counter {
                substitute(&mut copy, c, Operand::ImmI32(j as i32));
            }
            replacement.extend(copy);
        }
        let (parent, idx) = get_parent_mut(kernel, id)?;
        parent.splice(idx..=idx, replacement);
        return Ok(());
    }

    // Partial unroll: new body = f copies; copy j rescales the counter
    // into a fresh register (imad tmp = counter * f + j).
    let mut new_body: Vec<Stmt> = Vec::with_capacity((template.len() + 1) * factor as usize);
    let mut rescales: Vec<(u32, VReg)> = Vec::new();
    for j in 0..factor {
        let tmp = counter.map(|_| fresh_reg(kernel));
        if let Some(t) = tmp {
            rescales.push((j, t));
        }
        let mut copy = template.clone();
        if let (Some(c), Some(t)) = (counter, tmp) {
            substitute(&mut copy, c, Operand::Reg(t));
            new_body.push(Stmt::Op(Instr::new(
                Op::IMad,
                Some(t),
                vec![c.into(), Operand::ImmI32(factor as i32), Operand::ImmI32(j as i32)],
            )));
        }
        new_body.extend(copy);
    }

    let l = crate::loops::get_loop_mut(kernel, id).ok_or(PassError::LoopNotFound)?;
    *l = Loop { trip_count: trips / factor, counter, body: new_body };
    Ok(())
}

/// Unroll the loop addressed by `id` by `factor`, accepting factors
/// that do not divide the trip count.
///
/// The loop becomes `trips / factor` iterations of `factor` body
/// copies, followed by `trips % factor` constant-substituted epilogue
/// copies spliced after the loop. `factor >= trips` unrolls completely
/// (the fine-grid spaces clamp their open-ended unroll axis this way);
/// dividing factors delegate to [`unroll`] and produce no epilogue, so
/// the paper's original configurations are bit-identical through either
/// entry point.
///
/// # Errors
///
/// * [`PassError::LoopNotFound`] — `id` does not address a loop.
/// * [`PassError::ZeroFactor`] — `factor == 0`.
pub fn unroll_with_remainder(
    kernel: &mut Kernel,
    id: &LoopId,
    factor: u32,
) -> Result<(), PassError> {
    if factor == 0 {
        return Err(PassError::ZeroFactor);
    }
    let l = get_loop(kernel, id).ok_or(PassError::LoopNotFound)?;
    let trips = l.trip_count;
    if factor == 1 || trips == 0 {
        return Ok(());
    }
    if factor >= trips {
        return unroll(kernel, id, trips);
    }
    if trips.is_multiple_of(factor) {
        return unroll(kernel, id, factor);
    }
    let q = trips / factor;
    let r = trips % factor;
    let counter = l.counter;
    let template = l.body.clone();
    if let Some(c) = counter {
        if writes(&template, c) {
            return Err(PassError::LoopNotFound);
        }
    }
    // Epilogue: the trailing `r` iterations as constant-substituted
    // copies, exactly like a complete unroll of that tail.
    let mut epilogue: Vec<Stmt> = Vec::with_capacity(template.len() * r as usize);
    for j in 0..r {
        let mut copy = template.clone();
        if let Some(c) = counter {
            substitute(&mut copy, c, Operand::ImmI32((q * factor + j) as i32));
        }
        epilogue.extend(copy);
    }
    // Splice the epilogue in first, while the loop still addresses its
    // slot — when `q == 1` the delegated unroll below removes the loop
    // entirely, and the epilogue keeps its place after the splice.
    let (parent, idx) = get_parent_mut(kernel, id)?;
    parent.splice(idx + 1..idx + 1, epilogue);
    // Main loop: trim to the divisible prefix, then unroll it (complete
    // when q == 1, partial otherwise).
    let l = crate::loops::get_loop_mut(kernel, id).ok_or(PassError::LoopNotFound)?;
    l.trip_count = q * factor;
    unroll(kernel, id, factor)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use gpu_ir::analysis::dynamic_counts;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    /// out[i] = i*i for i in 0..16, via a counted loop.
    fn squares_kernel() -> Kernel {
        let mut b = KernelBuilder::new("sq");
        let dst = b.param(0);
        b.for_loop(16, |b, i| {
            let a = b.iadd(dst, i);
            let sq = b.imul(i, i);
            let f = b.i2f(sq);
            b.st_global(a, 0, f);
        });
        b.finish()
    }

    fn run(k: &Kernel) -> Vec<f32> {
        let prog = linearize(k);
        let mut mem = DeviceMemory::new(16);
        let launch = Launch::new(Dim::new_1d(1), Dim::new_1d(1));
        run_kernel(&prog, &launch, &[0], &mut mem).unwrap();
        mem.global
    }

    #[test]
    fn partial_unroll_preserves_semantics() {
        let baseline = run(&squares_kernel());
        for factor in [2, 4, 8] {
            let mut k = squares_kernel();
            let id = find_loops(&k).remove(0);
            unroll(&mut k, &id, factor).unwrap();
            assert_eq!(run(&k), baseline, "factor {factor}");
            let l = crate::loops::get_loop(&k, &id).unwrap();
            assert_eq!(l.trip_count, 16 / factor);
        }
    }

    #[test]
    fn complete_unroll_removes_loop() {
        let baseline = run(&squares_kernel());
        let mut k = squares_kernel();
        let id = find_loops(&k).remove(0);
        unroll(&mut k, &id, 16).unwrap();
        assert!(find_loops(&k).is_empty());
        assert_eq!(run(&k), baseline);
    }

    #[test]
    fn unroll_reduces_dynamic_loop_overhead() {
        let mut base = squares_kernel();
        let mut unrolled = squares_kernel();
        let id = find_loops(&base).remove(0);
        unroll(&mut unrolled, &id, 4).unwrap();
        let c0 = dynamic_counts(&base).instrs;
        let c1 = dynamic_counts(&unrolled).instrs;
        // 16 iterations of 3-instr overhead become 4, but each copy adds
        // one imad: 16*3 = 48 overhead -> 4*3 + 16 imad = 28.
        assert!(c1 < c0, "unrolled {c1} !< base {c0}");
        let _ = &mut base;
    }

    #[test]
    fn counterless_unroll_duplicates_body() {
        let mut b = KernelBuilder::new("acc");
        let dst = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(12, |b| {
            b.fmad_acc(2.0f32, 3.0f32, acc);
        });
        b.st_global(dst, 0, acc);
        let k0 = b.finish();

        let mut k = k0.clone();
        let id = find_loops(&k).remove(0);
        unroll(&mut k, &id, 3).unwrap();
        let prog = linearize(&k);
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 72.0);
        // No imads inserted for counterless loops.
        let l = crate::loops::get_loop(&k, &id).unwrap();
        assert_eq!(l.body.len(), 3);
    }

    #[test]
    fn remainder_unroll_preserves_semantics_for_any_factor() {
        let baseline = run(&squares_kernel());
        for factor in 1..=20u32 {
            let mut k = squares_kernel();
            let id = find_loops(&k).remove(0);
            unroll_with_remainder(&mut k, &id, factor).unwrap();
            assert_eq!(run(&k), baseline, "factor {factor}");
            if factor >= 9 {
                // q = trips/factor = 1: the main loop unrolls away too,
                // leaving only straight-line code (plus the epilogue).
                assert!(find_loops(&k).is_empty(), "factor {factor} should fully unroll");
            } else if factor > 1 {
                let l = crate::loops::get_loop(&k, &id).unwrap();
                assert_eq!(l.trip_count, 16 / factor, "factor {factor}");
            }
        }
    }

    #[test]
    fn remainder_unroll_matches_strict_unroll_on_divisors() {
        for factor in [2u32, 4, 8, 16] {
            let mut a = squares_kernel();
            let mut b = squares_kernel();
            let id = find_loops(&a).remove(0);
            unroll(&mut a, &id, factor).unwrap();
            unroll_with_remainder(&mut b, &id, factor).unwrap();
            assert_eq!(a, b, "factor {factor}");
        }
    }

    #[test]
    fn remainder_unroll_rejects_zero_factor() {
        let mut k = squares_kernel();
        let id = find_loops(&k).remove(0);
        assert_eq!(unroll_with_remainder(&mut k, &id, 0), Err(PassError::ZeroFactor));
    }

    #[test]
    fn non_divisible_factor_rejected() {
        let mut k = squares_kernel();
        let id = find_loops(&k).remove(0);
        assert_eq!(
            unroll(&mut k, &id, 3),
            Err(PassError::TripNotDivisible { trips: 16, factor: 3 })
        );
    }

    #[test]
    fn zero_factor_rejected() {
        let mut k = squares_kernel();
        let id = find_loops(&k).remove(0);
        assert_eq!(unroll(&mut k, &id, 0), Err(PassError::ZeroFactor));
    }

    #[test]
    fn factor_one_is_noop() {
        let mut k = squares_kernel();
        let before = k.clone();
        let id = find_loops(&k).remove(0);
        unroll(&mut k, &id, 1).unwrap();
        assert_eq!(k, before);
    }

    #[test]
    fn unrolling_nested_inner_loop() {
        let mut b = KernelBuilder::new("nest");
        let dst = b.param(0);
        let acc = b.mov(0.0f32);
        b.for_loop(4, |b, i| {
            b.for_loop(6, |b, j| {
                let ij = b.imul(i, j);
                let f = b.i2f(ij);
                b.fmad_acc(f, 1.0f32, acc);
            });
        });
        b.st_global(dst, 0, acc);
        let k0 = b.finish();

        let expected = {
            let prog = linearize(&k0);
            let mut mem = DeviceMemory::new(1);
            run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                .unwrap();
            mem.global[0]
        };

        let mut k = k0.clone();
        let inner = crate::loops::innermost_loops(&k).remove(0);
        unroll(&mut k, &inner, 2).unwrap();
        let prog = linearize(&k);
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], expected);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::loops::find_loops;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};
    use proptest::prelude::*;

    proptest! {
        /// Unrolling by any divisor of the trip count preserves the
        /// result of a counter-dependent accumulation.
        #[test]
        fn unroll_preserves_sums(trips in 1u32..=24, seed in 0i32..100) {
            let build = || {
                let mut b = KernelBuilder::new("p");
                let dst = b.param(0);
                let acc = b.mov(0.0f32);
                b.for_loop(trips, |b, i| {
                    let shifted = b.iadd(i, seed);
                    let f = b.i2f(shifted);
                    b.fmad_acc(f, 2.0f32, acc);
                });
                b.st_global(dst, 0, acc);
                b.finish()
            };
            let run = |k: &gpu_ir::Kernel| {
                let prog = linearize(k);
                let mut mem = DeviceMemory::new(1);
                run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                    .unwrap();
                mem.global[0]
            };
            let baseline = run(&build());
            for factor in 1..=trips {
                if !trips.is_multiple_of(factor) {
                    continue;
                }
                let mut k = build();
                let id = find_loops(&k).remove(0);
                unroll(&mut k, &id, factor).unwrap();
                prop_assert_eq!(run(&k), baseline);
            }
        }

        /// Remainder unrolling preserves the result for *every* factor,
        /// dividing or not, including factors past the trip count.
        #[test]
        fn remainder_unroll_preserves_sums(trips in 1u32..=24, factor in 1u32..=30, seed in 0i32..100) {
            let build = || {
                let mut b = KernelBuilder::new("p");
                let dst = b.param(0);
                let acc = b.mov(0.0f32);
                b.for_loop(trips, |b, i| {
                    let shifted = b.iadd(i, seed);
                    let f = b.i2f(shifted);
                    b.fmad_acc(f, 2.0f32, acc);
                });
                b.st_global(dst, 0, acc);
                b.finish()
            };
            let run = |k: &gpu_ir::Kernel| {
                let prog = linearize(k);
                let mut mem = DeviceMemory::new(1);
                run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                    .unwrap();
                mem.global[0]
            };
            let baseline = run(&build());
            let mut k = build();
            let id = find_loops(&k).remove(0);
            unroll_with_remainder(&mut k, &id, factor).unwrap();
            prop_assert_eq!(run(&k), baseline);
        }
    }
}
