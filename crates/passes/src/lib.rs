//! Optimization transformations over the kernel IR.
//!
//! Section 3.1 of the paper groups the optimizations it explores into
//! five categories; the mechanical ones — the ones a compiler applies to
//! code rather than a programmer applies to an algorithm — live here:
//!
//! * [`mod@unroll`] — loop unrolling, partial and complete, with
//!   constant-substituted counters (the "instruction count reduction"
//!   category; Figure 2(c)).
//! * [`fold`] — strength reduction of strided address updates after
//!   unrolling: "PTX shows that the group of memory operations only
//!   need the single base address calculation and use their constant
//!   offsets to avoid additional address calculations" (section 2.3).
//! * [`prefetch`] — hoisting global loads one iteration ahead into an
//!   "additional local variable (register)" (the "intra-thread
//!   parallelism" category; Figure 2(d)).
//! * [`spill`] — proactive, explicit register spilling to local memory
//!   (the "resource balancing" category; section 3.1).
//! * [`schedule`] — pressure-aware list scheduling of straight-line
//!   regions, the paper's §7 future-work item ("better control of
//!   scheduling and thus register usage").
//! * [`constfold`] — constant folding, immediate propagation, and dead
//!   code elimination: the clean-up that makes complete unrolling's
//!   constant indices actually cheaper.
//!
//! Work *redistribution* (tiling shape, per-thread tiling, work per
//! kernel invocation) changes the algorithmic decomposition, so those
//! knobs live in the kernel generators of `gpu-kernels`, as they do in
//! the paper's hand-written variants.
//!
//! Every pass preserves functional semantics; the test suites execute
//! transformed kernels against untransformed ones on the `gpu-sim`
//! interpreter.

pub mod constfold;
pub mod error;
pub mod fold;
pub mod loops;
pub mod prefetch;
pub mod schedule;
pub mod spill;
pub mod unroll;

pub use constfold::{fold_constants, FoldReport};
pub use error::PassError;
pub use fold::fold_strided_addresses;
pub use loops::{find_loops, innermost_loops, LoopId};
pub use prefetch::prefetch_global_loads;
pub use schedule::{schedule_for_pressure, ScheduleReport};
pub use spill::{spill_candidates, spill_registers};
pub use unroll::{unroll, unroll_with_remainder};

/// Allocate a fresh virtual register on a finished kernel (passes need
/// new temporaries after the builder is gone).
pub(crate) fn fresh_reg(kernel: &mut gpu_ir::Kernel) -> gpu_ir::types::VReg {
    let r = gpu_ir::types::VReg(kernel.num_vregs);
    kernel.num_vregs += 1;
    r
}

pub(crate) mod schedule_support {
    /// Max-live figure used by the scheduler's keep-if-better guard.
    pub fn pressure_of(kernel: &gpu_ir::Kernel) -> u32 {
        gpu_ir::analysis::register_pressure(kernel).max_live
    }
}
