//! Proactive, explicit register spilling (section 3.1,
//! "resource-balancing").
//!
//! "By reducing register usage, often a critical resource, more thread
//! blocks may be assigned to each SM. The resulting application may have
//! much better performance, despite the added latency from memory access
//! and additional instructions." [`spill_registers`] rewrites chosen
//! registers through per-thread local memory: every definition is
//! followed by a `st.local`, every use is preceded by a `ld.local` into
//! a fresh short-lived temporary. [`spill_candidates`] ranks registers
//! by live-range length, the heuristic a programmer applying this
//! optimization by hand would follow.

use std::collections::HashMap;

use gpu_ir::types::{Operand, VReg};
use gpu_ir::{Instr, Kernel, Op, Stmt};

use crate::PassError;

fn collect_counters(stmts: &[Stmt], out: &mut Vec<VReg>) {
    for s in stmts {
        if let Stmt::Loop(l) = s {
            if let Some(c) = l.counter {
                out.push(c);
            }
            collect_counters(&l.body, out);
        }
    }
}

fn rewrite(stmts: Vec<Stmt>, slots: &HashMap<VReg, i32>, next_reg: &mut u32) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len() * 2);
    for s in stmts {
        match s {
            Stmt::Op(mut i) => {
                // Reload each spilled register this instruction reads.
                let mut reloaded: HashMap<VReg, VReg> = HashMap::new();
                for src in &mut i.srcs {
                    if let Some(r) = src.reg() {
                        if let Some(&slot) = slots.get(&r) {
                            let t = *reloaded.entry(r).or_insert_with(|| {
                                let t = VReg(*next_reg);
                                *next_reg += 1;
                                out.push(Stmt::Op(Instr::new(
                                    Op::Ld(gpu_arch::MemorySpace::Local),
                                    Some(t),
                                    vec![Operand::ImmI32(slot)],
                                )));
                                t
                            });
                            *src = Operand::Reg(t);
                        }
                    }
                }
                // A definition of a spilled register is renamed to a
                // fresh register and written straight through to local
                // memory, so the original long live range disappears
                // entirely — only short def→store segments remain.
                let spilled_def = i.dst.and_then(|d| slots.get(&d).map(|&slot| (d, slot)));
                if let Some((_, slot)) = spilled_def {
                    let renamed = VReg(*next_reg);
                    *next_reg += 1;
                    i.dst = Some(renamed);
                    out.push(Stmt::Op(i));
                    out.push(Stmt::Op(Instr::new(
                        Op::St(gpu_arch::MemorySpace::Local),
                        None,
                        vec![Operand::ImmI32(slot), Operand::Reg(renamed)],
                    )));
                } else {
                    out.push(Stmt::Op(i));
                }
            }
            Stmt::Sync => out.push(Stmt::Sync),
            Stmt::Loop(mut l) => {
                l.body = rewrite(std::mem::take(&mut l.body), slots, next_reg);
                out.push(Stmt::Loop(l));
            }
        }
    }
    out
}

/// Spill `regs` through local memory, one word each.
///
/// Returns the number of local words used.
///
/// # Errors
///
/// [`PassError::CounterSpill`] if any requested register is a loop
/// counter (counters are maintained by loop control, not by code the
/// pass can instrument).
pub fn spill_registers(kernel: &mut Kernel, regs: &[VReg]) -> Result<u32, PassError> {
    if regs.is_empty() {
        return Ok(0);
    }
    let mut counters = Vec::new();
    collect_counters(&kernel.body, &mut counters);
    if regs.iter().any(|r| counters.contains(r)) {
        return Err(PassError::CounterSpill);
    }
    let slots: HashMap<VReg, i32> = regs.iter().enumerate().map(|(k, r)| (*r, k as i32)).collect();
    let mut next = kernel.num_vregs;
    kernel.body = rewrite(std::mem::take(&mut kernel.body), &slots, &mut next);
    kernel.num_vregs = next;
    Ok(slots.len() as u32)
}

/// Rank registers by flattened live-range length (longest first) and
/// return up to `count` spill candidates. Loop counters are excluded.
pub fn spill_candidates(kernel: &Kernel, count: usize) -> Vec<VReg> {
    // Flatten in syntactic order, recording first/last touch positions.
    fn walk(stmts: &[Stmt], pos: &mut usize, touch: &mut HashMap<VReg, (usize, usize)>) {
        for s in stmts {
            match s {
                Stmt::Op(i) => {
                    let p = *pos;
                    *pos += 1;
                    for r in i.uses().chain(i.dst) {
                        let e = touch.entry(r).or_insert((p, p));
                        e.1 = p;
                    }
                }
                Stmt::Sync => *pos += 1,
                Stmt::Loop(l) => walk(&l.body, pos, touch),
            }
        }
    }
    let mut touch = HashMap::new();
    let mut pos = 0;
    walk(&kernel.body, &mut pos, &mut touch);

    let mut counters = Vec::new();
    collect_counters(&kernel.body, &mut counters);

    let mut ranked: Vec<(usize, VReg)> = touch
        .into_iter()
        .filter(|(r, _)| !counters.contains(r))
        .map(|(r, (f, l))| (l - f, r))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.into_iter().take(count).map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::analysis::{instruction_mix, register_pressure};
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    /// Kernel with several long-lived values: bases and an accumulator.
    fn long_lived() -> (gpu_ir::Kernel, Vec<VReg>) {
        let mut b = KernelBuilder::new("ll");
        let src = b.param(0);
        let out = b.param(1);
        let base_a = b.mov(src);
        let base_b = b.iadd(src, 8i32);
        let acc = b.mov(0.0f32);
        b.repeat(8, |b| {
            let x = b.ld_global(base_a, 0);
            let y = b.ld_global(base_b, 0);
            let s = b.fadd(x, y);
            b.fmad_acc(s, 1.0f32, acc);
            b.iadd_acc(base_a, 1i32);
            b.iadd_acc(base_b, 1i32);
        });
        b.st_global(out, 0, acc);
        (b.finish(), vec![base_a, base_b])
    }

    fn run_ll(k: &gpu_ir::Kernel) -> f32 {
        let prog = linearize(k);
        let mut mem = DeviceMemory::new(18);
        for i in 0..16 {
            mem.global[i] = (i * i) as f32;
        }
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0, 17], &mut mem)
            .unwrap();
        mem.global[17]
    }

    #[test]
    fn spilling_preserves_semantics() {
        let (k0, bases) = long_lived();
        let baseline = run_ll(&k0);
        let mut k = k0.clone();
        let words = spill_registers(&mut k, &bases).unwrap();
        assert_eq!(words, 2);
        assert_eq!(run_ll(&k), baseline);
    }

    #[test]
    fn spilling_reduces_register_pressure_and_adds_local_ops() {
        let (k0, bases) = long_lived();
        let before = register_pressure(&k0);
        let mix_before = instruction_mix(&k0);
        let mut k = k0.clone();
        spill_registers(&mut k, &bases).unwrap();
        let after = register_pressure(&k);
        let mix_after = instruction_mix(&k);
        assert!(
            after.max_live < before.max_live,
            "spilled {} !< original {}",
            after.max_live,
            before.max_live
        );
        // Local traffic appears (the paper's "added latency from memory
        // access and additional instructions").
        assert!(mix_after.offchip_loads > mix_before.offchip_loads);
        assert!(mix_after.instrs > mix_before.instrs);
    }

    #[test]
    fn spilling_float_accumulator_roundtrips() {
        let mut b = KernelBuilder::new("facc");
        let out = b.param(0);
        let acc = b.mov(1.5f32);
        b.repeat(4, |b| {
            b.fmad_acc(2.0f32, 1.0f32, acc);
        });
        b.st_global(out, 0, acc);
        let k0 = b.finish();
        let mut k = k0.clone();
        spill_registers(&mut k, &[acc]).unwrap();

        let run = |k: &gpu_ir::Kernel| {
            let prog = linearize(k);
            let mut mem = DeviceMemory::new(1);
            run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                .unwrap();
            mem.global[0]
        };
        assert_eq!(run(&k), run(&k0));
        assert_eq!(run(&k), 1.5 + 4.0 * 2.0);
    }

    #[test]
    fn counter_spill_is_rejected() {
        let mut b = KernelBuilder::new("c");
        let mut counter = None;
        b.for_loop(4, |b, i| {
            counter = Some(i);
            b.iadd(i, 1i32);
        });
        let mut k = b.finish();
        let err = spill_registers(&mut k, &[counter.unwrap()]).unwrap_err();
        assert_eq!(err, PassError::CounterSpill);
    }

    #[test]
    fn empty_spill_list_is_noop() {
        let (k0, _) = long_lived();
        let mut k = k0.clone();
        assert_eq!(spill_registers(&mut k, &[]).unwrap(), 0);
        assert_eq!(k, k0);
    }

    #[test]
    fn candidates_prefer_long_ranges() {
        let (k, bases) = long_lived();
        let cands = spill_candidates(&k, 4);
        // The two base pointers and the accumulator all live across the
        // loop; they must rank above the per-iteration temporaries.
        assert!(cands.contains(&bases[0]), "{cands:?}");
        assert!(cands.contains(&bases[1]), "{cands:?}");
    }

    #[test]
    fn candidates_exclude_counters() {
        let mut b = KernelBuilder::new("c");
        let out = b.param(0);
        let acc = b.mov(0.0f32);
        b.for_loop(16, |b, i| {
            let f = b.i2f(i);
            b.fmad_acc(f, 1.0f32, acc);
        });
        b.st_global(out, 0, acc);
        let k = b.finish();
        let mut counters = Vec::new();
        collect_counters(&k.body, &mut counters);
        let cands = spill_candidates(&k, 10);
        assert!(cands.iter().all(|c| !counters.contains(c)));
    }

    #[test]
    fn spilled_register_used_twice_reloads_once() {
        let mut b = KernelBuilder::new("twice");
        let out = b.param(0);
        let x = b.mov(3.0f32);
        let y = b.fmul(x, x); // x used twice in one instruction
        b.st_global(out, 0, y);
        let mut k = b.finish();
        spill_registers(&mut k, &[x]).unwrap();
        let loads = {
            let mut n = 0;
            k.visit_instrs(|i| {
                if matches!(i.op, Op::Ld(gpu_arch::MemorySpace::Local)) {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(loads, 1);

        let prog = linearize(&k);
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem).unwrap();
        assert_eq!(mem.global[0], 9.0);
    }
}
