//! Pressure-aware list scheduling — the paper's first future-work item:
//! "we would like to achieve better control of scheduling and thus
//! register usage, so that the performance of applications after small
//! code changes does not radically change".
//!
//! [`schedule_for_pressure`] reorders the instructions of each
//! straight-line region (no reordering across barriers or loop
//! boundaries) to shorten live ranges: a Sethi–Ullman-flavoured
//! demand-first schedule that walks the dependence DAG from each sink,
//! materialising short-lived operands immediately before their
//! consumers. Memory operations keep their relative order (the IR
//! carries no alias information), so functional behaviour is untouched
//! — property-tested against the interpreter — and the pass keeps the
//! original order whenever the reordering would not lower max-live.

use std::collections::HashMap;

use gpu_ir::types::VReg;
use gpu_ir::{Instr, Kernel, Stmt};

/// Outcome of scheduling one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleReport {
    /// Straight-line regions processed.
    pub regions: u32,
    /// Instructions that changed position.
    pub moved: u32,
}

/// Dependence edges within one straight-line region.
fn build_deps(instrs: &[Instr]) -> Vec<Vec<usize>> {
    let mut last_def: HashMap<VReg, usize> = HashMap::new();
    let mut last_uses: HashMap<VReg, Vec<usize>> = HashMap::new();
    let mut last_mem: Option<usize> = None;
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];

    for (i, ins) in instrs.iter().enumerate() {
        let mut pred = Vec::new();
        // RAW: reads wait for the defining instruction.
        for r in ins.uses() {
            if let Some(&d) = last_def.get(&r) {
                pred.push(d);
            }
        }
        if let Some(d) = ins.dst {
            // WAR: a write waits for earlier reads of the register.
            if let Some(users) = last_uses.get(&d) {
                pred.extend(users.iter().copied());
            }
            // WAW: and for the earlier write.
            if let Some(&w) = last_def.get(&d) {
                pred.push(w);
            }
        }
        // Memory operations stay in order (no alias analysis).
        if ins.op.mem_space().is_some() {
            if let Some(m) = last_mem {
                pred.push(m);
            }
            last_mem = Some(i);
        }
        pred.sort_unstable();
        pred.dedup();
        deps[i] = pred;

        for r in ins.uses() {
            last_uses.entry(r).or_default().push(i);
        }
        if let Some(d) = ins.dst {
            last_def.insert(d, i);
            last_uses.remove(&d);
        }
    }
    deps
}

/// Schedule one straight-line region demand-first (Sethi–Ullman
/// flavoured): walk the dependence DAG depth-first from each sink in
/// original order, emitting an instruction right after the producers it
/// needs — so short-lived operands materialise immediately before their
/// consumer instead of piling up.
fn schedule_region(instrs: Vec<Instr>) -> (Vec<Instr>, u32) {
    let n = instrs.len();
    if n < 3 {
        return (instrs, 0);
    }
    let mut deps = build_deps(&instrs);
    let mut has_succ = vec![false; n];
    for pred in deps.iter() {
        for &p in pred {
            has_succ[p] = true;
        }
    }

    // Sethi–Ullman ordering: visit the *deeper* operand subtree first so
    // shallow, short-lived operands materialise right before their
    // consumer. Dependences always point backwards, so depths compute in
    // index order.
    let mut depth = vec![0u32; n];
    for i in 0..n {
        depth[i] = deps[i].iter().map(|&p| depth[p] + 1).max().unwrap_or(0);
    }
    for pred in deps.iter_mut() {
        // Equal depths (e.g. a load serialised behind the memory chain
        // vs the compute chain consuming it): visit the later
        // instruction's subtree first so the earlier, shallow producer
        // lands right before its consumer.
        pred.sort_by_key(|&p| (std::cmp::Reverse(depth[p]), std::cmp::Reverse(p)));
    }

    let mut emitted = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Iterative post-order DFS over predecessors.
    let visit = |root: usize, emitted: &mut Vec<bool>, order: &mut Vec<usize>| {
        if emitted[root] {
            return;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if emitted[node] {
                stack.pop();
                continue;
            }
            if *next < deps[node].len() {
                let p = deps[node][*next];
                *next += 1;
                if !emitted[p] {
                    stack.push((p, 0));
                }
            } else {
                emitted[node] = true;
                order.push(node);
                stack.pop();
            }
        }
    };
    // Sinks first (in original order), then anything unreachable from a
    // sink (dead code) in original order.
    for (i, _) in has_succ.iter().enumerate().filter(|(_, &hs)| !hs) {
        visit(i, &mut emitted, &mut order);
    }
    for i in 0..n {
        visit(i, &mut emitted, &mut order);
    }
    debug_assert_eq!(order.len(), n);

    let moved = order.iter().enumerate().filter(|&(pos, &orig)| pos != orig).count() as u32;
    let out = order.into_iter().map(|i| instrs[i].clone()).collect();
    (out, moved)
}

fn walk(stmts: Vec<Stmt>, report: &mut ScheduleReport) -> Vec<Stmt> {
    // Split into runs of Stmt::Op separated by Sync/Loop; schedule each
    // run independently (values defined in a run and consumed later are
    // sinks' predecessors or dead-at-region-end and stay scheduled —
    // dependence edges keep them before nothing, so they simply retain
    // relative order among themselves).
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut run: Vec<Instr> = Vec::new();
    let flush = |run: &mut Vec<Instr>, out: &mut Vec<Stmt>, report: &mut ScheduleReport| {
        if !run.is_empty() {
            report.regions += 1;
            let (sched, moved) = schedule_region(std::mem::take(run));
            report.moved += moved;
            out.extend(sched.into_iter().map(Stmt::Op));
        }
    };

    for s in stmts {
        match s {
            Stmt::Op(i) => run.push(i),
            Stmt::Sync => {
                flush(&mut run, &mut out, report);
                out.push(Stmt::Sync);
            }
            Stmt::Loop(mut l) => {
                flush(&mut run, &mut out, report);
                l.body = walk(std::mem::take(&mut l.body), report);
                out.push(Stmt::Loop(l));
            }
        }
    }
    flush(&mut run, &mut out, report);
    out
}

/// Reschedule every straight-line region of `kernel` to reduce register
/// pressure, keeping the original schedule whenever the reordering does
/// not actually lower the max-live figure — so the pass never makes a
/// kernel worse (the predictability the paper's future work asks for).
///
/// Functional behaviour is preserved: dependences and memory order are
/// respected within regions, and nothing moves across barriers or loop
/// boundaries.
pub fn schedule_for_pressure(kernel: &mut Kernel) -> ScheduleReport {
    let before = crate::schedule_support::pressure_of(kernel);
    let original = kernel.body.clone();
    let mut report = ScheduleReport::default();
    kernel.body = walk(std::mem::take(&mut kernel.body), &mut report);
    let after = crate::schedule_support::pressure_of(kernel);
    if after >= before {
        kernel.body = original;
        report.moved = 0;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_ir::analysis::register_pressure;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    /// All values produced up front, consumed at the end — the worst
    /// case for pressure, fully repairable by scheduling.
    fn batched_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("batched");
        let out = b.param(0);
        let vals: Vec<_> = (0..n).map(|i| b.mov(i as f32 + 1.0)).collect();
        let mut acc = b.mov(0.0f32);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st_global(out, 0, acc);
        b.finish()
    }

    fn run_scalar(k: &Kernel) -> f32 {
        let prog = linearize(k);
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
            .expect("runs");
        mem.global[0]
    }

    #[test]
    fn scheduling_reduces_pressure_on_batched_defs() {
        let k0 = batched_kernel(12);
        let before = register_pressure(&k0);
        let baseline = run_scalar(&k0);

        let mut k = k0.clone();
        let report = schedule_for_pressure(&mut k);
        let after = register_pressure(&k);
        assert!(report.moved > 0);
        assert!(
            after.max_live < before.max_live,
            "scheduled {} !< original {}",
            after.max_live,
            before.max_live
        );
        assert_eq!(run_scalar(&k), baseline);
    }

    #[test]
    fn memory_order_is_preserved() {
        // st a; ld a; st a — any reorder changes the result.
        let mut b = KernelBuilder::new("mem");
        let out = b.param(0);
        b.st_global(out, 0, 1.0f32);
        let x = b.ld_global(out, 0);
        let y = b.fadd(x, 1.0f32);
        b.st_global(out, 0, y);
        let z = b.ld_global(out, 0);
        b.st_global(out, 1, z);
        let k0 = b.finish();
        let baseline = {
            let prog = linearize(&k0);
            let mut mem = DeviceMemory::new(2);
            run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                .expect("runs");
            mem.global.clone()
        };
        let mut k = k0.clone();
        schedule_for_pressure(&mut k);
        let prog = linearize(&k);
        let mut mem = DeviceMemory::new(2);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
            .expect("runs");
        assert_eq!(mem.global, baseline);
        assert_eq!(mem.global[1], 2.0);
    }

    #[test]
    fn loop_bodies_schedule_independently() {
        let mut b = KernelBuilder::new("loopy");
        let out = b.param(0);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            let xs: Vec<_> = (0..6).map(|i| b.mov(i as f32)).collect();
            for x in xs {
                b.fmad_acc(x, 1.0f32, acc);
            }
        });
        b.st_global(out, 0, acc);
        let k0 = b.finish();
        let baseline = run_scalar(&k0);
        let mut k = k0.clone();
        let r = schedule_for_pressure(&mut k);
        assert!(r.regions >= 2); // prologue+epilogue region and loop body
        assert_eq!(run_scalar(&k), baseline);
    }

    #[test]
    fn values_live_past_a_barrier_are_respected() {
        let mut b = KernelBuilder::new("barrier");
        let out = b.param(0);
        b.alloc_shared(4);
        let keep = b.mov(7.0f32); // used after the sync
        let tmp = b.mov(1.0f32);
        b.st_shared(0i32, 0, tmp);
        b.sync();
        let s = b.ld_shared(0i32, 0);
        let sum = b.fadd(s, keep);
        b.st_global(out, 0, sum);
        let k0 = b.finish();
        let mut k = k0.clone();
        schedule_for_pressure(&mut k);
        // 32 threads so the barrier is a real join.
        let prog = linearize(&k);
        let mut mem = DeviceMemory::new(1);
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(32)), &[0], &mut mem)
            .expect("runs");
        assert_eq!(mem.global[0], 8.0);
    }

    #[test]
    fn tiny_regions_untouched() {
        let mut b = KernelBuilder::new("tiny");
        let out = b.param(0);
        b.st_global(out, 0, 1.0f32);
        let k0 = b.finish();
        let mut k = k0.clone();
        let r = schedule_for_pressure(&mut k);
        assert_eq!(r.moved, 0);
        assert_eq!(k, k0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Scheduling never raises pressure and never changes results on
        /// randomized mixed compute/memory kernels.
        #[test]
        fn schedule_safe_and_never_worse(
            widths in proptest::collection::vec(1usize..6, 1..5),
            trips in 1u32..6,
            seed in 0u64..1000,
        ) {
            let mut b = KernelBuilder::new("rand");
            let out = b.param(0);
            let acc = b.mov(0.0f32);
            let mut salt = seed;
            b.repeat(trips, |b| {
                for &w in &widths {
                    let vals: Vec<_> = (0..w)
                        .map(|i| {
                            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
                            b.mov((salt % 13) as f32 + i as f32)
                        })
                        .collect();
                    for v in vals {
                        b.fmad_acc(v, 0.5f32, acc);
                    }
                    b.st_global(out, 1, acc);
                }
            });
            b.st_global(out, 0, acc);
            let k0 = b.finish();

            let run = |k: &gpu_ir::Kernel| {
                let prog = linearize(k);
                let mut mem = DeviceMemory::new(2);
                run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0], &mut mem)
                    .expect("runs");
                mem.global.clone()
            };
            let baseline = run(&k0);
            let p0 = gpu_ir::analysis::register_pressure(&k0);

            let mut k = k0.clone();
            schedule_for_pressure(&mut k);
            prop_assert_eq!(run(&k), baseline);
            let p1 = gpu_ir::analysis::register_pressure(&k);
            prop_assert!(p1.max_live <= p0.max_live,
                "scheduling raised pressure {} -> {}", p0.max_live, p1.max_live);
        }
    }
}
