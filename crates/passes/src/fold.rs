//! Strength reduction of strided address updates.
//!
//! After unrolling, a loop body contains `f` copies of `index += stride`
//! with loads between them. The G80's `[reg + imm]` addressing makes all
//! but one of those adds redundant: fold the running stride into the
//! load/store offsets and keep a single `index += f * stride` at the end
//! of the body. Section 2.3 of the paper observes exactly this in nvcc's
//! PTX output: "the group of memory operations only need the single base
//! address calculation and use their constant offsets".

use std::collections::{BTreeMap, HashMap, HashSet};

use gpu_ir::types::{Operand, VReg};
use gpu_ir::{Instr, Kernel, Op, Stmt};

/// Does this instruction have the accumulate shape `IAdd r, r, imm`?
fn accumulate_of(i: &Instr) -> Option<(VReg, i32)> {
    if i.op != Op::IAdd {
        return None;
    }
    let dst = i.dst?;
    match (&i.srcs[0], &i.srcs[1]) {
        (Operand::Reg(a), Operand::ImmI32(k)) if *a == dst => Some((dst, *k)),
        _ => None,
    }
}

/// Is `reg` the address operand (and nothing else) of this memory op?
fn only_address_use(i: &Instr, reg: VReg) -> bool {
    if i.op.mem_space().is_none() {
        return false;
    }
    let addr_is_reg = i.srcs[0].reg() == Some(reg);
    let other_uses = i.srcs[1..].iter().any(|s| s.reg() == Some(reg));
    addr_is_reg && !other_uses && i.dst != Some(reg)
}

/// Registers eligible for folding within one body: every write is an
/// accumulate and every other appearance is a memory-address use at the
/// top level of this body.
fn eligible_regs(body: &[Stmt]) -> HashSet<VReg> {
    let mut candidates: HashMap<VReg, bool> = HashMap::new(); // reg -> still ok
    let mut seen_accum: HashSet<VReg> = HashSet::new();

    // Any register mentioned inside a nested loop or in a non-foldable
    // role is disqualified.
    fn mentions(stmts: &[Stmt], out: &mut HashSet<VReg>) {
        for s in stmts {
            match s {
                Stmt::Op(i) => {
                    if let Some(d) = i.dst {
                        out.insert(d);
                    }
                    out.extend(i.uses());
                }
                Stmt::Sync => {}
                Stmt::Loop(l) => {
                    if let Some(c) = l.counter {
                        out.insert(c);
                    }
                    mentions(&l.body, out);
                }
            }
        }
    }

    let mut nested: HashSet<VReg> = HashSet::new();
    for s in body {
        match s {
            Stmt::Op(i) => {
                if let Some((r, _)) = accumulate_of(i) {
                    seen_accum.insert(r);
                    candidates.entry(r).or_insert(true);
                    continue;
                }
                // Non-accumulate statement: every register it touches in
                // a non-address role is disqualified.
                for r in i.uses() {
                    if !only_address_use(i, r) {
                        candidates.insert(r, false);
                    }
                }
                if let Some(d) = i.dst {
                    candidates.insert(d, false);
                }
            }
            Stmt::Sync => {}
            Stmt::Loop(l) => {
                if let Some(c) = l.counter {
                    nested.insert(c);
                }
                mentions(&l.body, &mut nested);
            }
        }
    }

    seen_accum
        .into_iter()
        .filter(|r| candidates.get(r).copied().unwrap_or(false) && !nested.contains(r))
        .collect()
}

/// Fold one body in place; returns the number of deleted instructions.
fn fold_body(body: &mut Vec<Stmt>) -> u32 {
    // Recurse into nested loops first.
    let mut removed = 0;
    for s in body.iter_mut() {
        if let Stmt::Loop(l) = s {
            removed += fold_body(&mut l.body);
        }
    }

    let eligible = eligible_regs(body);
    if eligible.is_empty() {
        return removed;
    }

    // Ordered by register so the materialised accumulates come out in a
    // stable order — HashMap iteration order varies per process, and the
    // resulting instruction shuffle cascades into different spill choices
    // downstream.
    let mut delta: BTreeMap<VReg, i64> = BTreeMap::new();
    let mut out: Vec<Stmt> = Vec::with_capacity(body.len());
    for s in body.drain(..) {
        match s {
            Stmt::Op(i) => {
                if let Some((r, k)) = accumulate_of(&i) {
                    if eligible.contains(&r) {
                        *delta.entry(r).or_insert(0) += i64::from(k);
                        removed += 1;
                        continue;
                    }
                }
                let mut i = i;
                if i.op.mem_space().is_some() {
                    if let Some(r) = i.srcs[0].reg() {
                        if let Some(d) = delta.get(&r) {
                            i.offset = (i64::from(i.offset) + d) as i32;
                        }
                    }
                }
                out.push(Stmt::Op(i));
            }
            other => out.push(other),
        }
    }
    // Materialise each register's total stride once, at body end.
    for (r, d) in delta {
        if d != 0 {
            out.push(Stmt::Op(Instr::new(
                Op::IAdd,
                Some(r),
                vec![r.into(), Operand::ImmI32(d as i32)],
            )));
            removed -= 1;
        }
    }
    *body = out;
    removed
}

/// Fold strided address updates in every loop body of `kernel`.
///
/// Returns the net number of instructions removed. Statements outside
/// loops are untouched (there is nothing repeated to fold).
pub fn fold_strided_addresses(kernel: &mut Kernel) -> u32 {
    let mut removed = 0;
    for s in kernel.body.iter_mut() {
        if let Stmt::Loop(l) = s {
            removed += fold_body(&mut l.body);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use crate::unroll::unroll;
    use gpu_ir::analysis::dynamic_counts;
    use gpu_ir::build::KernelBuilder;
    use gpu_ir::linear::linearize;
    use gpu_ir::{Dim, Launch};
    use gpu_sim::interp::{run_kernel, DeviceMemory};

    /// Strided copy: out[i] = in[i] for 16 words using pointer bumps.
    fn strided_copy() -> Kernel {
        let mut b = KernelBuilder::new("copy");
        let src = b.param(0);
        let dst = b.param(1);
        let ps = b.mov(src);
        let pd = b.mov(dst);
        b.repeat(16, |b| {
            let v = b.ld_global(ps, 0);
            b.st_global(pd, 0, v);
            b.iadd_acc(ps, 1i32);
            b.iadd_acc(pd, 1i32);
        });
        b.finish()
    }

    fn run_copy(k: &Kernel) -> Vec<f32> {
        let prog = linearize(k);
        let mut mem = DeviceMemory::new(32);
        for i in 0..16 {
            mem.global[i] = (i * 3) as f32;
        }
        run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0, 16], &mut mem)
            .unwrap();
        mem.global[16..].to_vec()
    }

    #[test]
    fn fold_alone_is_identity_on_single_accumulates() {
        // One accumulate per register per iteration: fold removes it and
        // reinserts an identical one — net zero, semantics identical.
        let baseline = run_copy(&strided_copy());
        let mut k = strided_copy();
        let removed = fold_strided_addresses(&mut k);
        assert_eq!(removed, 0);
        assert_eq!(run_copy(&k), baseline);
    }

    #[test]
    fn unroll_then_fold_collapses_address_arithmetic() {
        let baseline = run_copy(&strided_copy());

        let mut k = strided_copy();
        let id = find_loops(&k).remove(0);
        unroll(&mut k, &id, 4).unwrap();
        let before = dynamic_counts(&k).instrs;
        let removed = fold_strided_addresses(&mut k);
        let after = dynamic_counts(&k).instrs;

        // 4 copies × 2 accumulates collapse to 2: 6 removed per
        // iteration, 4 iterations = static 6, dynamic 24.
        assert_eq!(removed, 6);
        assert_eq!(before - after, 24);
        assert_eq!(run_copy(&k), baseline);

        // The folded loads carry constant offsets 0..3.
        let l = crate::loops::get_loop(&k, &id).unwrap();
        let offsets: Vec<i32> = l
            .body
            .iter()
            .filter_map(|s| s.as_instr())
            .filter(|i| matches!(i.op, Op::Ld(_)))
            .map(|i| i.offset)
            .collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn complete_unroll_then_fold_deletes_all_updates() {
        let baseline = run_copy(&strided_copy());
        let mut k = strided_copy();
        let id = find_loops(&k).remove(0);
        unroll(&mut k, &id, 16).unwrap();
        // Completely unrolled code sits at kernel top level, not in a
        // loop: folding applies to loop bodies only, so the result must
        // still be correct and untouched.
        let removed = fold_strided_addresses(&mut k);
        assert_eq!(removed, 0);
        assert_eq!(run_copy(&k), baseline);
    }

    #[test]
    fn register_used_arithmetically_is_not_folded() {
        // The pointer is also an operand of an imul: folding must leave
        // its accumulates alone.
        let mut b = KernelBuilder::new("mixed");
        let dst = b.param(0);
        let p = b.mov(dst);
        let acc = b.mov(0.0f32);
        b.repeat(4, |b| {
            let v = b.ld_global(p, 0);
            b.fmad_acc(v, 1.0f32, acc);
            let scaled = b.imul(p, 2i32); // non-address use
            let f = b.i2f(scaled);
            b.fmad_acc(f, 0.0f32, acc);
            b.iadd_acc(p, 1i32);
        });
        b.st_global(dst, 0, acc);
        let mut k = b.finish();
        let before = k.clone();
        let removed = fold_strided_addresses(&mut k);
        assert_eq!(removed, 0);
        assert_eq!(k, before);
    }

    #[test]
    fn register_touched_in_nested_loop_is_not_folded() {
        let mut b = KernelBuilder::new("nested");
        let dst = b.param(0);
        let p = b.mov(dst);
        b.repeat(4, |b| {
            b.iadd_acc(p, 1i32);
            b.repeat(2, |b| {
                b.ld_global(p, 0);
            });
        });
        let mut k = b.finish();
        let before = k.clone();
        fold_strided_addresses(&mut k);
        assert_eq!(k, before);
    }

    #[test]
    fn fold_handles_interleaved_strides() {
        // load; p += 2; load; p += 3 → offsets 0 and 2, one p += 5.
        let mut b = KernelBuilder::new("interleave");
        let src = b.param(0);
        let acc = b.mov(0.0f32);
        let p = b.mov(src);
        b.repeat(3, |b| {
            let a = b.ld_global(p, 0);
            b.fmad_acc(a, 1.0f32, acc);
            b.iadd_acc(p, 2i32);
            let c = b.ld_global(p, 0);
            b.fmad_acc(c, 1.0f32, acc);
            b.iadd_acc(p, 3i32);
        });
        let out = b.param(1);
        b.st_global(out, 0, acc);
        let k0 = b.finish();

        let run = |k: &Kernel| {
            let prog = linearize(k);
            let mut mem = DeviceMemory::new(20);
            for i in 0..16 {
                mem.global[i] = (i + 1) as f32;
            }
            run_kernel(&prog, &Launch::new(Dim::new_1d(1), Dim::new_1d(1)), &[0, 16], &mut mem)
                .unwrap();
            mem.global[16]
        };

        let baseline = run(&k0);
        let mut k = k0.clone();
        let removed = fold_strided_addresses(&mut k);
        assert_eq!(removed, 1); // two accumulates -> one
        assert_eq!(run(&k), baseline);
    }
}
