//! Every transformation pass must preserve shared-memory race-freedom:
//! a kernel the static detector proves clean stays clean through any
//! pipeline, and a racy kernel is never laundered into a clean one.
//! Both directions are checked against the static analysis
//! (`gpu_ir::analysis::races`) and, for the positive direction, against
//! the dynamic race oracle (`gpu_sim::interp::run_kernel_checked`).

use gpu_ir::analysis::analyze_races;
use gpu_ir::build::KernelBuilder;
use gpu_ir::linear::linearize;
use gpu_ir::types::Special;
use gpu_ir::{Dim, Kernel, Launch};
use gpu_passes::{
    find_loops, fold_constants, fold_strided_addresses, innermost_loops, prefetch_global_loads,
    schedule_for_pressure, spill_candidates, spill_registers, unroll,
};
use gpu_sim::interp::{run_kernel_checked, DeviceMemory};
use proptest::prelude::*;

const THREADS: u32 = 8;

/// A race-free staged-reversal stream over `iters * THREADS` words: each
/// iteration every thread loads one input word, stages it in shared
/// memory, synchronizes, reads its mirror thread's word, accumulates,
/// and synchronizes again before the tile is overwritten. The leading
/// global load makes the loop prefetchable; the barrier pair makes the
/// shared traffic race-free.
fn staged_reversal(iters: u32, chain: u32) -> Kernel {
    let mut b = KernelBuilder::new("stage_rev");
    let src = b.param(0);
    let dst = b.param(1);
    b.alloc_shared(THREADS * 4);
    let tid = b.read_special(Special::TidX);
    let pa = b.iadd(src, tid);
    let acc = b.mov(0.0f32);
    let rev_base = b.mov((THREADS as i32) - 1);
    let rev = b.isub(rev_base, tid);
    b.repeat(iters, |b| {
        let x = b.ld_global(pa, 0);
        let mut v = x;
        for _ in 0..chain {
            v = b.fmad(v, 0.5f32, 1.0f32);
        }
        b.st_shared(tid, 0, v);
        b.sync();
        let m = b.ld_shared(rev, 0);
        b.fmad_acc(m, 0.25f32, acc);
        b.sync();
        b.iadd_acc(pa, THREADS as i32);
    });
    let pd = b.iadd(dst, tid);
    b.st_global(pd, 0, acc);
    b.finish()
}

fn launch() -> Launch {
    Launch::new(Dim::new_1d(1), Dim::new_1d(THREADS))
}

/// Run the kernel with the dynamic race oracle armed; returns the
/// per-thread accumulators.
fn run_checked(k: &Kernel, iters: u32) -> Vec<f32> {
    let in_words = (iters + 1) as usize * THREADS as usize; // +1 tile of prefetch slack
    let mut mem = DeviceMemory::new(in_words + THREADS as usize);
    for i in 0..in_words {
        mem.global[i] = (i as f32 * 0.61).cos();
    }
    run_kernel_checked(&linearize(k), &launch(), &[0, in_words as i32], &mut mem)
        .expect("race-free kernel runs under the oracle");
    mem.global[in_words..].to_vec()
}

#[test]
fn each_pass_preserves_race_freedom() {
    let iters = 8;
    let baseline = staged_reversal(iters, 2);
    assert!(analyze_races(&baseline, &launch()).is_race_free());
    let expect = run_checked(&baseline, iters);

    // unroll → fold → constfold → schedule, checked after every stage.
    let mut k = staged_reversal(iters, 2);
    let inner = innermost_loops(&k).into_iter().next().expect("loop");
    unroll(&mut k, &inner, 2).expect("divides");
    assert!(analyze_races(&k, &launch()).is_race_free(), "after unroll");
    fold_strided_addresses(&mut k);
    assert!(analyze_races(&k, &launch()).is_race_free(), "after fold");
    fold_constants(&mut k);
    assert!(analyze_races(&k, &launch()).is_race_free(), "after constfold");
    schedule_for_pressure(&mut k);
    assert!(analyze_races(&k, &launch()).is_race_free(), "after schedule");
    assert_eq!(run_checked(&k, iters), expect);

    // prefetch and spill on a fresh copy (prefetch wants the original
    // leading-load shape).
    let mut k = staged_reversal(iters, 2);
    let outer = find_loops(&k).into_iter().next().expect("loop");
    prefetch_global_loads(&mut k, &outer).expect("leading load exists");
    assert!(analyze_races(&k, &launch()).is_race_free(), "after prefetch");
    let victims = spill_candidates(&k, 2);
    spill_registers(&mut k, &victims).expect("no counters picked");
    assert!(analyze_races(&k, &launch()).is_race_free(), "after spill");
    assert_eq!(run_checked(&k, iters), expect);
}

#[test]
fn passes_do_not_launder_races_away() {
    // Drop the barriers: the reversal read races with the staging write.
    let mut b = KernelBuilder::new("racy");
    let src = b.param(0);
    b.alloc_shared(THREADS * 4);
    let tid = b.read_special(Special::TidX);
    let pa = b.iadd(src, tid);
    let rev_base = b.mov((THREADS as i32) - 1);
    let rev = b.isub(rev_base, tid);
    let acc = b.mov(0.0f32);
    b.repeat(4, |b| {
        let x = b.ld_global(pa, 0);
        b.st_shared(tid, 0, x);
        let m = b.ld_shared(rev, 0);
        b.fmad_acc(m, 0.25f32, acc);
        b.iadd_acc(pa, THREADS as i32);
    });
    b.st_global(pa, 0, acc);
    let mut k = b.finish();
    assert!(!analyze_races(&k, &launch()).is_race_free());

    let inner = innermost_loops(&k).into_iter().next().expect("loop");
    unroll(&mut k, &inner, 2).expect("divides");
    fold_strided_addresses(&mut k);
    fold_constants(&mut k);
    schedule_for_pressure(&mut k);
    assert!(!analyze_races(&k, &launch()).is_race_free(), "pipeline hid a race");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any legal pipeline combination over the staged stream keeps the
    /// kernel statically race-free, acceptable to the dynamic oracle,
    /// and bit-identical to the untransformed result.
    #[test]
    fn pipeline_preserves_race_freedom(
        iters_pow in 2u32..4,
        chain in 0u32..3,
        factor_pow in 0u32..3,
        do_prefetch in any::<bool>(),
        do_spill in any::<bool>(),
        do_schedule in any::<bool>(),
        do_constfold in any::<bool>(),
    ) {
        let iters = 1 << iters_pow; // 4..8, divisible by every factor
        let factor = 1 << factor_pow;
        let baseline = run_checked(&staged_reversal(iters, chain), iters);

        let mut k = staged_reversal(iters, chain);
        if do_prefetch {
            let outer = find_loops(&k).into_iter().next().expect("loop");
            prefetch_global_loads(&mut k, &outer).expect("leading load exists");
        }
        let inner = innermost_loops(&k).into_iter().next().expect("loop");
        unroll(&mut k, &inner, factor).expect("divides");
        fold_strided_addresses(&mut k);
        if do_spill {
            let victims = spill_candidates(&k, 2);
            spill_registers(&mut k, &victims).expect("no counters picked");
        }
        if do_schedule {
            schedule_for_pressure(&mut k);
        }
        if do_constfold {
            fold_constants(&mut k);
        }

        let report = analyze_races(&k, &launch());
        prop_assert!(report.is_race_free(), "{:?}", report.findings);
        prop_assert_eq!(run_checked(&k, iters), baseline);
    }
}
