//! Throughput of the static-analysis pipeline — the operations the
//! paper's methodology performs *per configuration* instead of a run:
//! "computing the efficiency and utilization metrics is relatively fast
//! ... allowing for fast exploration of the search space."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_arch::MachineSpec;
use gpu_ir::analysis::{dynamic_counts, instruction_mix, register_pressure};
use gpu_ir::linear::linearize;
use gpu_kernels::matmul::{MatMul, MatMulConfig};
use optspace::metrics::profile_kernel;
use optspace::pareto::{pareto_indices, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_analyses(c: &mut Criterion) {
    let mm = MatMul::paper_problem();
    let cfg = MatMulConfig { tile: 16, rect: 4, unroll: 0, prefetch: true, spill: false };
    let kernel = mm.generate(&cfg);
    let launch = mm.launch(&cfg);
    let spec = MachineSpec::geforce_8800_gtx();

    let mut g = c.benchmark_group("static-analysis");
    g.bench_function("dynamic_counts", |b| {
        b.iter(|| black_box(dynamic_counts(black_box(&kernel))))
    });
    g.bench_function("register_pressure", |b| {
        b.iter(|| black_box(register_pressure(black_box(&kernel))))
    });
    g.bench_function("instruction_mix", |b| {
        b.iter(|| black_box(instruction_mix(black_box(&kernel))))
    });
    g.bench_function("profile_kernel (full -ptx/-cubin analog)", |b| {
        b.iter(|| black_box(profile_kernel(black_box(&kernel), &launch, &spec)))
    });
    g.bench_function("linearize", |b| b.iter(|| black_box(linearize(black_box(&kernel)))));
    g.bench_function("generate (incl. pass pipeline)", |b| {
        b.iter(|| black_box(mm.generate(black_box(&cfg))))
    });
    g.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto");
    for n in [100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> =
            (0..n).map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        g.bench_with_input(BenchmarkId::new("pareto_indices", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_indices(black_box(pts))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analyses, bench_pareto);
criterion_main!(benches);
