//! Throughput of the two execution engines: the cycle-approximate
//! timing simulator (our wall-clock stand-in) and the functional
//! interpreter (our correctness ground truth).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_arch::MachineSpec;
use gpu_ir::linear::linearize;
use gpu_kernels::cp::{Cp, CpConfig};
use gpu_kernels::matmul::{MatMul, MatMulConfig};
use gpu_kernels::mri_fhd::{MriConfig, MriFhd};
use gpu_kernels::sad::{Sad, SadConfig};
use gpu_sim::decode::decode;
use gpu_sim::interp::run_kernel;
use gpu_sim::timing::{simulate, simulate_decoded};
use optspace::candidate::Candidate;
use std::hint::black_box;

fn bench_timing(c: &mut Criterion) {
    let spec = MachineSpec::geforce_8800_gtx();
    let mut g = c.benchmark_group("timing-sim");
    g.sample_size(20);

    let mm = MatMul::reduced_problem();
    let cfg = MatMulConfig { tile: 16, rect: 1, unroll: 0, prefetch: false, spill: false };
    let cand = mm.candidate(&cfg);
    let e = cand.evaluate(&spec).expect("valid");
    let prog = linearize(&cand.kernel);
    g.bench_function("matmul 512 / 16x16 / complete unroll", |b| {
        b.iter(|| {
            black_box(simulate(&prog, &cand.launch, &e.kernel_profile.usage, &spec).expect("valid"))
        })
    });

    let cp = Cp::paper_problem();
    let ccfg = CpConfig { block: 128, tiling: 4, coalesced_output: true };
    let ccand = cp.candidate(&ccfg);
    let ce = ccand.evaluate(&spec).expect("valid");
    let cprog = linearize(&ccand.kernel);
    g.bench_function("cp 512x512 / 128 threads / tiling 4", |b| {
        b.iter(|| {
            black_box(
                simulate(&cprog, &ccand.launch, &ce.kernel_profile.usage, &spec).expect("valid"),
            )
        })
    });
    g.finish();
}

/// One decoded-vs-legacy pair per paper application: the seed engine
/// (`gpu_sim::legacy`) re-walks the nested `LinearProgram` every step,
/// the decoded engine runs the flat op arena built once up front. The
/// decode itself is hoisted out of the measured loop on the decoded
/// side — the engine cache amortises it across a whole tuning run — so
/// the pair isolates the steady-state per-simulation cost.
fn bench_decoded_vs_legacy(c: &mut Criterion) {
    let spec = MachineSpec::geforce_8800_gtx();
    let mut g = c.benchmark_group("decoded-vs-legacy");
    g.sample_size(20);

    let cands: Vec<(&str, Candidate)> = vec![
        (
            "matmul",
            MatMul::reduced_problem().candidate(&MatMulConfig {
                tile: 16,
                rect: 1,
                unroll: 0,
                prefetch: false,
                spill: false,
            }),
        ),
        (
            "cp",
            Cp::paper_problem().candidate(&CpConfig {
                block: 128,
                tiling: 4,
                coalesced_output: true,
            }),
        ),
        (
            "sad",
            Sad::paper_problem().candidate(&SadConfig {
                tpb: 64,
                mb_tiling: 1,
                pos_unroll: 1,
                row_unroll: 1,
                col_unroll: 1,
            }),
        ),
        (
            "mri-fhd",
            MriFhd::paper_problem().candidate(&MriConfig { block: 128, unroll: 4, invocations: 1 }),
        ),
    ];

    for (name, cand) in &cands {
        let e = cand.evaluate(&spec).expect("valid");
        let usage = e.kernel_profile.usage;
        let prog = linearize(&cand.kernel);
        let dec = decode(&prog);
        g.bench_function(format!("{name} legacy"), |b| {
            b.iter(|| {
                black_box(
                    gpu_sim::legacy::timing::simulate(&prog, &cand.launch, &usage, &spec)
                        .expect("valid"),
                )
            })
        });
        g.bench_function(format!("{name} decoded"), |b| {
            b.iter(|| {
                black_box(simulate_decoded(&dec, &cand.launch, &usage, &spec).expect("valid"))
            })
        });
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    let mm = MatMul::test_problem();
    let cfg = MatMulConfig { tile: 16, rect: 1, unroll: 0, prefetch: false, spill: false };
    let kernel = mm.generate(&cfg);
    let prog = linearize(&kernel);
    let launch = mm.launch(&cfg);
    let (mem0, params) = mm.setup(3);
    g.bench_function("matmul 64x64 functional run", |b| {
        b.iter(|| {
            let mut mem = mem0.clone();
            run_kernel(&prog, &launch, &params, &mut mem).expect("runs");
            black_box(mem.global[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_timing, bench_decoded_vs_legacy, bench_interpreter);
criterion_main!(benches);
