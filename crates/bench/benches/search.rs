//! End-to-end search cost: how long the library takes to prune and tune
//! a whole configuration space (the developer-time column the paper's
//! Table 4 is about).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_arch::MachineSpec;
use gpu_kernels::matmul::MatMul;
use gpu_kernels::App;
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchStrategy};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let spec = MachineSpec::geforce_8800_gtx();
    let mm = MatMul::reduced_problem();
    let cands = mm.candidates();

    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("static evaluation x96 (matmul space)", |b| {
        b.iter(|| {
            for cand in &cands {
                black_box(cand.evaluate(&spec).ok());
            }
        })
    });
    g.bench_function("pruned search (matmul 512)", |b| {
        b.iter(|| black_box(PrunedSearch::default().run(black_box(&cands), &spec)))
    });
    g.bench_function("exhaustive search (matmul 512)", |b| {
        b.iter(|| black_box(ExhaustiveSearch.run(black_box(&cands), &spec)))
    });
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
