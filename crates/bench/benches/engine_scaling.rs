//! Evaluation-engine scaling: exhaustive-search throughput over the SAD
//! space at 1/2/4/8 workers. The report must be identical at every
//! worker count (the engine reassembles by candidate index); the point
//! of the sweep is the wall-clock curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_arch::MachineSpec;
use gpu_kernels::sad::Sad;
use gpu_kernels::App;
use optspace::engine::{EngineConfig, EvalEngine};
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};
use std::hint::black_box;

fn bench_engine_scaling(c: &mut Criterion) {
    let spec = MachineSpec::geforce_8800_gtx();
    let cands = Sad::paper_problem().candidates();

    // The multi-worker runs must land on the same best configuration as
    // the sequential reference — guard before measuring.
    let reference = ExhaustiveSearch.run(&cands, &spec);
    for jobs in [2usize, 4, 8] {
        let r = ExhaustiveSearch.run_with(&EvalEngine::with_jobs(jobs), &cands, &spec);
        assert_eq!(r.best, reference.best, "jobs={jobs} diverged from sequential best");
    }

    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(2);
    for jobs in [1usize, 2, 4, 8] {
        let engine = EvalEngine::with_jobs(jobs);
        g.bench_with_input(BenchmarkId::new("exhaustive sad", jobs), &engine, |b, engine| {
            b.iter(|| black_box(ExhaustiveSearch.run_with(engine, black_box(&cands), &spec)))
        });
    }
    g.finish();
}

/// Whole-search wall clock of the decoded arena engine against the
/// pre-decode seed engine (`--engine legacy`), sequential, over the
/// full SAD space. Same dedup, same memo cache — the only difference
/// is the per-simulation execution model, so the gap is the tentpole
/// speedup as a tuning run actually experiences it.
fn bench_engine_decoded_vs_legacy(c: &mut Criterion) {
    let spec = MachineSpec::geforce_8800_gtx();
    let cands = Sad::paper_problem().candidates();

    let decoded = EvalEngine::new(EngineConfig::default());
    let legacy = EvalEngine::new(EngineConfig { legacy_sim: true, ..EngineConfig::default() });

    // The engines must be observationally identical before we time them.
    let a = ExhaustiveSearch.run_with(&decoded, &cands, &spec);
    let b = ExhaustiveSearch.run_with(&legacy, &cands, &spec);
    assert_eq!(a.best, b.best, "legacy and decoded engines disagree on the best config");

    let mut g = c.benchmark_group("engine-decoded-vs-legacy");
    g.sample_size(2);
    for (name, engine) in [("decoded", &decoded), ("legacy", &legacy)] {
        g.bench_with_input(BenchmarkId::new("exhaustive sad", name), engine, |b, engine| {
            b.iter(|| black_box(ExhaustiveSearch.run_with(engine, black_box(&cands), &spec)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_scaling, bench_engine_decoded_vs_legacy);
criterion_main!(benches);
