//! The experiment binaries' shared parser (`jobs_from_args` /
//! `engine_from_args`) must reject present-but-invalid values with the
//! same wording as the front end — a bench run that silently defaulted
//! `--jobs 0` to sequential once reported misleading utilization
//! numbers.

use std::process::Command;

fn assert_profile_fails(args: &[&str], expect: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_profile")).args(args).output().expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "`profile {}` exited 0; stderr: {stderr}", args.join(" "),);
    assert!(
        stderr.contains(expect),
        "`profile {}`: stderr {stderr:?} does not mention {expect:?}",
        args.join(" "),
    );
}

#[test]
fn jobs_rejects_zero_and_garbage() {
    assert_profile_fails(&["--jobs", "0"], "--jobs needs a number >= 1");
    assert_profile_fails(&["--jobs", "lots"], "--jobs needs a number >= 1");
    assert_profile_fails(&["--jobs"], "--jobs needs a number >= 1");
}

#[test]
fn engine_flags_reject_invalid_values() {
    assert_profile_fails(&["--sim-fuel", "0"], "--sim-fuel needs a positive number of steps");
    assert_profile_fails(&["--retries", "0"], "--retries needs a number >= 1");
    assert_profile_fails(&["--retries", "x"], "--retries needs a number >= 1");
    assert_profile_fails(&["--fault-seed", "9"], "--fault-seed requires --inject-faults");
}

#[test]
fn profile_validates_its_own_flags() {
    assert_profile_fails(&["--app", "teapot"], "unknown app `teapot` (matmul|cp|sad|mri)");
    assert_profile_fails(&["--budget", "0"], "--budget needs a number >= 1");
}
