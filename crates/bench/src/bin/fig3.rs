//! Figure 3: matrix multiplication performance across the abbreviated
//! optimization space (spill off): {8x8, 16x16} tiles x {1x1, 1x2, 1x4}
//! rectangular tiling x unroll {1, 2, 4, complete} x {normal, prefetch}.
//!
//! Paper shape to check: every 16x16 configuration beats every 8x8 one
//! (the 8x8 tiles are bandwidth-bound), and the best configuration is
//! 16x16 / 1x4 / complete unroll.

use gpu_arch::MachineSpec;
use gpu_kernels::matmul::MatMul;
use optspace::report::{fmt_ms, table};
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let mm = MatMul::paper_problem();
    let cfgs = mm.figure3_space();
    let cands: Vec<_> = cfgs.iter().map(|c| mm.candidate(c)).collect();
    let r = ExhaustiveSearch.run(&cands, &spec);

    let mut rows = vec![vec![
        "config".to_string(),
        "time".to_string(),
        "regs".to_string(),
        "B_SM".to_string(),
        "bw-bound".to_string(),
    ]];
    for (i, c) in cands.iter().enumerate() {
        let (time, regs, bsm, bound) = match (&r.statics[i], &r.simulated[i]) {
            (Some(e), Some(t)) => (
                fmt_ms(t.time_ms),
                e.kernel_profile.usage.regs_per_thread.to_string(),
                e.kernel_profile.occupancy.blocks_per_sm.to_string(),
                if e.bandwidth.is_bandwidth_bound() { "yes" } else { "" }.to_string(),
            ),
            _ => ("INVALID".into(), "-".into(), "-".into(), "-".into()),
        };
        rows.push(vec![c.label.clone(), time, regs, bsm, bound]);
    }
    println!("{}", table(&rows));
    if let (Some(best), Some(t)) = (r.best, r.best_time_ms()) {
        println!("optimal configuration: {} ({})", cands[best].label, fmt_ms(t));
    }
}
