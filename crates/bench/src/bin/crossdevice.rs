//! The paper's introduction claim: "successive generations of
//! architectures require a complete reapplication of the optimization
//! process to achieve the maximum performance for the new system."
//!
//! Tune matrix multiplication on the GeForce 8800 GTX and on a
//! GT200-generation device; compare the optima and measure how much a
//! developer loses by carrying the old configuration forward.

use gpu_arch::MachineSpec;
use gpu_kernels::matmul::MatMul;
use gpu_kernels::App;
use optspace::report::{fmt_ms, table};
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchStrategy};

fn main() {
    let g80 = MachineSpec::geforce_8800_gtx();
    let next = MachineSpec::gtx_280_like();
    let mm = MatMul::reduced_problem();
    let cands = mm.candidates();

    let on_g80 = ExhaustiveSearch.run(&cands, &g80);
    let on_next = ExhaustiveSearch.run(&cands, &next);
    let best_g80 = on_g80.best.expect("valid space");
    let best_next = on_next.best.expect("valid space");

    let mut rows = vec![vec![
        "device".to_string(),
        "optimal config".to_string(),
        "time".to_string(),
        "old optimum carried over".to_string(),
        "penalty".to_string(),
    ]];
    rows.push(vec![
        "8800 GTX".into(),
        cands[best_g80].label.clone(),
        fmt_ms(on_g80.best_time_ms().expect("best exists")),
        "-".into(),
        "-".into(),
    ]);
    let carried = on_next.simulated[best_g80]
        .as_ref()
        .map(|t| t.time_ms)
        .expect("old optimum still valid on the new device");
    let fresh = on_next.best_time_ms().expect("best exists");
    rows.push(vec![
        "GT200-like".into(),
        cands[best_next].label.clone(),
        fmt_ms(fresh),
        fmt_ms(carried),
        format!("+{:.1}%", (carried / fresh - 1.0) * 100.0),
    ]);
    println!("{}", table(&rows));

    // And the pruned methodology transfers as-is.
    let pruned = PrunedSearch::default().run(&cands, &next);
    println!(
        "pruned search on the new device: {} configs timed ({:.0}% reduction), optimum found: {}",
        pruned.evaluated_count(),
        pruned.space_reduction() * 100.0,
        if (pruned.best_time_ms().unwrap() / fresh - 1.0).abs() < 1e-9 { "yes" } else { "NO" },
    );
}
