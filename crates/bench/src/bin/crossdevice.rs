//! The paper's introduction claim: "successive generations of
//! architectures require a complete reapplication of the optimization
//! process to achieve the maximum performance for the new system."
//!
//! Tune matrix multiplication on the GeForce 8800 GTX and on a
//! GT200-generation device; compare the optima and measure how much a
//! developer loses by carrying the old configuration forward.

use gpu_arch::MachineSpec;
use gpu_kernels::matmul::MatMul;
use gpu_kernels::{App, SpaceSource};
use optspace::engine::EvalEngine;
use optspace::report::{fmt_ms, table};
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchStrategy};

fn main() {
    let g80 = MachineSpec::geforce_8800_gtx();
    let next = MachineSpec::gtx_280_like();
    let mm = MatMul::reduced_problem();
    // The space size and the candidate labels both come from the
    // declared space — `Space::len()`, not a hand-maintained count that
    // a finer grid could silently outgrow.
    let engine = EvalEngine::default();
    let source = SpaceSource::full(&mm);
    let labels = source.labels();
    println!("space: {} configurations (declared)", mm.space().len());

    let on_g80 = ExhaustiveSearch.run_source(&engine, &source, &g80);
    let on_next = ExhaustiveSearch.run_source(&engine, &source, &next);
    let (Some(best_g80), Some(best_next)) = (on_g80.best, on_next.best) else {
        println!("no configuration could be timed on one of the devices");
        return;
    };
    let (Some(g80_time), Some(fresh)) = (on_g80.best_time_ms(), on_next.best_time_ms()) else {
        println!("no configuration could be timed on one of the devices");
        return;
    };

    let mut rows = vec![vec![
        "device".to_string(),
        "optimal config".to_string(),
        "time".to_string(),
        "old optimum carried over".to_string(),
        "penalty".to_string(),
    ]];
    rows.push(vec![
        "8800 GTX".into(),
        labels[best_g80].clone(),
        fmt_ms(g80_time),
        "-".into(),
        "-".into(),
    ]);
    // The paper's point survives either way: carrying the old optimum
    // forward costs performance — or is not even launchable.
    let (carried, penalty) = match on_next.simulated[best_g80].as_ref() {
        Some(t) => (fmt_ms(t.time_ms), format!("+{:.1}%", (t.time_ms / fresh - 1.0) * 100.0)),
        None => ("invalid on new device".to_string(), "-".to_string()),
    };
    rows.push(vec![
        "GT200-like".into(),
        labels[best_next].clone(),
        fmt_ms(fresh),
        carried,
        penalty,
    ]);
    println!("{}", table(&rows));

    // And the pruned methodology transfers as-is.
    let pruned = PrunedSearch::default().run_source(&engine, &source, &next);
    let found = match pruned.best_time_ms() {
        Some(t) if (t / fresh - 1.0).abs() < 1e-9 => "yes",
        Some(_) => "NO",
        None => "NO (nothing timed)",
    };
    println!(
        "pruned search on the new device: {} configs timed ({:.0}% reduction), optimum found: {found}",
        pruned.evaluated_count(),
        pruned.space_reduction() * 100.0,
    );
}
