//! The paper's final future-work item: "we will compare the
//! effectiveness of our method to random sampling of the optimization
//! space." For each application, sweep the random-sampling budget and
//! report, over 40 seeds: the probability of hitting the exhaustive
//! optimum and the mean gap to it. The line to beat is the Pareto
//! search: its (budget, gap) point is printed alongside.

use gpu_arch::MachineSpec;
use optspace::engine::EvalEngine;
use optspace::report::table;
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, RandomSearch, SearchStrategy};
use optspace_bench::{jobs_from_args, suite};

const SEEDS: u64 = 40;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = EvalEngine::with_jobs(jobs_from_args(&args));
    let spec = MachineSpec::geforce_8800_gtx();
    for app in suite() {
        let cands = app.candidates();
        let exhaustive = ExhaustiveSearch.run_with(&engine, &cands, &spec);
        let Some(best) = exhaustive.best_time_ms() else {
            println!("==== {}: no configuration could be timed ====", app.name());
            continue;
        };
        let pareto = PrunedSearch::default().run_with(&engine, &cands, &spec);
        let pareto_budget = pareto.evaluated_count();
        let pareto_gap = match pareto.best_time_ms() {
            Some(t) => format!("+{:.1}%", (t / best - 1.0) * 100.0),
            None => "-".to_string(),
        };

        println!(
            "==== {} (valid space {}, Pareto budget {}, Pareto gap {pareto_gap}) ====",
            app.name(),
            exhaustive.evaluated_count(),
            pareto_budget,
        );
        let mut rows = vec![vec![
            "budget".to_string(),
            "P(optimum found)".to_string(),
            "mean gap".to_string(),
            "worst gap".to_string(),
        ]];
        let budgets = [
            pareto_budget / 2,
            pareto_budget,
            pareto_budget * 2,
            pareto_budget * 4,
            pareto_budget * 8,
        ];
        for &budget in &budgets {
            if budget == 0 || budget > exhaustive.evaluated_count() {
                continue;
            }
            let mut hits = 0u32;
            let mut gap_sum = 0.0;
            let mut gap_max = 0.0f64;
            for seed in 0..SEEDS {
                let r = RandomSearch::new(budget, seed).run_with(&engine, &cands, &spec);
                let Some(t) = r.best_time_ms() else { continue };
                let gap = t / best - 1.0;
                if gap.abs() < 1e-9 {
                    hits += 1;
                }
                gap_sum += gap;
                gap_max = gap_max.max(gap);
            }
            rows.push(vec![
                budget.to_string(),
                format!("{:.0}%", f64::from(hits) / SEEDS as f64 * 100.0),
                format!("+{:.1}%", gap_sum / SEEDS as f64 * 100.0),
                format!("+{:.1}%", gap_max * 100.0),
            ]);
        }
        println!("{}", table(&rows));
    }
}
