//! Figure 4: the SAD optimization space — execution time versus threads
//! per block, one line per setting of the remaining parameters.
//!
//! Paper shape to check: a large, ragged space (hundreds of
//! configurations) whose response to block size is non-monotonic and
//! parameter-dependent.

use gpu_arch::MachineSpec;
use gpu_kernels::sad::Sad;
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};
use std::collections::BTreeMap;

/// One Figure 4 line: the fixed (mb, pos, row, col) unroll settings.
type LineKey = (u32, u32, u32, u32);

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let sad = Sad::paper_problem();
    let cfgs = sad.configs();
    let cands: Vec<_> = cfgs.iter().map(|c| sad.candidate(c)).collect();
    let r = ExhaustiveSearch.run(&cands, &spec);

    // Group into lines keyed by (mb, pos_u, row_u, col_u).
    let mut lines: BTreeMap<LineKey, Vec<(u32, f64)>> = BTreeMap::new();
    for (i, cfg) in cfgs.iter().enumerate() {
        if let Some(t) = &r.simulated[i] {
            lines
                .entry((cfg.mb_tiling, cfg.pos_unroll, cfg.row_unroll, cfg.col_unroll))
                .or_default()
                .push((cfg.tpb, t.time_ms));
        }
    }
    println!("valid configurations: {} of {}", r.evaluated_count(), cfgs.len());
    println!("lines (mb/pos/row/col): {}", lines.len());
    println!();
    print!("{:18}", "mb/p/r/c \\ tpb");
    for tpb in (1..=12).map(|k| k * 32) {
        print!("{tpb:>8}");
    }
    println!();
    for ((mb, p, rw, cl), mut pts) in lines {
        pts.sort_unstable_by_key(|&(tpb, _)| tpb);
        print!("{:18}", format!("{mb}/{p}/{rw}/{cl}"));
        let mut col = 0;
        for (tpb, ms) in pts {
            let want = tpb / 32;
            while col + 1 < want {
                print!("{:>8}", "-");
                col += 1;
            }
            print!("{ms:>8.2}");
            col += 1;
        }
        while col < 12 {
            print!("{:>8}", "-");
            col += 1;
        }
        println!();
    }
    if let Some(best) = r.best {
        println!(
            "\noptimal configuration: {} ({:.2} ms)",
            cands[best].label,
            r.best_time_ms().unwrap()
        );
    }
}
