//! The section 5.3 anecdote: "a preliminary version of the MRI-FHD
//! kernel had steadily decreasing performance as the tiling factor
//! increased, although efficiency and utilization metrics remained
//! constant ... the layout of the data in the caches was causing
//! frequent misses. Changing the data layout yielded a kernel that is
//! insensitive to changes in the tiling factor and 17% faster than the
//! previous best configuration."
//!
//! We rebuild both layouts of a tiled constant-table kernel: in the bad
//! layout each thread of a warp reads a *different* constant address
//! (the single-ported cache serializes, Table 1) with the divergence
//! growing with the tiling factor; in the good layout every thread
//! reads the same address (broadcast). The metrics cannot tell the
//! layouts apart — exactly the blind spot the paper describes — while
//! the simulated clock can.

use gpu_arch::{MachineSpec, MemorySpace};
use gpu_ir::build::KernelBuilder;
use gpu_ir::types::Special;
use gpu_ir::{Dim, Instr, Kernel, Launch, Op};
use optspace::candidate::Candidate;
use optspace::report::table;
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};

const SAMPLES: u32 = 512;

/// A tiled kernel accumulating over a constant table; `divergent`
/// controls whether warp lanes read scattered addresses.
fn kernel(tiling: u32, divergent: bool) -> Kernel {
    let mut b = KernelBuilder::new(format!("layout_t{tiling}_{divergent}"));
    let out = b.param(0);
    let tx = b.read_special(Special::TidX);
    let bx = b.read_special(Special::CtaIdX);
    let ntid = b.read_special(Special::NTidX);
    let t = b.imad(bx, ntid, tx);
    let accs: Vec<_> = (0..tiling).map(|_| b.mov(0.0f32)).collect();
    let cp = b.mov(0i32);
    // The bad layout interleaves the per-tile fields so lanes diverge
    // across the cache line; divergence grows with the tile.
    let ways = if divergent { (tiling * 2).min(16) as u8 } else { 1 };
    b.repeat(SAMPLES / tiling, |b| {
        for &acc in &accs {
            let dst = b.fresh();
            b.push_instr(
                Instr::new(Op::Ld(MemorySpace::Constant), Some(dst), vec![cp.into()])
                    .with_replays(ways),
            );
            b.fmad_acc(dst, 1.0f32, acc);
            b.iadd_acc(cp, 1i32);
        }
    });
    let base = b.iadd(out, t);
    for (r, &acc) in accs.iter().enumerate() {
        b.st_global(base, r as i32, acc);
    }
    b.finish()
}

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let tilings = [1u32, 2, 4, 8];
    let mut rows = vec![vec![
        "tiling".to_string(),
        "bad layout (ms)".to_string(),
        "good layout (ms)".to_string(),
        "Efficiency (bad)".to_string(),
        "Efficiency (good)".to_string(),
    ]];
    for &t in &tilings {
        let launch = Launch::new(Dim::new_1d(64), Dim::new_1d(128));
        let bad = Candidate::new(format!("bad/t{t}"), kernel(t, true), launch);
        let good = Candidate::new(format!("good/t{t}"), kernel(t, false), launch);
        let r = ExhaustiveSearch.run(&[bad, good], &spec);
        let eb = r.statics[0].as_ref().expect("valid");
        let eg = r.statics[1].as_ref().expect("valid");
        rows.push(vec![
            t.to_string(),
            format!("{:.3}", r.simulated[0].as_ref().expect("timed").time_ms),
            format!("{:.3}", r.simulated[1].as_ref().expect("timed").time_ms),
            format!("{:.3e}", eb.metrics.efficiency),
            format!("{:.3e}", eg.metrics.efficiency),
        ]);
    }
    println!("{}", table(&rows));
    println!(
        "the metrics are identical per row — \"factors that are not usually first-order\n\
         performance determinants\" (§5.3) — while the simulated clock exposes the\n\
         cache-conflicted layout, which degrades as the tiling factor grows."
    );
}
