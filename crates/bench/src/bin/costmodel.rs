//! How well do static predictors *order* each configuration space
//! against simulated time? Spearman rank correlation, per application,
//! for: the detailed roofline cost model (section 4's announced "more
//! detailed cost model"), Efficiency alone, Utilization alone.
//!
//! The paper's observation to reproduce: the two metrics are useful but
//! "not detailed enough to combine into a single robust cost function";
//! the detailed model orders spaces far better than either metric
//! alone.

use gpu_arch::MachineSpec;
use optspace::model::{predict_ms, rank_correlation};
use optspace::report::table;
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};
use optspace_bench::suite;

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let mut rows = vec![vec![
        "Kernel".to_string(),
        "roofline model".to_string(),
        "1/Efficiency".to_string(),
        "1/Utilization".to_string(),
    ]];
    for app in suite() {
        let cands = app.candidates();
        let r = ExhaustiveSearch.run(&cands, &spec);
        let mut sim = Vec::new();
        let mut model = Vec::new();
        let mut inv_eff = Vec::new();
        let mut inv_util = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            let (Some(e), Some(t)) = (&r.statics[i], &r.simulated[i]) else {
                continue;
            };
            sim.push(t.time_ms);
            model.push(predict_ms(c, e, &spec));
            inv_eff.push(1.0 / e.metrics.efficiency);
            inv_util.push(1.0 / e.metrics.utilization.max(1e-12));
        }
        rows.push(vec![
            app.name().to_string(),
            format!("{:+.3}", rank_correlation(&model, &sim)),
            format!("{:+.3}", rank_correlation(&inv_eff, &sim)),
            format!("{:+.3}", rank_correlation(&inv_util, &sim)),
        ]);
    }
    println!("Spearman rank correlation with simulated execution time");
    println!("(+1 = perfect ordering; higher is a better predictor):\n");
    println!("{}", table(&rows));
}
