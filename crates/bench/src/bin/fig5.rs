//! Figure 5: CP metrics versus performance across the per-thread tiling
//! factor {1, 2, 4, 8, 16}.
//!
//! Paper shape to check: efficiency improves monotonically and closely
//! tracks execution time at tiling 1–8; utilization worsens
//! monotonically and collapses enough at 16 to counter further
//! efficiency gains. (Lower is better for the plotted reciprocals.)

use gpu_arch::MachineSpec;
use gpu_kernels::cp::{Cp, CpConfig};
use optspace::report::table;
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};

fn main() {
    println!("--- full slice (512x512, 128 atoms): occupancy stays high, time keeps improving ---");
    run_sweep(&Cp::paper_problem());
    println!();
    println!(
        "--- narrow slice (512x64, 32 atoms): the paper's shape, optimum at 8, up-tick at 16 ---"
    );
    run_sweep(&Cp::new(512, 64, 32));
}

fn run_sweep(cp: &Cp) {
    let spec = MachineSpec::geforce_8800_gtx();
    let tilings = [1u32, 2, 4, 8, 16];
    let cands: Vec<_> = tilings
        .iter()
        .map(|&t| cp.candidate(&CpConfig { block: 128, tiling: t, coalesced_output: true }))
        .collect();
    let r = ExhaustiveSearch.run(&cands, &spec);

    // Normalise the reciprocals as the paper plots them.
    let evals: Vec<_> = r.statics.iter().flatten().collect();
    let max_inv_eff = evals.iter().map(|e| 1.0 / e.metrics.efficiency).fold(0.0, f64::max);
    let max_inv_util = evals.iter().map(|e| 1.0 / e.metrics.utilization).fold(0.0, f64::max);

    let mut rows = vec![vec![
        "tiling".to_string(),
        "time (ms)".to_string(),
        "1/Efficiency (norm)".to_string(),
        "1/Utilization (norm)".to_string(),
    ]];
    for (i, &t) in tilings.iter().enumerate() {
        let (Some(Some(e)), Some(Some(sim))) = (r.statics.get(i), r.simulated.get(i)) else {
            rows.push(vec![t.to_string(), "-".into(), "-".into(), "-".into()]);
            continue;
        };
        rows.push(vec![
            t.to_string(),
            format!("{:.2}", sim.time_ms),
            format!("{:.3}", (1.0 / e.metrics.efficiency) / max_inv_eff),
            format!("{:.3}", (1.0 / e.metrics.utilization) / max_inv_util),
        ]);
    }
    println!("{}", table(&rows));
    match r.best {
        Some(best) => println!("best tiling factor: {}", tilings[best]),
        None => println!("no tiling could be timed"),
    }
}
