//! Section 1's motivation numbers: "For an MRI reconstruction
//! application with a space size of 175 configurations, the difference
//! in performance between a hand-optimized implementation and the
//! optimal configuration was 17% and the difference in performance
//! between the worst and optimal configurations was 235%."
//!
//! Per application: best / median / worst configuration time, the
//! worst-vs-best spread, and the gap of a "hand-optimized"
//! configuration — the one a sensible expert would write by intuition
//! (maximise occupancy, moderate unrolling) — to the true optimum.

use gpu_arch::MachineSpec;
use gpu_kernels::{
    cp::{Cp, CpConfig},
    matmul::{MatMul, MatMulConfig},
    mri_fhd::{MriConfig, MriFhd},
    sad::{Sad, SadConfig},
    App,
};
use optspace::report::{fmt_ms, table};
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let mut rows = vec![vec![
        "Kernel".to_string(),
        "best".to_string(),
        "median".to_string(),
        "worst".to_string(),
        "worst vs best".to_string(),
        "hand-opt vs best".to_string(),
    ]];

    // The intuition-driven picks: biggest tiles/occupancy, moderate
    // unrolling, no exotic knobs — what section 3.2 says a developer
    // reaches for before experimentation corrects them.
    let mm = MatMul::reduced_problem();
    let hand_mm = mm
        .configs()
        .iter()
        .position(|c| {
            *c == MatMulConfig { tile: 16, rect: 1, unroll: 2, prefetch: false, spill: false }
        })
        .expect("config in space");
    let cp = Cp::paper_problem();
    let hand_cp = cp
        .configs()
        .iter()
        .position(|c| *c == CpConfig { block: 128, tiling: 2, coalesced_output: true })
        .expect("config in space");
    let sad = Sad::paper_problem();
    let hand_sad = sad
        .configs()
        .iter()
        .position(|c| {
            *c == SadConfig { tpb: 128, mb_tiling: 1, pos_unroll: 1, row_unroll: 2, col_unroll: 2 }
        })
        .expect("config in space");
    let mri = MriFhd::paper_problem();
    let hand_mri = mri
        .configs()
        .iter()
        .position(|c| *c == MriConfig { block: 256, unroll: 2, invocations: 1 })
        .expect("config in space");

    let apps: [(&dyn App, usize); 4] =
        [(&mm, hand_mm), (&cp, hand_cp), (&sad, hand_sad), (&mri, hand_mri)];
    for (app, hand_idx) in apps {
        let r = ExhaustiveSearch.run(&app.candidates(), &spec);
        let mut times: Vec<f64> = r.simulated.iter().flatten().map(|t| t.time_ms).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let best = times[0];
        let median = times[times.len() / 2];
        let worst = *times.last().expect("non-empty");
        let hand =
            r.simulated[hand_idx].as_ref().map(|t| t.time_ms).expect("hand-picked config valid");
        rows.push(vec![
            app.name().to_string(),
            fmt_ms(best),
            fmt_ms(median),
            fmt_ms(worst),
            format!("+{:.0}%", (worst / best - 1.0) * 100.0),
            format!("+{:.0}%", (hand / best - 1.0) * 100.0),
        ]);
    }
    println!("{}", table(&rows));
    println!("paper (§1, MRI-FHD): worst vs optimal +235%, hand-optimized vs optimal +17%");
}
