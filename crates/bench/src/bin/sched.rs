//! Future-work experiment (§7): pressure-aware scheduling applied on
//! top of every matmul configuration — does controlled scheduling
//! recover registers and occupancy?

use gpu_arch::MachineSpec;
use gpu_ir::analysis::register_pressure;
use gpu_kernels::matmul::MatMul;
use gpu_passes::schedule_for_pressure;
use optspace::report::table;

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let mm = MatMul::paper_problem();
    let mut improved = 0;
    let mut occupancy_gains = 0;
    let mut rows = vec![vec![
        "config".to_string(),
        "regs".to_string(),
        "regs(sched)".to_string(),
        "B_SM".to_string(),
        "B_SM(sched)".to_string(),
    ]];
    for cfg in mm.configs() {
        let k0 = mm.generate(&cfg);
        let mut k1 = k0.clone();
        schedule_for_pressure(&mut k1);
        let r0 = register_pressure(&k0).regs_per_thread;
        let r1 = register_pressure(&k1).regs_per_thread;
        let occ = |r: u32| {
            spec.occupancy(&gpu_arch::ResourceUsage::new(
                mm.launch(&cfg).threads_per_block(),
                r,
                k0.smem_bytes,
            ))
            .map(|o| o.blocks_per_sm)
            .unwrap_or(0)
        };
        let (b0, b1) = (occ(r0), occ(r1));
        if r1 < r0 {
            improved += 1;
            rows.push(vec![
                cfg.to_string(),
                r0.to_string(),
                r1.to_string(),
                b0.to_string(),
                b1.to_string(),
            ]);
        }
        if b1 > b0 {
            occupancy_gains += 1;
        }
    }
    println!("{}", table(&rows));
    println!(
        "register usage reduced on {improved} of 96 configurations; \
         occupancy raised on {occupancy_gains}"
    );
    println!(
        "(the generators already emit consumption-ordered code, so the \
         scheduler finds nothing to improve — the paper's point that a \
         *controlled* schedule keeps resource usage predictable)"
    );

    // Where the scheduler earns its keep: batched code, e.g. a variant
    // that hoists a whole tile of loads before any consumer (what an
    // aggressive latency-hiding scheduler would emit).
    let mut b = gpu_ir::build::KernelBuilder::new("batched_tile");
    let src = b.param(0);
    let out = b.param(1);
    let acc = b.mov(0.0f32);
    b.repeat(64, |b| {
        let vals: Vec<_> = (0..16).map(|i| b.ld_global(src, i)).collect();
        for v in vals {
            b.fmad_acc(v, 0.5f32, acc);
        }
    });
    b.st_global(out, 0, acc);
    let k0 = b.finish();
    let mut k1 = k0.clone();
    let rep = schedule_for_pressure(&mut k1);
    println!(
        "\nbatched 16-load tile kernel: {} -> {} registers ({} instructions moved)",
        register_pressure(&k0).regs_per_thread,
        register_pressure(&k1).regs_per_thread,
        rep.moved,
    );
}
