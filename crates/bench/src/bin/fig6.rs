//! Figure 6(a–d): normalized Efficiency–Utilization scatter per
//! application, with the Pareto-optimal subset (asterisks) and the true
//! optimum (O).
//!
//! Paper claim to check: the optimum lies on the Pareto curve for every
//! application (after screening bandwidth-bound points, section 5.3).

use gpu_arch::MachineSpec;
use optspace::engine::EvalEngine;
use optspace::pareto::pareto_indices;
use optspace::report::ascii_scatter;
use optspace_bench::{compare_with, jobs_from_args, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = EvalEngine::with_jobs(jobs_from_args(&args));
    let spec = MachineSpec::geforce_8800_gtx();
    for app in suite() {
        let c = compare_with(app.as_ref(), &spec, &engine);
        // Rebuild the plotted set: valid + not bandwidth-bound.
        let idx: Vec<usize> = c
            .exhaustive
            .statics
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.bandwidth.is_bandwidth_bound())
            .map(|(i, _)| i)
            .collect();
        let points: Vec<_> = idx
            .iter()
            .map(|&i| c.exhaustive.statics[i].as_ref().unwrap().metrics.point())
            .collect();
        let pareto = pareto_indices(&points);
        let optimum = c.exhaustive.best.and_then(|b| idx.iter().position(|&i| i == b));

        println!(
            "==== {} ({} plotted, {} on the Pareto curve) ====",
            c.name,
            points.len(),
            pareto.len()
        );
        println!("{}", ascii_scatter(&points, &pareto, optimum, 64, 20));
        let on_curve = optimum.map(|o| pareto.contains(&o)).unwrap_or(false);
        println!(
            "optimum on curve: {}   pruned search found optimum: {}\n",
            if on_curve { "yes" } else { "NO" },
            if c.found_optimum() { "yes" } else { "NO" }
        );
    }
}
