//! Section 5.3's observation: built *without* the bandwidth screen,
//! the matmul Pareto curve picks up bandwidth-bound 8x8 configurations
//! (in the paper, every curve member except the optimum was 8x8) —
//! which is why the screen must run before the curve is drawn.

use gpu_arch::MachineSpec;
use gpu_kernels::{matmul::MatMul, App};
use optspace::metrics::MetricsOptions;
use optspace::pareto::pareto_indices;

fn main() {
    // Section 5.3: without the bandwidth screen, the matmul Pareto curve
    // is dominated by 8x8 configurations (all but the optimum, in the
    // paper).
    let spec = MachineSpec::geforce_8800_gtx();
    let cands = MatMul::reduced_problem().candidates();
    let evals: Vec<_> = cands.iter().map(|c| c.evaluate(&spec).ok()).collect();
    let idx: Vec<usize> =
        evals.iter().enumerate().filter_map(|(i, e)| e.as_ref().map(|_| i)).collect();
    let pts: Vec<_> = idx.iter().map(|&i| evals[i].as_ref().unwrap().metrics.point()).collect();
    let curve = pareto_indices(&pts);
    let labels: Vec<&str> = curve.iter().map(|&k| cands[idx[k]].label.as_str()).collect();
    let n8 = labels.iter().filter(|l| l.starts_with("8x8")).count();
    println!("unscreened curve: {} points, {} are 8x8: {:?}", labels.len(), n8, labels);

    // The §7 future-work fix: with coalescing-aware metrics the
    // bandwidth-punished 8x8 layouts sink on the efficiency axis and
    // fall off the curve without any screen at all.
    let opts = MetricsOptions { coalescing_aware: true, ..Default::default() };
    let evals2: Vec<_> = cands.iter().map(|c| c.evaluate_with(&spec, opts).ok()).collect();
    let pts2: Vec<_> = idx.iter().map(|&i| evals2[i].as_ref().unwrap().metrics.point()).collect();
    let curve2 = pareto_indices(&pts2);
    let labels2: Vec<&str> = curve2.iter().map(|&k| cands[idx[k]].label.as_str()).collect();
    let n8b = labels2.iter().filter(|l| l.starts_with("8x8")).count();
    println!(
        "coalescing-aware curve (no screen): {} points, {} are 8x8: {:?}",
        labels2.len(),
        n8b,
        labels2
    );
}
