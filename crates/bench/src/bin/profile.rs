//! Profile the search stack over the four Table-4 applications: run the
//! paper's pruned search per app with an event sink attached and print
//! each run's engine-metrics summary — evaluation counts, cache
//! behaviour, the simulated stall breakdown, per-phase wall time, and
//! worker utilization.
//!
//! `--bench-out <path>` additionally writes every run's manifest into
//! one JSON document (the committed `BENCH_pr3.json` trajectory point).
//! The engine flags of the other experiment binaries (`--jobs`,
//! `--sim-fuel`, `--retries`, ...) apply here too.

use std::sync::Arc;

use gpu_arch::MachineSpec;
use optspace::obs::{EventSink, Json, RunManifest};
use optspace::report::profile_table;
use optspace::tuner::{PrunedSearch, SearchStrategy};
use optspace_bench::{engine_from_args, flag_value, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out: Option<String> = flag_value(&args, "--bench-out");
    let spec = MachineSpec::geforce_8800_gtx();
    let mut manifests: Vec<Json> = Vec::new();
    for app in suite() {
        // A fresh sink per app keeps wall-time and worker accounting
        // per-run instead of smearing across the suite.
        let sink = Arc::new(EventSink::new());
        let engine = engine_from_args(&args).with_sink(Arc::clone(&sink));
        let candidates = app.candidates();
        let report = PrunedSearch::default().run_with(&engine, &candidates, &spec);
        println!("== {} ({} configurations) ==", app.name(), candidates.len());
        println!("{}", profile_table(&report.metrics));
        manifests.push(RunManifest::from_search(app.name(), &report, &spec).to_json());
    }
    if let Some(path) = bench_out {
        let doc = Json::obj([
            ("bench", Json::from("pr3")),
            (
                "description",
                Json::from("pruned-search run manifests for the four Table-4 applications"),
            ),
            ("manifests", Json::Arr(manifests)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("manifests -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
