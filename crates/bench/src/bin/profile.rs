//! Profile the search stack over the four Table-4 applications: run the
//! paper's pruned search per app with an event sink attached and print
//! each run's engine-metrics summary — evaluation counts, cache
//! behaviour, the simulated stall breakdown, per-phase wall time, and
//! worker utilization.
//!
//! `--bench-out <path>` additionally writes every run's manifest into
//! one JSON document (the committed `BENCH_pr3.json` trajectory point).
//! `--bnb-out <path>` writes the exhaustive-vs-branch-and-bound
//! comparison — simulations to reach the optimum, and the subspaces the
//! bound discarded without instantiation — as the committed
//! `BENCH_pr6.json` trajectory point. `--convergence-out <path>` runs
//! all three strategies (exhaustive, pruned, branch-and-bound) per app
//! and writes their full convergence curves plus sims-to-optimum — the
//! committed `BENCH_pr8.json` trajectory point. The engine flags of the
//! other experiment binaries (`--jobs`, `--sim-fuel`, `--retries`, ...)
//! apply here too.

use std::sync::Arc;

use gpu_arch::MachineSpec;
use gpu_kernels::AppInstantiator;
use optspace::obs::{EventSink, Json, RunManifest};
use optspace::report::{profile_table, table};
use optspace::tuner::{BranchAndBound, ExhaustiveSearch, PrunedSearch, SearchStrategy};
use optspace_bench::{engine_from_args, flag_value, require_writable_parent, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out: Option<String> = flag_value(&args, "--bench-out");
    let bnb_out: Option<String> = flag_value(&args, "--bnb-out");
    let convergence_out: Option<String> = flag_value(&args, "--convergence-out");
    // A doomed export must fail now, not after the whole suite has run.
    for path in [&bench_out, &bnb_out, &convergence_out].into_iter().flatten() {
        require_writable_parent(path);
    }
    let spec = MachineSpec::geforce_8800_gtx();
    let mut manifests: Vec<Json> = Vec::new();
    for app in suite() {
        // A fresh sink per app keeps wall-time and worker accounting
        // per-run instead of smearing across the suite.
        let sink = Arc::new(EventSink::new());
        let engine = engine_from_args(&args).with_sink(Arc::clone(&sink));
        let candidates = app.candidates();
        let report = PrunedSearch::default().run_with(&engine, &candidates, &spec);
        println!("== {} ({} configurations) ==", app.name(), candidates.len());
        println!("{}", profile_table(&report.metrics));
        manifests.push(RunManifest::from_search(app.name(), &report, &spec).to_json());
    }

    // Exhaustive vs branch-and-bound: how many unique simulations each
    // needs to certify the optimum, and how much of the space the bound
    // discarded before instantiation.
    let mut rows = vec![vec![
        "app".to_string(),
        "space".to_string(),
        "exhaustive sims".to_string(),
        "bnb sims".to_string(),
        "bnb static evals".to_string(),
        "pruned subspaces".to_string(),
        "pruned points".to_string(),
        "optimum".to_string(),
    ]];
    let mut comparisons: Vec<Json> = Vec::new();
    for app in suite() {
        let engine = engine_from_args(&args);
        let space = app.space();
        let exhaustive = ExhaustiveSearch.run_source(
            &engine,
            &gpu_kernels::SpaceSource::full(app.as_ref()),
            &spec,
        );
        let bnb = BranchAndBound.run_space(&engine, &space, &AppInstantiator(app.as_ref()), &spec);
        let same = match (exhaustive.best_time_ms(), bnb.best_time_ms()) {
            (Some(a), Some(b)) => (b / a - 1.0).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        rows.push(vec![
            app.name().to_string(),
            space.len().to_string(),
            exhaustive.stats.unique_sims.to_string(),
            bnb.stats.unique_sims.to_string(),
            bnb.stats.static_evals.to_string(),
            bnb.stats.bound_pruned_subspaces.to_string(),
            bnb.stats.bound_pruned_points.to_string(),
            if same { "match".to_string() } else { "MISMATCH".to_string() },
        ]);
        comparisons.push(Json::obj([
            ("app", Json::from(app.name())),
            ("space", Json::from(space.len() as u64)),
            ("exhaustive_sims", Json::from(exhaustive.stats.unique_sims as u64)),
            ("bnb_sims", Json::from(bnb.stats.unique_sims as u64)),
            ("bnb_static_evals", Json::from(bnb.stats.static_evals as u64)),
            ("bound_pruned_subspaces", Json::from(bnb.stats.bound_pruned_subspaces as u64)),
            ("bound_pruned_points", Json::from(bnb.stats.bound_pruned_points as u64)),
            ("optimum_matches", Json::from(same)),
            ("best_time_ms", bnb.best_time_ms().map(Json::from).unwrap_or(Json::Null)),
        ]));
    }
    println!("== exhaustive vs branch-and-bound ==");
    println!("{}", table(&rows));

    if let Some(path) = bench_out {
        let doc = Json::obj([
            ("bench", Json::from("pr3")),
            (
                "description",
                Json::from("pruned-search run manifests for the four Table-4 applications"),
            ),
            ("manifests", Json::Arr(manifests)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("manifests -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = convergence_out {
        // Convergence trajectories: every strategy's curve per app. The
        // recorder is deterministic, so this document is reproducible
        // at any --jobs.
        let mut apps: Vec<Json> = Vec::new();
        for app in suite() {
            let space = app.space();
            let candidates = app.candidates();
            let runs: Vec<(&str, optspace::tuner::SearchReport)> = vec![
                (
                    "exhaustive",
                    ExhaustiveSearch.run_source(
                        &engine_from_args(&args),
                        &gpu_kernels::SpaceSource::full(app.as_ref()),
                        &spec,
                    ),
                ),
                (
                    "pruned",
                    PrunedSearch::default().run_with(&engine_from_args(&args), &candidates, &spec),
                ),
                (
                    "bnb",
                    BranchAndBound.run_space(
                        &engine_from_args(&args),
                        &space,
                        &AppInstantiator(app.as_ref()),
                        &spec,
                    ),
                ),
            ];
            let strategies: Vec<Json> = runs
                .into_iter()
                .map(|(name, report)| {
                    let curve = &report.metrics.convergence;
                    Json::obj([
                        ("strategy", Json::from(name)),
                        ("timed", Json::from(report.evaluated_count() as u64)),
                        ("unique_sims", Json::from(report.stats.unique_sims as u64)),
                        (
                            "best_time_ms",
                            report.best_time_ms().map(Json::from).unwrap_or(Json::Null),
                        ),
                        (
                            "sims_to_optimum",
                            curve.sims_to_optimum().map(Json::from).unwrap_or(Json::Null),
                        ),
                        (
                            "unique_to_optimum",
                            curve.unique_to_optimum().map(Json::from).unwrap_or(Json::Null),
                        ),
                        ("curve", curve.to_json()),
                    ])
                })
                .collect();
            apps.push(Json::obj([
                ("app", Json::from(app.name())),
                ("space", Json::from(space.len() as u64)),
                ("strategies", Json::Arr(strategies)),
            ]));
        }
        let doc = Json::obj([
            ("bench", Json::from("pr8")),
            (
                "description",
                Json::from(
                    "convergence curves and simulations-to-optimum for exhaustive, pruned, \
                     and branch-and-bound search over the four Table-4 applications",
                ),
            ),
            ("apps", Json::Arr(apps)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("convergence -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = bnb_out {
        let doc = Json::obj([
            ("bench", Json::from("pr6")),
            (
                "description",
                Json::from(
                    "exhaustive vs branch-and-bound simulations-to-optimum for the four \
                     Table-4 applications",
                ),
            ),
            ("comparisons", Json::Arr(comparisons)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("comparison -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
