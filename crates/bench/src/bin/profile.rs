//! Profile the search stack over the four Table-4 applications: run the
//! paper's pruned search per app with an event sink attached and print
//! each run's engine-metrics summary — evaluation counts, cache
//! behaviour, the simulated stall breakdown, per-phase wall time, and
//! worker utilization.
//!
//! `--bench-out <path>` additionally writes every run's manifest into
//! one JSON document (the committed `BENCH_pr3.json` trajectory point).
//! `--bnb-out <path>` writes the exhaustive-vs-branch-and-bound
//! comparison — simulations to reach the optimum, and the subspaces the
//! bound discarded without instantiation — as the committed
//! `BENCH_pr6.json` trajectory point. `--convergence-out <path>` runs
//! every strategy (exhaustive, pruned, branch-and-bound, and the
//! iterative zoo) per app and writes their full convergence curves plus
//! sims-to-optimum — the committed `BENCH_pr8.json` trajectory point.
//! `--zoo-out <path>` runs the iterative-strategy study — every zoo
//! strategy scored against the exhaustively known optimum on
//! sims-to-optimum, time-to-within-5%, and wasted budget — as the
//! committed `BENCH_pr9.json` trajectory point (`--fine` adds the
//! matmul fine grid with branch-and-bound supplying the ground truth).
//! `--app matmul|cp|sad|mri` restricts every section to one
//! application; `--budget N` and `--seed S` override the zoo study's
//! defaults (half the exhaustive timing budget, seed 0). The engine
//! flags of the other experiment binaries (`--jobs`, `--sim-fuel`,
//! `--retries`, ...) apply here too.

use std::sync::Arc;

use gpu_arch::MachineSpec;
use gpu_kernels::matmul::MatMulFine;
use gpu_kernels::{App, AppInstantiator, SpaceSource};
use optspace::obs::{EventSink, Json, RunManifest};
use optspace::report::{profile_table, table};
use optspace::tuner::{
    BranchAndBound, ExhaustiveSearch, PrunedSearch, RandomSearch, SearchReport, SearchStrategy,
};
use optspace::zoo;
use optspace_bench::{engine_from_args, flag_value, require_writable_parent, run_zoo, suite};

/// The suite apps' short CLI names (the front end's vocabulary).
fn short_name(display: &str) -> &'static str {
    match display {
        "Matrix Multiplication" => "matmul",
        "Matrix Multiplication (fine)" => "matmul-fine",
        "CP" => "cp",
        "SAD" => "sad",
        "MRI-FHD" => "mri",
        _ => "?",
    }
}

/// The suite, restricted to `--app` when given.
fn selected_suite(only: Option<&str>) -> Vec<Box<dyn App>> {
    suite().into_iter().filter(|a| only.is_none_or(|n| short_name(a.name()) == n)).collect()
}

/// Score one strategy's report against the known true optimum.
fn score_json(report: &SearchReport, truth_ms: f64) -> Json {
    let curve = &report.metrics.convergence;
    let total = curve.samples.last().map(|s| s.sims).unwrap_or(0);
    let best = report.best_time_ms();
    // Budget spent after the run's own final best was found buys
    // nothing: that tail is the wasted fraction.
    let wasted = match (curve.sims_to_optimum(), total) {
        (Some(s), t) if t > 0 => Some((t - s) as f64 / t as f64),
        _ => None,
    };
    Json::obj([
        ("strategy", Json::from(report.strategy.as_str())),
        ("total_sims", Json::from(total)),
        ("best_time_ms", best.map(Json::from).unwrap_or(Json::Null)),
        ("within_5pct", Json::from(best.map(|b| b <= truth_ms * 1.05).unwrap_or(false))),
        ("sims_to_optimum", curve.sims_to_within(truth_ms).map(Json::from).unwrap_or(Json::Null)),
        (
            "sims_to_within_5pct",
            curve.sims_to_within(truth_ms * 1.05).map(Json::from).unwrap_or(Json::Null),
        ),
        ("wasted_budget_fraction", wasted.map(Json::from).unwrap_or(Json::Null)),
        ("curve", curve.to_json()),
    ])
}

/// Run the zoo (plus the one-shot random baseline) over one app at a
/// fixed budget and score every strategy against `truth_ms`.
fn zoo_study(
    app: &dyn App,
    spec: &MachineSpec,
    args: &[String],
    budget: usize,
    seed: u64,
    truth: &SearchReport,
    truth_strategy: &str,
) -> Json {
    let truth_ms = truth.best_time_ms().expect("ground truth found an optimum");
    let mut reports: Vec<SearchReport> = vec![RandomSearch::new(budget, seed).run_source(
        &engine_from_args(args),
        &SpaceSource::full(app),
        spec,
    )];
    for name in zoo::NAMES {
        reports.push(run_zoo(app, spec, &engine_from_args(args), name, budget, seed));
    }
    let mut rows = vec![vec![
        "strategy".to_string(),
        "best".to_string(),
        "within 5%".to_string(),
        "sims to opt".to_string(),
        "sims to 5%".to_string(),
        "wasted".to_string(),
    ]];
    for report in &reports {
        let curve = &report.metrics.convergence;
        let total = curve.samples.last().map(|s| s.sims).unwrap_or(0);
        let own = curve.sims_to_optimum();
        rows.push(vec![
            report.strategy.clone(),
            report.best_time_ms().map(|b| format!("{b:.4} ms")).unwrap_or_else(|| "-".to_string()),
            report
                .best_time_ms()
                .map(|b| if b <= truth_ms * 1.05 { "yes" } else { "NO" })
                .unwrap_or("NO")
                .to_string(),
            curve
                .sims_to_within(truth_ms)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string()),
            curve
                .sims_to_within(truth_ms * 1.05)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string()),
            match (own, total) {
                (Some(s), t) if t > 0 => format!("{:.0}%", (t - s) as f64 / t as f64 * 100.0),
                _ => "-".to_string(),
            },
        ]);
    }
    println!(
        "== zoo study: {} (budget {budget}, truth {truth_strategy} {truth_ms:.4} ms) ==",
        app.name()
    );
    println!("{}", table(&rows));
    Json::obj([
        ("app", Json::from(app.name())),
        ("space", Json::from(app.space().len() as u64)),
        ("truth_strategy", Json::from(truth_strategy)),
        ("truth_best_ms", Json::from(truth_ms)),
        ("truth_sims", Json::from(truth.evaluated_count() as u64)),
        ("budget", Json::from(budget as u64)),
        ("seed", Json::from(seed)),
        ("strategies", Json::Arr(reports.iter().map(|r| score_json(r, truth_ms)).collect())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out: Option<String> = flag_value(&args, "--bench-out");
    let bnb_out: Option<String> = flag_value(&args, "--bnb-out");
    let convergence_out: Option<String> = flag_value(&args, "--convergence-out");
    let zoo_out: Option<String> = flag_value(&args, "--zoo-out");
    let only: Option<String> = flag_value(&args, "--app");
    if let Some(name) = only.as_deref() {
        if !["matmul", "cp", "sad", "mri"].contains(&name) {
            eprintln!("unknown app `{name}` (matmul|cp|sad|mri)");
            std::process::exit(1);
        }
    }
    let budget_override: Option<usize> = match flag_value::<usize>(&args, "--budget") {
        Some(0) => {
            eprintln!("--budget needs a number >= 1");
            std::process::exit(1);
        }
        other => other,
    };
    let seed: u64 = flag_value(&args, "--seed").unwrap_or(0);
    // A doomed export must fail now, not after the whole suite has run.
    for path in [&bench_out, &bnb_out, &convergence_out, &zoo_out].into_iter().flatten() {
        require_writable_parent(path);
    }
    let spec = MachineSpec::geforce_8800_gtx();
    let mut manifests: Vec<Json> = Vec::new();
    for app in selected_suite(only.as_deref()) {
        // A fresh sink per app keeps wall-time and worker accounting
        // per-run instead of smearing across the suite.
        let sink = Arc::new(EventSink::new());
        let engine = engine_from_args(&args).with_sink(Arc::clone(&sink));
        let candidates = app.candidates();
        let report = PrunedSearch::default().run_with(&engine, &candidates, &spec);
        println!("== {} ({} configurations) ==", app.name(), candidates.len());
        println!("{}", profile_table(&report.metrics));
        manifests.push(RunManifest::from_search(app.name(), &report, &spec).to_json());
    }

    // Exhaustive vs branch-and-bound: how many unique simulations each
    // needs to certify the optimum, and how much of the space the bound
    // discarded before instantiation.
    let mut rows = vec![vec![
        "app".to_string(),
        "space".to_string(),
        "exhaustive sims".to_string(),
        "bnb sims".to_string(),
        "bnb static evals".to_string(),
        "pruned subspaces".to_string(),
        "pruned points".to_string(),
        "optimum".to_string(),
    ]];
    let mut comparisons: Vec<Json> = Vec::new();
    for app in selected_suite(only.as_deref()) {
        let engine = engine_from_args(&args);
        let space = app.space();
        let exhaustive = ExhaustiveSearch.run_source(
            &engine,
            &gpu_kernels::SpaceSource::full(app.as_ref()),
            &spec,
        );
        let bnb = BranchAndBound.run_space(&engine, &space, &AppInstantiator(app.as_ref()), &spec);
        let same = match (exhaustive.best_time_ms(), bnb.best_time_ms()) {
            (Some(a), Some(b)) => (b / a - 1.0).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        rows.push(vec![
            app.name().to_string(),
            space.len().to_string(),
            exhaustive.stats.unique_sims.to_string(),
            bnb.stats.unique_sims.to_string(),
            bnb.stats.static_evals.to_string(),
            bnb.stats.bound_pruned_subspaces.to_string(),
            bnb.stats.bound_pruned_points.to_string(),
            if same { "match".to_string() } else { "MISMATCH".to_string() },
        ]);
        comparisons.push(Json::obj([
            ("app", Json::from(app.name())),
            ("space", Json::from(space.len() as u64)),
            ("exhaustive_sims", Json::from(exhaustive.stats.unique_sims as u64)),
            ("bnb_sims", Json::from(bnb.stats.unique_sims as u64)),
            ("bnb_static_evals", Json::from(bnb.stats.static_evals as u64)),
            ("bound_pruned_subspaces", Json::from(bnb.stats.bound_pruned_subspaces as u64)),
            ("bound_pruned_points", Json::from(bnb.stats.bound_pruned_points as u64)),
            ("optimum_matches", Json::from(same)),
            ("best_time_ms", bnb.best_time_ms().map(Json::from).unwrap_or(Json::Null)),
        ]));
    }
    println!("== exhaustive vs branch-and-bound ==");
    println!("{}", table(&rows));

    if let Some(path) = bench_out {
        let doc = Json::obj([
            ("bench", Json::from("pr3")),
            (
                "description",
                Json::from("pruned-search run manifests for the four Table-4 applications"),
            ),
            ("manifests", Json::Arr(manifests)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("manifests -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = convergence_out {
        // Convergence trajectories: every strategy's curve per app. The
        // recorder is deterministic, so this document is reproducible
        // at any --jobs.
        let mut apps: Vec<Json> = Vec::new();
        for app in selected_suite(only.as_deref()) {
            let space = app.space();
            let candidates = app.candidates();
            let exhaustive = ExhaustiveSearch.run_source(
                &engine_from_args(&args),
                &gpu_kernels::SpaceSource::full(app.as_ref()),
                &spec,
            );
            // Zoo strategies get the study's standard allowance: half
            // the exhaustive timing budget (or the explicit override).
            let budget =
                budget_override.unwrap_or_else(|| (exhaustive.evaluated_count() / 2).max(1));
            let mut runs: Vec<(&str, optspace::tuner::SearchReport)> = vec![
                ("exhaustive", exhaustive),
                (
                    "pruned",
                    PrunedSearch::default().run_with(&engine_from_args(&args), &candidates, &spec),
                ),
                (
                    "bnb",
                    BranchAndBound.run_space(
                        &engine_from_args(&args),
                        &space,
                        &AppInstantiator(app.as_ref()),
                        &spec,
                    ),
                ),
            ];
            for name in zoo::NAMES {
                runs.push((
                    name,
                    run_zoo(app.as_ref(), &spec, &engine_from_args(&args), name, budget, seed),
                ));
            }
            let strategies: Vec<Json> = runs
                .into_iter()
                .map(|(name, report)| {
                    let curve = &report.metrics.convergence;
                    Json::obj([
                        ("strategy", Json::from(name)),
                        ("timed", Json::from(report.evaluated_count() as u64)),
                        ("unique_sims", Json::from(report.stats.unique_sims as u64)),
                        (
                            "best_time_ms",
                            report.best_time_ms().map(Json::from).unwrap_or(Json::Null),
                        ),
                        (
                            "sims_to_optimum",
                            curve.sims_to_optimum().map(Json::from).unwrap_or(Json::Null),
                        ),
                        (
                            "unique_to_optimum",
                            curve.unique_to_optimum().map(Json::from).unwrap_or(Json::Null),
                        ),
                        ("curve", curve.to_json()),
                    ])
                })
                .collect();
            apps.push(Json::obj([
                ("app", Json::from(app.name())),
                ("space", Json::from(space.len() as u64)),
                ("strategies", Json::Arr(strategies)),
            ]));
        }
        let doc = Json::obj([
            ("bench", Json::from("pr8")),
            (
                "description",
                Json::from(
                    "convergence curves and simulations-to-optimum for exhaustive, pruned, \
                     and branch-and-bound search over the four Table-4 applications",
                ),
            ),
            ("apps", Json::Arr(apps)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("convergence -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = zoo_out {
        // The search-strategy zoo study: every iterative strategy (plus
        // the one-shot random baseline) scored against the exhaustively
        // known optimum at half the exhaustive timing budget. Scores
        // are in timed-simulation currency, the same axis the
        // convergence curves use.
        let mut apps: Vec<Json> = Vec::new();
        for app in selected_suite(only.as_deref()) {
            let truth = ExhaustiveSearch.run_source(
                &engine_from_args(&args),
                &SpaceSource::full(app.as_ref()),
                &spec,
            );
            let budget = budget_override.unwrap_or_else(|| (truth.evaluated_count() / 2).max(1));
            apps.push(zoo_study(app.as_ref(), &spec, &args, budget, seed, &truth, "exhaustive"));
        }
        if args.iter().any(|a| a == "--fine") && only.as_deref().is_none_or(|n| n == "matmul") {
            // The fine matmul grid is too large to exhaust here;
            // branch-and-bound certifies the same optimum with a
            // fraction of the simulations and supplies ground truth.
            let fine = MatMulFine::reduced_problem();
            let truth = BranchAndBound.run_space(
                &engine_from_args(&args),
                &fine.space(),
                &AppInstantiator(&fine),
                &spec,
            );
            let budget = budget_override.unwrap_or(256);
            apps.push(zoo_study(&fine, &spec, &args, budget, seed, &truth, "bnb"));
        }
        let doc = Json::obj([
            ("bench", Json::from("pr9")),
            (
                "description",
                Json::from(
                    "search-strategy zoo: iterative optimizers scored against the known \
                     true optimum — convergence curves, sims-to-optimum, time-to-within-5%, \
                     and wasted budget at half the exhaustive timing allowance",
                ),
            ),
            ("apps", Json::Arr(apps)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("zoo study -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = bnb_out {
        let doc = Json::obj([
            ("bench", Json::from("pr6")),
            (
                "description",
                Json::from(
                    "exhaustive vs branch-and-bound simulations-to-optimum for the four \
                     Table-4 applications",
                ),
            ),
            ("comparisons", Json::Arr(comparisons)),
        ]);
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => println!("comparison -> {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
