//! Table 4: parameter-search properties per application — space size,
//! exhaustive evaluation time, Pareto-selected configuration count,
//! space reduction, and selected evaluation time.
//!
//! Paper shape to check: the pruned search times a small fraction of
//! each space (74–98 % reduction in the paper) and still finds the
//! configuration exhaustive search finds.

use gpu_arch::MachineSpec;
use optspace::report::{fmt_ms, table};
use optspace_bench::{compare_with, engine_from_args, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&args);
    let spec = MachineSpec::geforce_8800_gtx();
    let mut rows = vec![vec![
        "Kernel".to_string(),
        "Configs".to_string(),
        "Valid".to_string(),
        "Eval Time".to_string(),
        "Selected".to_string(),
        "Reduction".to_string(),
        "Sel. Eval Time".to_string(),
        "Optimum found".to_string(),
    ]];
    let mut quarantined = 0usize;
    for app in suite() {
        let c = compare_with(app.as_ref(), &spec, &engine);
        quarantined += c.exhaustive.quarantined_count() + c.pruned.quarantined_count();
        rows.push(vec![
            c.name.to_string(),
            c.exhaustive.space_size.to_string(),
            c.exhaustive.valid_count().to_string(),
            fmt_ms(c.exhaustive.evaluation_time_ms()),
            c.pruned.evaluated_count().to_string(),
            format!("{:.0}%", c.pruned.space_reduction() * 100.0),
            fmt_ms(c.pruned.evaluation_time_ms()),
            if c.found_optimum() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table(&rows));
    println!("quarantined configurations: {quarantined}");
}
