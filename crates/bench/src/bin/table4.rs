//! Table 4: parameter-search properties per application — space size,
//! exhaustive evaluation time, Pareto-selected configuration count,
//! space reduction, and selected evaluation time.
//!
//! Paper shape to check: the pruned search times a small fraction of
//! each space (74–98 % reduction in the paper) and still finds the
//! configuration exhaustive search finds.
//!
//! `--verbose` attaches an event sink and prints each quarantined
//! candidate's error kind as recorded in the trace.

use std::sync::Arc;

use gpu_arch::MachineSpec;
use optspace::obs::{EventSink, Json};
use optspace::report::{fmt_ms, table};
use optspace_bench::{compare_selected, engine_from_args, selection_from_args, suite};

/// Look up one field of a trace event.
fn field<'a>(fields: &'a [(&'static str, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose");
    let selection = match selection_from_args(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if !selection.is_noop() {
        println!("selection: {selection} (applied per app; unknown axes ignored)");
    }
    let spec = MachineSpec::geforce_8800_gtx();
    let mut rows = vec![vec![
        "Kernel".to_string(),
        "Configs".to_string(),
        "Valid".to_string(),
        "Eval Time".to_string(),
        "Selected".to_string(),
        "Reduction".to_string(),
        "Sel. Eval Time".to_string(),
        "Optimum found".to_string(),
    ]];
    let mut quarantined = 0usize;
    let mut kind_lines: Vec<String> = Vec::new();
    for app in suite() {
        let mut engine = engine_from_args(&args);
        let sink = if verbose {
            let sink = Arc::new(EventSink::new());
            engine = engine.with_sink(Arc::clone(&sink));
            Some(sink)
        } else {
            None
        };
        let c = compare_selected(app.as_ref(), &spec, &engine, &selection);
        quarantined += c.exhaustive.quarantined_count() + c.pruned.quarantined_count();
        if let Some(sink) = sink {
            // Per-candidate error kinds, straight from the trace the
            // engine emitted (not re-derived from the reports).
            let trace = sink.drain();
            for event in trace.named("quarantine") {
                let s = |k: &str| {
                    field(&event.fields, k).and_then(Json::as_str).unwrap_or("?").to_string()
                };
                let n =
                    |k: &str| field(&event.fields, k).and_then(Json::as_u64).unwrap_or_default();
                kind_lines.push(format!(
                    "  {} #{} {}: {} ({} phase, attempt {})",
                    c.name,
                    n("candidate"),
                    s("label"),
                    s("kind"),
                    s("phase"),
                    n("attempts"),
                ));
            }
        }
        rows.push(vec![
            c.name.to_string(),
            c.exhaustive.space_size.to_string(),
            c.exhaustive.valid_count().to_string(),
            fmt_ms(c.exhaustive.evaluation_time_ms()),
            c.pruned.evaluated_count().to_string(),
            format!("{:.0}%", c.pruned.space_reduction() * 100.0),
            fmt_ms(c.pruned.evaluation_time_ms()),
            if c.found_optimum() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table(&rows));
    if verbose && !kind_lines.is_empty() {
        println!("quarantined error kinds (from trace):");
        for line in &kind_lines {
            println!("{line}");
        }
    }
    println!("quarantined configurations: {quarantined}");
}
