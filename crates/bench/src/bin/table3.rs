//! Table 3: the application suite and speedup of the best GPU
//! configuration over the single-thread CPU reference.
//!
//! Paper shape to check: the ordering CP >> MRI-FHD >> MatMul ~ SAD.
//! Absolute factors differ (the CPU here is a modern core running the
//! Rust reference; the GPU is the simulated 2007-era G80, and — like
//! the paper — we run reduced inputs), but compute-dense kernels with
//! SFU-friendly math must show the largest wins.

use gpu_arch::MachineSpec;
use gpu_kernels::{cp::Cp, matmul::MatMul, mri_fhd::MriFhd, sad::Sad, App, SpaceSource};
use optspace::engine::EvalEngine;
use optspace::report::{fmt_ms, table};
use optspace::tuner::{ExhaustiveSearch, SearchStrategy};
use std::time::Instant;

fn time_cpu(mut f: impl FnMut()) -> f64 {
    // One warmup, then best of three.
    f();
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let spec = MachineSpec::geforce_8800_gtx();
    let engine = EvalEngine::default();
    let mut rows = vec![vec![
        "Application".to_string(),
        "Space".to_string(),
        "CPU ref".to_string(),
        "GPU best (sim)".to_string(),
        "Speedup".to_string(),
    ]];

    let mut add = |name: &str, cpu_ms: f64, app: &dyn App| {
        // Space size comes from the declared space, never a hand count —
        // the same `Space::len()` every search strategy sees.
        let size = app.space().len();
        let r = ExhaustiveSearch.run_source(&engine, &SpaceSource::full(app), &spec);
        let Some(gpu_ms) = r.best_time_ms() else {
            rows.push(vec![
                name.to_string(),
                size.to_string(),
                fmt_ms(cpu_ms),
                "-".into(),
                "-".into(),
            ]);
            return;
        };
        rows.push(vec![
            name.to_string(),
            size.to_string(),
            fmt_ms(cpu_ms),
            fmt_ms(gpu_ms),
            format!("{:.1}x", cpu_ms / gpu_ms),
        ]);
    };

    {
        let mm = MatMul::reduced_problem();
        let (mem, _) = mm.setup(1);
        let cpu = time_cpu(|| {
            std::hint::black_box(mm.cpu_reference_fast(&mem));
        });
        add("Matrix Multiplication", cpu, &mm);
    }
    {
        let cp = Cp::paper_problem();
        let (mem, _) = cp.setup(1);
        let cpu = time_cpu(|| {
            std::hint::black_box(cp.cpu_reference(&mem));
        });
        add("CP", cpu, &cp);
    }
    {
        let sad = Sad::paper_problem();
        let (mem, _) = sad.setup(1);
        let cpu = time_cpu(|| {
            std::hint::black_box(sad.cpu_reference(&mem));
        });
        add("SAD", cpu, &sad);
    }
    {
        let mri = MriFhd::paper_problem();
        let (mem, _) = mri.setup(1);
        let cpu = time_cpu(|| {
            std::hint::black_box(mri.cpu_reference(&mem));
        });
        add("MRI-FHD", cpu, &mri);
    }
    println!("{}", table(&rows));
}
