//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! * `random` — Pareto pruning vs random sampling of equal budget
//!   (the comparison the paper's future work proposes).
//! * `halfterm` — Utilization with vs without the ÷2 barrier term of
//!   Equation 2.
//! * `single` — ranking by one metric alone (section 5.1: "neither is
//!   sufficient in isolation").
//! * `bandwidth` — Pareto pruning with vs without the section 5.3
//!   bandwidth screen.

use gpu_arch::MachineSpec;
use optspace::engine::EvalEngine;
use optspace::metrics::MetricsOptions;
use optspace::report::table;
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, RandomSearch, SearchStrategy};
use optspace_bench::{jobs_from_args, suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = EvalEngine::with_jobs(jobs_from_args(&args));
    let spec = MachineSpec::geforce_8800_gtx();
    let mut rows = vec![vec![
        "Kernel".to_string(),
        "pareto".to_string(),
        "no-screen".to_string(),
        "no-half".to_string(),
        "eff-only".to_string(),
        "util-only".to_string(),
        "random x20".to_string(),
    ]];

    for app in suite() {
        let cands = app.candidates();
        let exhaustive = ExhaustiveSearch.run_with(&engine, &cands, &spec);
        let Some(best) = exhaustive.best_time_ms() else {
            rows.push(vec![app.name().to_string(); 7]);
            continue;
        };
        let gap = |t: Option<f64>| match t {
            Some(t) => format!("+{:.1}%", (t / best - 1.0) * 100.0),
            None => "-".to_string(),
        };

        let pareto = PrunedSearch::default().run_with(&engine, &cands, &spec);
        let noscreen = PrunedSearch { screen_bandwidth: false, ..Default::default() }
            .run_with(&engine, &cands, &spec);
        let nohalf = PrunedSearch {
            options: MetricsOptions { barrier_half_term: false, ..Default::default() },
            ..Default::default()
        }
        .run_with(&engine, &cands, &spec);

        // Single-metric ranking: evaluate only the arg-max of one metric.
        let single = |pick_util: bool| -> Option<f64> {
            let statics: Vec<_> = cands.iter().map(|c| c.evaluate(&spec).ok()).collect();
            let best_idx = statics
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
                .max_by(|a, b| {
                    let key = |e: &optspace::candidate::Evaluated| {
                        if pick_util {
                            e.metrics.utilization
                        } else {
                            e.metrics.efficiency
                        }
                    };
                    key(a.1).partial_cmp(&key(b.1)).expect("finite metrics")
                })
                .map(|(i, _)| i)?;
            exhaustive.simulated[best_idx].as_ref().map(|t| t.time_ms)
        };

        // Random sampling with the pruned search's budget, 20 seeds:
        // report the mean regret.
        let budget = pareto.evaluated_count();
        let mut regret = 0.0;
        for seed in 0..20 {
            let r = RandomSearch::new(budget, seed).run_with(&engine, &cands, &spec);
            let Some(t) = r.best_time_ms() else { continue };
            regret += t / best - 1.0;
        }
        let random = format!("+{:.1}%", regret / 20.0 * 100.0);

        rows.push(vec![
            app.name().to_string(),
            gap(pareto.best_time_ms()),
            gap(noscreen.best_time_ms()),
            gap(nohalf.best_time_ms()),
            gap(single(false)),
            gap(single(true)),
            random,
        ]);
    }
    println!("gap to the exhaustive optimum (0% = optimum found):\n");
    println!("{}", table(&rows));
}
