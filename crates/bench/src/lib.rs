//! Shared harness for the experiment regenerators.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the
//! paper's evaluation; this library holds the pieces they share: the
//! application suite at bench scale and the search-comparison runner.

use gpu_arch::MachineSpec;
use gpu_kernels::{cp::Cp, matmul::MatMul, mri_fhd::MriFhd, sad::Sad, App, SpaceSource};
use optspace::engine::{EngineConfig, EvalEngine, FaultPlan};
use optspace::tuner::{ExhaustiveSearch, PrunedSearch, SearchReport, SearchStrategy};
use optspace::{Filter, Sample, Selection};

/// The four applications at the scale the experiment binaries run them.
///
/// Matrix multiplication uses a reduced 512² problem (the paper itself
/// ran "smaller inputs than those considered typical"); everything else
/// runs at the paper-flavoured sizes in `gpu-kernels`.
pub fn suite() -> Vec<Box<dyn App>> {
    vec![
        Box::new(MatMul::reduced_problem()),
        Box::new(Cp::paper_problem()),
        Box::new(Sad::paper_problem()),
        Box::new(MriFhd::paper_problem()),
    ]
}

/// Exhaustive vs pruned search for one application.
#[derive(Debug)]
pub struct Comparison {
    /// Application name.
    pub name: &'static str,
    /// Ground truth: every valid configuration simulated.
    pub exhaustive: SearchReport,
    /// The paper's Pareto-pruned search.
    pub pruned: SearchReport,
}

impl Comparison {
    /// Whether the pruned search found the exhaustive optimum (the
    /// paper's headline claim).
    pub fn found_optimum(&self) -> bool {
        match (self.exhaustive.best_time_ms(), self.pruned.best_time_ms()) {
            (Some(a), Some(b)) => (b / a - 1.0).abs() < 1e-9,
            _ => false,
        }
    }
}

/// Run both searches over one application on a default (sequential,
/// unlimited) engine.
pub fn compare(app: &dyn App, spec: &MachineSpec) -> Comparison {
    compare_with(app, spec, &EvalEngine::default())
}

/// Run both searches over one application on an explicit engine,
/// instantiating candidates lazily inside the engine's worker pool.
pub fn compare_with(app: &dyn App, spec: &MachineSpec, engine: &EvalEngine) -> Comparison {
    compare_selected(app, spec, engine, &Selection::default())
}

/// Run both searches over the part of one application's space a
/// selection keeps. Filters naming axes the app does not declare are
/// ignored (lenient application), so one `--filter tile=16` meant for
/// matmul doesn't empty the other suites' spaces. An empty selection
/// yields empty — but well-formed — reports, never a panic.
pub fn compare_selected(
    app: &dyn App,
    spec: &MachineSpec,
    engine: &EvalEngine,
    selection: &Selection,
) -> Comparison {
    let space = app.space();
    let points = selection.apply_lenient(&space);
    let matched = points.len();
    let source = SpaceSource::new(app, points);
    let mut exhaustive = ExhaustiveSearch.run_source(engine, &source, spec);
    let mut pruned = PrunedSearch::default().run_source(engine, &source, spec);
    if !selection.is_noop() {
        exhaustive.selection = Some(selection.record(matched));
        pruned.selection = Some(selection.record(matched));
    }
    Comparison { name: app.name(), exhaustive, pruned }
}

/// Parse the selection flags shared by the experiment binaries:
/// every `--filter axis=value` occurrence plus `--sample N` and
/// `--sample-seed S`.
///
/// # Errors
///
/// A `--filter` clause without a `=` (or with an empty side) is
/// reported as an error string suitable for printing.
pub fn selection_from_args(args: &[String]) -> Result<Selection, String> {
    let mut filters = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--filter" {
            match args.get(i + 1) {
                Some(raw) => filters.push(Filter::parse(raw).map_err(|e| e.to_string())?),
                None => return Err("--filter needs axis=value".to_string()),
            }
        }
    }
    let sample = flag_value::<usize>(args, "--sample")
        .map(|count| Sample { count, seed: flag_value(args, "--sample-seed").unwrap_or(0) });
    Ok(Selection { filters, sample })
}

/// Run one named iterative zoo strategy over an application's full
/// space (iterative strategies require dense indices aligned with the
/// declared space, so no selection applies here).
///
/// # Panics
///
/// Panics if `name` is not one of [`optspace::zoo::NAMES`].
pub fn run_zoo(
    app: &dyn App,
    spec: &MachineSpec,
    engine: &EvalEngine,
    name: &str,
    budget: usize,
    seed: u64,
) -> SearchReport {
    let space = app.space();
    let source = SpaceSource::full(app);
    let mut strategy =
        optspace::zoo::by_name(name, &space, budget, seed).expect("a zoo strategy name");
    optspace::tuner::run_iterative(strategy.as_mut(), engine, &source, spec)
}

/// Print a CLI usage error and exit 1 — the experiment binaries' analog
/// of the front end's `eprintln!` + `ExitCode::FAILURE` idiom, with the
/// same message wording so scripted callers see one vocabulary.
fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Parse `<flag> <value>` distinguishing *absent* (`None`, use the
/// default) from *present but unusable*, which aborts with `needs`
/// appended to the flag name. A silent fallback here once made
/// `--jobs 0` run sequentially while claiming nothing — bad values in
/// bench runs must be loud, not defaulted.
fn checked_flag_value<T: std::str::FromStr>(args: &[String], flag: &str, needs: &str) -> Option<T> {
    let p = args.iter().position(|a| a == flag)?;
    match args.get(p + 1).and_then(|v| v.parse().ok()) {
        Some(v) => Some(v),
        None => fail(&format!("{flag} needs {needs}")),
    }
}

/// Parse a `--jobs N` flag from raw process args (the experiment
/// binaries' shared CLI surface); defaults to 1, aborts (exit 1) when
/// the flag is present with a missing or invalid value.
pub fn jobs_from_args(args: &[String]) -> usize {
    match checked_flag_value::<usize>(args, "--jobs", "a number >= 1") {
        Some(j) if j >= 1 => j,
        Some(_) => fail("--jobs needs a number >= 1"),
        None => 1,
    }
}

/// Parse `<flag> <value>` from raw process args; `None` when the flag is
/// absent or its value does not parse. `T = String` makes this the path
/// flag helper (`--bench-out out.json`).
pub fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).and_then(|v| v.parse().ok())
}

/// Abort (exit 1) unless `path` can plausibly be created: its parent
/// directory, when it names one, must already exist. Called *before* a
/// long run so a doomed export fails in seconds, not after the suite.
pub fn require_writable_parent(path: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            eprintln!(
                "cannot write {path}: parent directory `{}` does not exist",
                parent.display()
            );
            std::process::exit(1);
        }
    }
}

/// Build an engine from the experiment binaries' shared flags:
/// `--jobs N`, `--sim-fuel N`, `--check-races`, `--retries N`,
/// `--inject-faults`, `--fault-seed N`, `--store-dir <dir>`.
/// Unrecognised arguments are ignored so binaries can layer their own
/// flags on top. An unusable `--store-dir` aborts the process — a
/// bench run that silently re-simulates everything it meant to reuse
/// would report misleading numbers.
pub fn engine_from_args(args: &[String]) -> EvalEngine {
    let mut config = EngineConfig { jobs: jobs_from_args(args), ..Default::default() };
    config.sim_fuel =
        match checked_flag_value::<u64>(args, "--sim-fuel", "a positive number of steps") {
            Some(0) => fail("--sim-fuel needs a positive number of steps"),
            other => other,
        };
    config.check_races = args.iter().any(|a| a == "--check-races");
    match checked_flag_value::<u32>(args, "--retries", "a number >= 1") {
        Some(n) if n >= 1 => config.retry.max_attempts = n,
        Some(_) => fail("--retries needs a number >= 1"),
        None => {}
    }
    let fault_seed = checked_flag_value::<u64>(args, "--fault-seed", "a number");
    if args.iter().any(|a| a == "--inject-faults") {
        config.fault_plan = Some(match fault_seed {
            Some(seed) => FaultPlan::with_seed(seed),
            None => FaultPlan::default(),
        });
    } else if fault_seed.is_some() {
        fail("--fault-seed requires --inject-faults");
    }
    let mut engine = EvalEngine::new(config);
    if let Some(dir) = flag_value::<String>(args, "--store-dir") {
        match optspace::engine::ResultStore::open(&dir) {
            Ok(store) => engine = engine.with_store(std::sync::Arc::new(store)),
            Err(e) => {
                eprintln!("cannot open result store {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    engine
}
