//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the *subset* of the rand 0.8 API the workspace actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for workload generation and
//! deterministic sampling, which is all the repo needs.
//!
//! Determinism contract: the same seed always produces the same
//! sequence within this repo. The streams do **not** match the real
//! `rand` crate's `StdRng` (a different algorithm); nothing in the
//! workspace depends on the specific values, only on seed-determinism.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush, one multiply-xor-shift pipeline per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unit-interval double from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = f64::from(self.end) - f64::from(self.start);
                (f64::from(self.start) + unit_f64(rng) * span) as $t
            }
        }
    };
}

impl_float_range!(f32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Slice-level randomization.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permute in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<i64> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i32 = rng.gen_range(-3..7);
            assert!((-3..7).contains(&i));
            let u: usize = rng.gen_range(0..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|_| f64::from(rng.gen_range(0.0f32..1.0))).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
